//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Supports structs with named fields. Honoured field attributes:
//!
//! * `#[serde(default)]` — a missing key deserializes via `Default`;
//! * `#[serde(skip_serializing_if = "path")]` — the field is omitted from
//!   the output object when `path(&self.field)` is true.
//!
//! Implemented with hand-rolled token walking (no `syn`/`quote`), which is
//! enough for the shapes this workspace derives.

// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed named field.
struct Field {
    name: String,
    /// `#[serde(default)]` present.
    default: bool,
    /// Path from `#[serde(skip_serializing_if = "…")]`, if present.
    skip_if: Option<String>,
}

/// Extracts the struct name and its named fields from the derive input.
fn parse_struct(input: TokenStream) -> (String, Vec<Field>) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility until the `struct` keyword.
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "struct" {
                break;
            }
        }
        i += 1;
    }
    assert!(i < tokens.len(), "serde_derive: only structs are supported");
    let name = match &tokens[i + 1] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct name, got {other}"),
    };
    let body = tokens[i + 1..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .expect("serde_derive: only structs with named fields are supported");
    (name, parse_fields(body))
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Gather this field's attributes.
        let mut default = false;
        let mut skip_if = None;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        let text = g.stream().to_string();
                        if text.starts_with("serde") {
                            if text.contains("default") {
                                default = true;
                            }
                            if let Some(pos) = text.find("skip_serializing_if") {
                                let rest = &text[pos..];
                                let lo = rest.find('"').expect("skip_serializing_if needs a path");
                                let hi = rest[lo + 1..]
                                    .find('"')
                                    .expect("unterminated skip_serializing_if");
                                skip_if = Some(rest[lo + 1..lo + 1 + hi].to_string());
                            }
                        }
                        i += 2;
                    } else {
                        panic!("serde_derive: stray `#`");
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        // Skip visibility (`pub`, optionally followed by `(crate)` etc.).
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after {name}, got {other}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            default,
            skip_if,
        });
    }
    fields
}

/// Derives `serde::Serialize` (the stand-in's value-model flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_struct(input);
    let mut body = String::new();
    for f in &fields {
        let insert = format!(
            "map.insert(\"{n}\".to_string(), serde::Serialize::to_json_value(&self.{n}));",
            n = f.name
        );
        match &f.skip_if {
            Some(path) => body.push_str(&format!(
                "if !({path})(&self.{n}) {{ {insert} }}\n",
                n = f.name
            )),
            None => {
                body.push_str(&insert);
                body.push('\n');
            }
        }
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> serde::value::Value {{\n\
                 let mut map = serde::value::Map::new();\n\
                 {body}\
                 serde::value::Value::Object(map)\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` (the stand-in's value-model flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_struct(input);
    let mut body = String::new();
    for f in &fields {
        let missing = if f.default || f.skip_if.is_some() {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(serde::DeError(\"missing field `{}`\".to_string()))",
                f.name
            )
        };
        body.push_str(&format!(
            "{n}: match obj.get(\"{n}\") {{\n\
                 ::std::option::Option::Some(x) => serde::Deserialize::from_json_value(x)?,\n\
                 ::std::option::Option::None => {missing},\n\
             }},\n",
            n = f.name
        ));
    }
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_json_value(v: &serde::value::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                 let obj = v.as_object().ok_or_else(|| serde::DeError(\"expected object\".to_string()))?;\n\
                 ::std::result::Result::Ok({name} {{\n\
                     {body}\
                 }})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl failed to parse")
}
