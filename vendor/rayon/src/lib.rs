//! Offline stand-in for `rayon` (subset; see `vendor/README.md`).
//!
//! `into_par_iter()` simply forwards to `into_iter()`: every "parallel"
//! pipeline in the workspace runs sequentially but produces identical
//! results. Swap in real rayon to restore parallelism — call sites need no
//! change.

// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
/// A scope for spawning tasks that may borrow from the enclosing stack
/// frame, mirroring `rayon::Scope`.
///
/// Backed by [`std::thread::scope`]: every `spawn` starts a real OS
/// thread (there is no work-stealing pool in this stand-in), and
/// [`scope`] joins them all before returning. The signature matches real
/// rayon — spawned closures receive `&Scope` and may spawn further tasks
/// — so swapping in the real crate needs no call-site changes.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task into the scope. The task may borrow anything the
    /// scope's environment outlives and may itself spawn more tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a scope, runs `f` inside it, and joins every spawned task
/// before returning — the stand-in for `rayon::scope`.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    R: Send,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// The rayon prelude: parallel-iterator entry points.
pub mod prelude {
    /// Types convertible into a (here: sequential) parallel iterator.
    pub trait IntoParallelIterator {
        /// The iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;
        /// Converts `self` into an iterator (sequential in this stand-in).
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Borrowing counterpart of [`IntoParallelIterator`].
    pub trait IntoParallelRefIterator<'a> {
        /// The iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item: 'a;
        /// Iterates `&self` (sequential in this stand-in).
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        type Item = &'a T;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        type Item = &'a T;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn scope_joins_all_spawned_tasks() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let hits = AtomicU32::new(0);
        let answer = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|s| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    // Nested spawns are allowed, as in real rayon.
                    s.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
            42
        });
        // scope() returns only after every task (nested included) ran.
        assert_eq!(answer, 42);
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn sequential_semantics_match() {
        let doubled: Vec<i32> = (0..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().sum();
        assert_eq!(sum, 6);
    }
}
