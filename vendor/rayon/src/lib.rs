//! Offline stand-in for `rayon` (subset; see `vendor/README.md`).
//!
//! `into_par_iter()` simply forwards to `into_iter()`: every "parallel"
//! pipeline in the workspace runs sequentially but produces identical
//! results. Swap in real rayon to restore parallelism — call sites need no
//! change.

/// The rayon prelude: parallel-iterator entry points.
pub mod prelude {
    /// Types convertible into a (here: sequential) parallel iterator.
    pub trait IntoParallelIterator {
        /// The iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;
        /// Converts `self` into an iterator (sequential in this stand-in).
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Borrowing counterpart of [`IntoParallelIterator`].
    pub trait IntoParallelRefIterator<'a> {
        /// The iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item: 'a;
        /// Iterates `&self` (sequential in this stand-in).
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        type Item = &'a T;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        type Item = &'a T;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sequential_semantics_match() {
        let doubled: Vec<i32> = (0..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().sum();
        assert_eq!(sum, 6);
    }
}
