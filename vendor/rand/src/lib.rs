//! Offline stand-in for the `rand` crate (subset; see `vendor/README.md`).
//!
//! Provides the `rand 0.8` API surface this workspace uses: the [`Rng`]
//! extension trait with `gen_range`/`gen_bool`, [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`] backed by xoshiro256** seeded via
//! splitmix64 — deterministic across platforms and runs.

// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
use std::ops::{Range, RangeInclusive};

/// Low-level uniform random source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random distribution over `T` described by a range (the subset of
/// `rand`'s `SampleRange` this workspace needs).
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with splitmix64
    /// seed expansion. Not cryptographic; statistically solid and fully
    /// deterministic from the seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let x = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 5;
        }
        assert!(seen_lo && seen_hi);
        for _ in 0..100 {
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
