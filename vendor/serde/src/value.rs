//! The owned JSON value model shared by the `serde` and `serde_json`
//! stand-ins.

/// A JSON number: unsigned, signed, or floating.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// Wraps a `u64`.
    pub fn from_u64(n: u64) -> Self {
        Number::U64(n)
    }

    /// Wraps an `i64`, normalizing non-negatives to `U64`.
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::U64(n as u64)
        } else {
            Number::I64(n)
        }
    }

    /// Wraps an `f64`.
    pub fn from_f64(x: f64) -> Self {
        Number::F64(x)
    }

    /// As `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                Some(x as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// As `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(x) if x.fract() == 0.0 && x >= i64::MIN as f64 && x <= i64::MAX as f64 => {
                Some(x as i64)
            }
            Number::F64(_) => None,
        }
    }

    /// As `f64` (always possible, may lose precision).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(x) => x,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => return a == b,
            (Some(_), None) | (None, Some(_)) => {}
            (None, None) => {}
        }
        if let (Some(a), Some(b)) = (self.as_i64(), other.as_i64()) {
            return a == b;
        }
        self.as_f64() == other.as_f64()
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Number::U64(n) => write!(f, "{n}"),
            Number::I64(n) => write!(f, "{n}"),
            Number::F64(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map (the `serde_json::Map` shape).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> Map<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts, replacing any existing entry with an equal key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a value by key.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: PartialEq + ?Sized,
    {
        self.entries
            .iter()
            .find(|(k, _)| k.borrow() == key)
            .map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, (K, V)> {
        self.entries.iter()
    }
}

impl<K: PartialEq, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// The object's map, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }
}

pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Value {
    /// Renders compact JSON.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => {
                let mut buf = String::new();
                escape_into(&mut buf, s);
                write!(f, "{buf}")
            }
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut key = String::new();
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}
