//! Offline stand-in for `serde` (subset; see `vendor/README.md`).
//!
//! Instead of upstream's generic `Serializer`/`Deserializer` plumbing,
//! this subset serializes through one owned JSON-like [`value::Value`]
//! model. `serde_json` (the sibling stub) renders and parses that model.
//! The derive macros from `serde_derive` are re-exported under the usual
//! names, so `#[derive(Serialize, Deserialize)]` call sites are unchanged.

// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::{Map, Number, Value};

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the JSON value model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_json_value(&self) -> Value;
}

/// Conversion from the JSON value model.
pub trait Deserialize: Sized {
    /// Reads `Self` back out of a [`Value`].
    fn from_json_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError(format!("expected integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError(format!("expected number, got {v}")))
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other}"))),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other}"))),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (*self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(DeError(format!("expected array, got {other}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => Ok((
                A::from_json_value(&items[0])?,
                B::from_json_value(&items[1])?,
            )),
            other => Err(DeError(format!("expected 2-element array, got {other}"))),
        }
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for Map<String, Value> {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}
