//! Offline stand-in for `proptest` (subset; see `vendor/README.md`).
//!
//! Covers the API this workspace's property tests use: the [`proptest!`]
//! macro (with `#![proptest_config(..)]`), range / tuple / `collection::vec`
//! strategies, `any::<T>()`, `prop_map` / `prop_flat_map`, and the
//! `prop_assert*` / `prop_assume!` macros. Differences from upstream:
//! failing inputs are **not shrunk**, and each test's RNG seed is derived
//! from the test's name, so runs are deterministic.

// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG driving a test's cases.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from a test name (FNV-1a), so every run explores the same
    /// sequence of cases.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of random values (no shrinking in this stand-in).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

/// The `any::<T>()` strategy object.
pub struct Any<T>(std::marker::PhantomData<T>);

/// An arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length bounds for [`vec`]: an exact size or a range of sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.rng().gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

/// Asserts inside a `proptest!` body; failures report the case inputs'
/// expression text.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests. Each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` that runs `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("proptest case {} of {} failed:\n{}", __case + 1, __cfg.cases, e);
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(
            (a, b) in (0u32..5, 0u32..5),
            v in collection::vec(any::<bool>(), 2..6),
        ) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn flat_map_threads_values(n in (1usize..4).prop_flat_map(|k| collection::vec(0u8..10, k))) {
            prop_assert!(!n.is_empty() && n.len() < 4);
        }
    }

    #[test]
    fn assume_skips_cases() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assume!(x % 2 == 0);
                prop_assert!(x % 2 == 0);
            }
        }
        inner();
    }
}
