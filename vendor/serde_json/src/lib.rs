//! Offline stand-in for `serde_json` (subset; see `vendor/README.md`).
//!
//! Re-exports the value model from the `serde` stand-in and provides
//! [`to_string`] / [`from_str`] over it with a hand-written JSON parser.

// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
pub use serde::value::{Map, Number, Value};
use serde::{Deserialize, Serialize};

/// Serialization / parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_string())
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_json_value(&value).map_err(|e| Error(e.0))
}

/// Converts any [`Serialize`] type to its [`Value`] representation.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Deserializes a [`Value`] into any [`Deserialize`] type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_json_value(&value).map_err(|e| Error(e.0))
}

/// Parses JSON text into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected `{}` at byte {pos}", c as char)))
    }
}

fn parse(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => keyword(b, pos, "null", Value::Null),
        Some(b't') => keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => keyword(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn keyword(b: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("bad \\u escape".into()))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error("bad \\u escape".into()))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error(format!("bad escape at byte {pos}"))),
                }
                *pos += 1;
            }
            _ => {
                // Copy one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err(Error("unterminated string".into()))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while *pos < b.len() {
        match b[*pos] {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap();
    if text.is_empty() || text == "-" {
        return Err(Error(format!("expected number at byte {start}")));
    }
    if !is_float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::Number(Number::from_u64(n)));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Number(Number::from_i64(n)));
        }
    }
    text.parse::<f64>()
        .map(|x| Value::Number(Number::from_f64(x)))
        .map_err(|_| Error(format!("bad number `{text}` at byte {start}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let text = r#"{"a":[1,2.5,-3],"b":"x\"y","c":null,"d":true}"#;
        let v = parse_value(text).unwrap();
        let back = parse_value(&v.to_string()).unwrap();
        assert_eq!(v, back);
        assert_eq!(
            v.as_object().unwrap().get("b").unwrap().as_str(),
            Some("x\"y")
        );
    }

    #[test]
    fn numbers_preserve_integerness() {
        let v = parse_value("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v = parse_value("-7").unwrap();
        assert_eq!(v.as_i64(), Some(-7));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("01x").is_err());
        assert!(parse_value("\"unterminated").is_err());
    }
}
