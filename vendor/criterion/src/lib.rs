//! Offline stand-in for `criterion` (subset; see `vendor/README.md`).
//!
//! Each benchmark body is executed **once** and its wall time printed —
//! enough for `cargo bench` to compile, run, and smoke-test the bench
//! targets without the real statistics engine.

// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
use std::fmt::Display;
use std::time::Instant;

/// Benchmark driver (single-shot in this stand-in).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {}
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup {}

impl BenchmarkGroup {
    /// Accepted for API compatibility; single-shot runs ignore it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; single-shot runs ignore it.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs a named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed: 0.0 };
    let t0 = Instant::now();
    f(&mut b);
    let total = t0.elapsed().as_secs_f64();
    println!(
        "  bench {name}: {:.6}s (single shot)",
        if b.elapsed > 0.0 { b.elapsed } else { total }
    );
}

/// Passed to benchmark closures; `iter` runs the body once.
pub struct Bencher {
    elapsed: f64,
}

impl Bencher {
    /// Times one execution of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        let out = f();
        self.elapsed = t0.elapsed().as_secs_f64();
        drop(out);
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter (group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
