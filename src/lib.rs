//! # bisched — scheduling with bipartite incompatibility graphs
//!
//! A faithful, production-grade Rust implementation of
//! *"Scheduling on uniform and unrelated machines with bipartite
//! incompatibility graphs"* (Tytus Pikies, Hanna Furmańczyk, IPPS 2022,
//! arXiv:2106.14354), together with every substrate it stands on.
//!
//! ## The model
//!
//! Jobs with processing requirements must be assigned to parallel machines
//! (identical `P`, uniform `Q`, or unrelated `R`) so that the jobs on any
//! one machine form an **independent set** of a bipartite incompatibility
//! graph; the objective is the makespan `C_max`.
//!
//! ## Quick start
//!
//! Solving goes through the [`Solver`](core::Solver) engine, built from a
//! [`SolverConfig`](core::SolverConfig):
//!
//! ```
//! use bisched::prelude::*;
//!
//! // Four jobs; 0–1 and 2–3 must not share a machine.
//! let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
//! // Two uniform machines, the first twice as fast.
//! let inst = Instance::uniform(vec![2, 1], vec![4, 3, 2, 3], g).unwrap();
//!
//! let report = Solver::new().solve(&inst).unwrap();
//! assert!(report.schedule.validate(&inst).is_ok());
//! println!("C_max = {} via {} ({})", report.makespan, report.method, report.guarantee);
//! ```
//!
//! Tuning, forcing a method, and portfolios:
//!
//! ```
//! use bisched::prelude::*;
//!
//! let inst = Instance::unrelated(
//!     vec![vec![3, 9, 4, 8], vec![8, 2, 7, 3]],
//!     Graph::from_edges(4, &[(0, 1), (2, 3)]),
//! )
//! .unwrap();
//!
//! // A sharper FPTAS and a forced method.
//! let solver = SolverConfig::new()
//!     .eps(0.05)
//!     .method(Method::R2Fptas)
//!     .build()
//!     .unwrap();
//! let report = solver.solve(&inst).unwrap();
//! assert_eq!(report.method, Method::R2Fptas);
//! assert_eq!(report.guarantee, Guarantee::OnePlusEps(0.05));
//!
//! // A portfolio races its members concurrently on the shared thread
//! // pool: the first engine to *prove* optimality cancels the rest
//! // (the losers' attempts are recorded with `cancelled: true`), and
//! // the result is never worse than any member's.
//! let portfolio = SolverConfig::new()
//!     .portfolio(vec![Method::R2TwoApprox, Method::R2Fptas])
//!     .build()
//!     .unwrap();
//! let best = portfolio.solve(&inst).unwrap();
//! assert!(best.makespan <= report.makespan);
//! assert!(best.race_time.is_some()); // races report their wall time
//!
//! // Batch solving for bulk workloads.
//! let reports = Solver::new().solve_batch(&[inst]);
//! assert!(reports[0].is_ok());
//! ```
//!
//! ## The exact oracle and its budgets
//!
//! [`exact::branch_and_bound`](exact) is the workspace's proven-optimum
//! oracle at `n ≲ 24`: a pruned search over per-job conflict bitmasks
//! with identical-machine symmetry breaking and the incremental
//! graph-aware lower bounds of `bisched_exact::lower_bounds`. Two budgets
//! bound it — a deterministic node limit
//! ([`SolverConfig::bnb_node_limit`](core::SolverConfig), CLI
//! `--node-limit`) and an optional wall-clock deadline
//! ([`SolverConfig::bnb_deadline`](core::SolverConfig), CLI
//! `--bnb-deadline-ms`). A search truncated by either returns its best
//! incumbent as a `Heuristic`; a search that finishes — even on its very
//! last budgeted node — is `Optimal`:
//!
//! ```
//! use bisched::prelude::*;
//! use std::time::Duration;
//!
//! let inst = Instance::identical(3, vec![4, 3, 3, 2, 2], Graph::path(5)).unwrap();
//! let solver = SolverConfig::new()
//!     .method(Method::BranchAndBound)
//!     .bnb_node_limit(1_000_000)
//!     .bnb_deadline(Some(Duration::from_secs(5)))
//!     .build()
//!     .unwrap();
//! let report = solver.solve(&inst).unwrap();
//! assert_eq!(report.guarantee, Guarantee::Optimal);
//! ```
//!
//! ## FPTAS knobs
//!
//! The `Rm || C_max` sweep behind Algorithm 5 (and, through Algorithm 1
//! and the Theorem 4 route, behind most `Auto` solves) is a packed-key,
//! pruned, streaming DP ([`fptas`]): a greedy incumbent and suffix lower
//! bounds kill hopeless states, `m ≤ 3` layers get a Pareto-dominance
//! filter, and only compact backpointers are retained per layer. Three
//! knobs steer it:
//!
//! * [`SolverConfig::eps`](core::SolverConfig) (CLI `--eps`) — the
//!   accuracy `ε ∈ (0, 1]` of the `(1+ε)` guarantee (Theorem 22);
//! * [`SolverConfig::fptas_state_cap`](core::SolverConfig) (CLI
//!   `--fptas-state-cap`) — a bound on the DP's live width, capping its
//!   memory. When a layer outgrows it the solver coarsens `ε` gracefully
//!   (doubling, never past Algorithm 5's `ε = 1` regime ceiling) and the
//!   reported guarantee carries the **effective** `ε`; an unsatisfiable
//!   cap fails with a typed state-cap error, visible in
//!   [`SolveReport::attempts`](core::SolveReport);
//! * [`SolverConfig::fptas_parallel`](core::SolverConfig) — chunked
//!   parallel layer expansion with a deterministic merge,
//!   result-identical to the sequential sweep (and excluded from the
//!   service's cache key for exactly that reason).
//!
//! ```
//! use bisched::prelude::*;
//!
//! let inst = Instance::unrelated(
//!     vec![
//!         vec![40, 37, 51, 44, 60, 33, 48, 55],
//!         vec![41, 36, 52, 45, 61, 32, 47, 56],
//!     ],
//!     Graph::empty(8),
//! )
//! .unwrap();
//! let solver = SolverConfig::new()
//!     .method(Method::R2Fptas)
//!     .eps(0.05)
//!     .fptas_state_cap(Some(4096)) // bound the DP's live width
//!     .build()
//!     .unwrap();
//! let report = solver.solve(&inst).unwrap();
//! match report.guarantee {
//!     // ε as configured unless the cap forced coarsening (≤ 1 always).
//!     Guarantee::OnePlusEps(eps) => assert!((0.05..=1.0).contains(&eps)),
//!     other => panic!("unexpected guarantee {other}"),
//! }
//! ```
//!
//! The DP itself is reachable as
//! [`fptas::rm_cmax_fptas_with`](fptas::rm_cmax_fptas_with), whose
//! [`FptasResult`](fptas::FptasResult) reports `expanded` / `pruned` /
//! `peak_states` counters; the `fptas-scaling` lab suite and the
//! `fptas_scaling` criterion bench pin its performance.
//!
//! ## Observing a solve
//!
//! Every attempt in a [`SolveReport`](core::SolveReport) carries the
//! engine's runtime counters as [`EngineStats`](core::EngineStats) —
//! nodes expanded, prunes per bound kind, CP propagations and probe
//! outcomes, FPTAS layer statistics — at no cost beyond the counters the
//! engines already kept. For a *timeline*, the [`obs`] flight recorder
//! captures engine spans, portfolio race events, incumbent updates, and
//! probe bounds into lock-free per-thread rings (when off, each emit
//! site costs one relaxed atomic load), and exports Chrome trace-event
//! JSON for `chrome://tracing` or <https://ui.perfetto.dev>:
//!
//! ```
//! use bisched::prelude::*;
//!
//! let inst = Instance::identical(3, vec![4, 3, 3, 2, 2], Graph::path(5)).unwrap();
//! let solver = SolverConfig::new()
//!     .method(Method::BranchAndBound)
//!     .build()
//!     .unwrap();
//!
//! bisched::obs::start_recording(1 << 14); // ring capacity per thread
//! let report = solver.solve(&inst).unwrap();
//! let trace = bisched::obs::stop_recording();
//!
//! // Counters ride on every attempt…
//! let run = &report.attempts[0];
//! assert!(run.stats.get("nodes").unwrap() > 0);
//! assert_eq!(run.stats.get("complete"), Some(1));
//! // …and the trace is ready for Perfetto (dropped events are counted,
//! // never silent).
//! let json = trace.to_chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! assert_eq!(trace.dropped, 0);
//! ```
//!
//! The same recording folds into a **self-time profile** — per
//! `(thread, span-stack)` rows splitting wall time into total vs self
//! (time not spent in child spans), exported in the flamegraph-collapsed
//! format (`solve;portfolio_race;cp 1234`, self-µs as the weight):
//!
//! ```
//! # use bisched::prelude::*;
//! # let inst = Instance::identical(3, vec![4, 3, 3, 2, 2], Graph::path(5)).unwrap();
//! # let solver = SolverConfig::new().method(Method::BranchAndBound).build().unwrap();
//! # bisched::obs::start_recording(1 << 14);
//! # let _ = solver.solve(&inst).unwrap();
//! # let trace = bisched::obs::stop_recording();
//! let profile = bisched::obs::Profile::from_trace(&trace);
//! for row in &profile.rows {
//!     assert!(row.self_us <= row.total_us);
//! }
//! let collapsed = profile.to_collapsed(); // one `name(;name)* <µs>` per line
//! ```
//!
//! From the command line, `bisched_cli solve inst.txt --portfolio
//! exact-q2,branch-and-bound,cp --trace-out trace.json` records a whole
//! portfolio race (member spans, `race_publish`/`race_cancel` instants),
//! `--profile-out prof.collapsed` writes the collapsed profile of the
//! same recording (both flags compose), and `lab run --trace-out` /
//! `lab run --profile-out` do the same for a benchmark suite. A running
//! daemon serves Prometheus text exposition through the `metrics` verb
//! (`bisched_cli metrics --addr …`) and **slow-request exemplars**
//! through the `trace` verb (`bisched_cli trace --addr …`): always-on,
//! the K slowest requests of the current and previous windows as span
//! trees — canonicalize/queue/solve phases plus one span per engine
//! attempt with its counters — so a p99 outlier is explainable after
//! the fact with no recording pre-armed. Each request is tagged with a
//! request id minted at accept; the id appears on the daemon's log
//! lines (`[rid=N]`, or a `request_id` field under `serve --log-json`),
//! on its flight-recorder spans, and on its exemplar, so one slow
//! request can be chased across all three surfaces. The daemon logs
//! through the leveled logger in [`obs::log`] (`serve --log-level
//! debug`).
//!
//! ## Running as a service
//!
//! For bulk traffic, [`service`] wraps the solver in a long-running
//! daemon (JSON-lines over TCP, with an opt-in length-prefixed binary
//! framing — see `crates/service/PROTOCOL.md`) built as **N independent
//! shards**: each request is routed by its instance's canonical
//! fingerprint to one shard, which owns its own cache, bounded queue,
//! worker pool, latency histograms, and slow-request exemplar ring, so
//! the solve hot path takes no cross-shard lock. Within a shard, a
//! worker pool micro-batches requests into
//! [`Solver::solve_batch`](core::Solver::solve_batch), and a
//! canonicalization cache (instances reduced to the normal form of
//! [`model::canonical`]) answers repeated *and isomorphically relabeled*
//! submissions without re-solving:
//!
//! ```
//! use bisched::prelude::*;
//! use bisched::model::InstanceData;
//! use bisched::service::{Client, ServeOptions, Service};
//!
//! let service = Service::start(ServeOptions::default()).unwrap();
//! let mut client = Client::connect(service.local_addr()).unwrap();
//!
//! let inst = Instance::identical(2, vec![3, 2, 4], Graph::path(3)).unwrap();
//! let first = client.solve(InstanceData::from_instance(&inst)).unwrap();
//! assert_eq!(first.status, "ok");
//! let again = client.solve(InstanceData::from_instance(&inst)).unwrap();
//! assert_eq!(again.cached, Some(true)); // served from the cache
//!
//! client.shutdown_server().unwrap();
//! service.join(); // drains the queue, logs final stats
//! ```
//!
//! From the command line, `bisched_cli serve --addr 127.0.0.1:7878`
//! starts the daemon:
//!
//! | `serve` flag | default | effect |
//! |---|---|---|
//! | `--addr` | `127.0.0.1:7878` | bind address (port `0` picks one) |
//! | `--shards` | `1` | independent shards; requests route by canonical fingerprint |
//! | `--workers` | cores (≤ 8) | solver threads, split across shards |
//! | `--batch` | `16` | max jobs per micro-batched `solve_batch` call |
//! | `--cache-cap` | `4096` | LRU cache entries **per shard** (`0` disables) |
//! | `--queue-cap` | `1024` | bounded queue slots **per shard** (full → `busy`) |
//! | `--cache-snapshot` | off | persist caches at shutdown, warm-start next boot |
//! | `--exemplar-k` / `--exemplar-window-s` | `8` / `60` | slow-request exemplar ring |
//! | `--log-level` / `--log-json` | `info` / off | leveled stderr logging |
//!
//! `bisched_cli submit --addr 127.0.0.1:7878 workload.jsonl --repeat 2`
//! pushes a JSONL workload through it, validates every returned
//! schedule, and prints req/s and the cache hit rate; `--clients K`
//! drives the daemon from K concurrent connections (aggregate req/s
//! plus a per-shard hit-rate breakdown), `--frame binary` negotiates
//! the v2 binary framing first. The `stats` verb exposes requests
//! served, hit rate, p50/p99 latency — split into queue-wait and
//! solve-time components — per-engine win counts, per-engine
//! race-cancelled attempt counts (cancellations are neither wins nor
//! losses), and the per-shard breakdown; the `metrics` verb serves the
//! same counters as Prometheus text exposition, including
//! `bisched_shard_requests_total{shard="…"}`.
//!
//! ### Scaling the service
//!
//! Shards scale because nothing on the hot path is shared: routing by
//! the isomorphism-invariant fingerprint sends every relabeling of an
//! instance to the same shard's cache, and backpressure (`busy`) is a
//! per-shard verdict. The `service_scaling` lab suite measures this
//! end to end — it boots the daemon at 1, 2, 4, and 8 shards, drives
//! each with shard-pinned concurrent clients under a serialized
//! per-request stall (so the ceiling is architectural, not
//! hardware-dependent), and CI gates near-linear aggregate throughput
//! scaling from the committed baseline:
//!
//! ```text
//! bisched_cli lab run --suite service_scaling
//! bisched_cli serve --shards 8 --cache-snapshot cache.bsnap &
//! bisched_cli submit --addr 127.0.0.1:7878 w.jsonl --clients 8 --json
//! ```
//!
//! A daemon restarted with the same `--cache-snapshot` re-buckets the
//! persisted entries by fingerprint — across *any* shard count — and
//! answers its old working set from cache without invoking a solver.
//!
//! ## Benchmarking with the lab
//!
//! [`lab`] is the workspace's scenario corpus and benchmark harness: a
//! registry of named, seeded workloads spanning `{P, Q, R} ×` graph
//! families (complete bipartite, Gilbert's three `p(n)` regimes, crowns,
//! cubic bipartite, forests, caterpillars, bounded-degree, and the
//! adversarial Theorem 24 gadgets), a rayon-parallel runner with
//! wall-time percentiles and quality ratios, and a perf-regression gate:
//!
//! ```text
//! bisched_cli lab list                                    # the corpus
//! bisched_cli lab run --suite quick --out BENCH_quick.json
//! bisched_cli lab run --suite paper-sec4                  # Section 4.1 tables
//! bisched_cli lab compare BENCH_baseline.json BENCH_quick.json
//! ```
//!
//! `lab run` writes a machine-readable `BENCH_<suite>.json` plus a
//! Markdown summary; `lab compare` exits nonzero when any cell's median
//! wall time or solution quality regresses past the thresholds — CI runs
//! it against the committed `BENCH_baseline.json` on every push. Every
//! scenario regenerates byte-identically from its embedded seed:
//!
//! ```
//! use bisched::lab::{suite, RunOptions};
//!
//! let quick = suite("quick").unwrap();
//! assert!(quick.scenarios.len() >= 10);
//! let inst = quick.scenarios[0].build(); // deterministic
//! assert_eq!(inst.num_jobs(), quick.scenarios[0].build().num_jobs());
//! ```
//!
//! Service-side load runs script through `bisched_cli submit --json`,
//! which emits one JSON object (req/s, cache hit rate, client-side
//! p50/p99 latency) instead of the human summary.
//!
//! ## Auditing the concurrency
//!
//! The workspace's cross-file contracts and lock-free protocols are
//! machine-checked, not just documented. `bisched-analyze` is a
//! dependency-free token-level linter over five invariants — cache-key
//! coverage of `SolverConfig`, `Method` wire-name/dispatch/label
//! coverage, `SAFETY:` comments on every `unsafe`,
//! `#![forbid(unsafe_code)]` everywhere outside a two-crate allowlist,
//! and a closed registry of metric and trace-event names:
//!
//! ```text
//! cargo run -p bisched-analyze            # lint; nonzero exit on drift
//! bisched_cli analyze --self-check        # 6 seeded mutations must be caught
//! ```
//!
//! The lock-free pieces — the flight recorder's ring, the portfolio
//! race's [`SearchCtl`](exact::SearchCtl) bound exchange, the service's
//! shutdown/queue handoff — are explored interleaving-by-interleaving
//! by the loom-style model checker in [`obs`]`::model`, swapped in by a
//! cfg so production builds pay nothing:
//!
//! ```text
//! RUSTFLAGS="--cfg bisched_model" cargo test -p bisched-obs -p bisched-analyze
//! ```
//!
//! Each suite asserts its exploration completed (no budget cut) and
//! carries a seeded-bug mutation test proving the checker still bites;
//! CI additionally runs the real-thread ring tests under Miri. See
//! `crates/analyze/README.md` for the lint catalogue and the checker's
//! scope and limits.
//!
//! ## Guarantees and where they come from
//!
//! Every report carries a typed [`Guarantee`](core::Guarantee) tied to the
//! paper:
//!
//! | [`Guarantee`](core::Guarantee) | provenance |
//! |---|---|
//! | `Optimal` | exact oracles — the `Q2`/`R2` DPs (Theorem 4 covers the polynomial `Q2, p_j = 1` regime), complete branch & bound, and the `bisched_cp` propagation engine when its makespan binary search closes (its proven lower bound meets its incumbent); a portfolio race also certifies its winner `Optimal` when any member's completed search proves nothing better exists |
//! | `Ratio(2)` | BJW [3] on `P`, `m ≥ 3` (best possible there) and Algorithm 4 / Theorem 21 on `R2` |
//! | `SqrtSumP` | Algorithm 1 / Theorem 9, matching Theorem 8's `Ω(n^{1/2−ε})` inapproximability wall |
//! | `OnePlusEps(ε)` | Algorithm 5 / Theorem 22, the `R2` FPTAS |
//! | `Heuristic` | no worst-case promise; for `R`, `m ≥ 3` Theorem 24 proves none is possible |
//!
//! ## Crate map
//!
//! * [`graph`] — bipartite graph kit (coloring, matching, flows,
//!   max-weight independent sets, Gilbert's `G_{n,n,p}`, the Figure 1
//!   gadgets);
//! * [`model`] — instances, schedules, exact rational makespans, the
//!   `C**_max` bound machinery, workload generators;
//! * [`exact`] — brute force, branch & bound, pseudo-polynomial `Q2`/`R2`
//!   oracles, the 1-PrExt decider, and the shared
//!   [`SearchCtl`](exact::SearchCtl) (cross-engine cancellation +
//!   incumbent-bound exchange) the portfolio race runs on;
//! * [`cp`] — the constraint-propagation engine: load/horizon
//!   propagation against a binary-searched makespan bound,
//!   conflict-graph domain pruning, activity-based branching with
//!   restarts;
//! * [`fptas`] — the `Rm || C_max` FPTAS substrate;
//! * [`baselines`] — graph-aware LPT and the Bodlaender–Jansen–Woeginger
//!   2-approximation;
//! * [`core`] — the paper's Algorithms 1–5, Theorem 4, the Theorem 8/24
//!   gap reductions, and the [`Solver`](core::Solver) engine;
//! * [`random`] — Section 4.1's random-graph analysis;
//! * [`obs`] — the flight recorder (lock-free per-thread event rings,
//!   Chrome trace-event export), the leveled logger, and the
//!   `cfg(bisched_model)` model-checking scheduler behind the `sync`
//!   facade;
//! * [`lab`] — the scenario corpus, benchmark harness, and
//!   perf-regression gate behind `bisched_cli lab`;
//! * [`service`] — the solve daemon: sharded by canonical fingerprint
//!   (per-shard cache, queue, workers, histograms, exemplars — no
//!   cross-shard lock on the hot path), JSON-lines TCP protocol with
//!   opt-in binary framing, cache snapshot warm starts, stats and
//!   Prometheus metrics.

#![warn(missing_docs)]
// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
pub use bisched_baselines as baselines;
pub use bisched_core as core;
pub use bisched_cp as cp;
pub use bisched_exact as exact;
pub use bisched_fptas as fptas;
pub use bisched_graph as graph;
pub use bisched_lab as lab;
pub use bisched_model as model;
pub use bisched_obs as obs;
pub use bisched_random as random;
pub use bisched_service as service;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use bisched_core::{
        alg1_sqrt_approx, alg2_random_graph, r2_fptas, r2_two_approx, Guarantee, Method,
        MethodPolicy, SolveError, SolveReport, Solver, SolverConfig,
    };
    pub use bisched_graph::{Graph, GraphBuilder};
    pub use bisched_model::{Instance, Rat, Schedule};
}
