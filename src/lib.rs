//! # bisched — scheduling with bipartite incompatibility graphs
//!
//! A faithful, production-grade Rust implementation of
//! *"Scheduling on uniform and unrelated machines with bipartite
//! incompatibility graphs"* (Tytus Pikies, Hanna Furmańczyk, IPPS 2022,
//! arXiv:2106.14354), together with every substrate it stands on.
//!
//! ## The model
//!
//! Jobs with processing requirements must be assigned to parallel machines
//! (identical `P`, uniform `Q`, or unrelated `R`) so that the jobs on any
//! one machine form an **independent set** of a bipartite incompatibility
//! graph; the objective is the makespan `C_max`.
//!
//! ## Quick start
//!
//! ```
//! use bisched::graph::Graph;
//! use bisched::model::Instance;
//! use bisched::core::solve;
//!
//! // Four jobs; 0–1 and 2–3 must not share a machine.
//! let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
//! // Two uniform machines, the first twice as fast.
//! let inst = Instance::uniform(vec![2, 1], vec![4, 3, 2, 3], g).unwrap();
//!
//! let solution = solve(&inst).unwrap();
//! assert!(solution.schedule.validate(&inst).is_ok());
//! println!("C_max = {} via {:?} ({})",
//!          solution.makespan, solution.method, solution.guarantee);
//! ```
//!
//! ## Crate map
//!
//! * [`graph`] — bipartite graph kit (coloring, matching, flows,
//!   max-weight independent sets, Gilbert's `G_{n,n,p}`, the Figure 1
//!   gadgets);
//! * [`model`] — instances, schedules, exact rational makespans, the
//!   `C**_max` bound machinery, workload generators;
//! * [`exact`] — brute force, branch & bound, pseudo-polynomial `Q2`/`R2`
//!   oracles, the 1-PrExt decider;
//! * [`fptas`] — the `Rm || C_max` FPTAS substrate;
//! * [`baselines`] — graph-aware LPT and the Bodlaender–Jansen–Woeginger
//!   2-approximation;
//! * [`core`] — the paper's Algorithms 1–5, Theorem 4, and the Theorem
//!   8/24 gap reductions;
//! * [`random`] — Section 4.1's random-graph analysis.

#![warn(missing_docs)]

pub use bisched_baselines as baselines;
pub use bisched_core as core;
pub use bisched_exact as exact;
pub use bisched_fptas as fptas;
pub use bisched_graph as graph;
pub use bisched_model as model;
pub use bisched_random as random;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use bisched_core::{
        alg1_sqrt_approx, alg2_random_graph, r2_fptas, r2_two_approx, solve, Method, Solution,
    };
    pub use bisched_graph::{Graph, GraphBuilder};
    pub use bisched_model::{Instance, Rat, Schedule};
}
