//! Dialing accuracy against time on `R2 | G = bipartite | C_max`:
//! Algorithm 4 (2-approx, linear time) versus Algorithm 5 (FPTAS) at
//! several `ε`, cross-checked against the exact pseudo-polynomial oracle.
//!
//! Run with: `cargo run --release --example unrelated_fptas`

use bisched::exact::r2_bipartite_exact;
use bisched::graph::gilbert_bipartite;
use bisched::model::{Instance, UnrelatedFamily};
use bisched::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // Sparse graph (a ≈ 1): many small components, so many orientation
    // trade-offs for the FPTAS to weigh against each other.
    let n = 60usize;
    let graph = gilbert_bipartite(n / 2, n / 2, 1.0 / (n / 2) as f64, &mut rng);
    let times = UnrelatedFamily::Uncorrelated { lo: 1, hi: 100 }.sample(2, n, &mut rng);
    let inst = Instance::unrelated(times, graph).unwrap();

    let t0 = Instant::now();
    let exact = r2_bipartite_exact(&inst).unwrap();
    let exact_time = t0.elapsed();
    println!(
        "exact oracle:    C_max = {:>6}   ({exact_time:.2?})",
        exact.makespan
    );

    let t0 = Instant::now();
    let rough = r2_two_approx(&inst).unwrap();
    let rough_time = t0.elapsed();
    println!(
        "Algorithm 4:     C_max = {:>6}   ratio {:.4}  ({rough_time:.2?})",
        rough.makespan(&inst),
        rough.makespan(&inst).ratio_to(&exact.makespan)
    );

    for eps in [1.0, 0.5, 0.2, 0.05, 0.01] {
        let t0 = Instant::now();
        let s = r2_fptas(&inst, eps).unwrap();
        let dt = t0.elapsed();
        let mk = s.makespan(&inst);
        let ratio = mk.ratio_to(&exact.makespan);
        println!("Algorithm 5 ε={eps:<5}: C_max = {mk:>5}   ratio {ratio:.4}  ({dt:.2?})");
        assert!(ratio <= 1.0 + eps + 1e-9, "FPTAS guarantee violated");
    }
    println!("\nTheorem 22: every ε row is within (1+ε) of the oracle.");
}
