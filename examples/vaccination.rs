//! The paper's motivating scenario: an inoculation campaign.
//!
//! A government must vaccinate a population split into two groups with
//! cross-group personal conflicts, using medical facilities of different
//! daily capacities. People assigned to the same facility must be mutually
//! conflict-free; the goal is to finish the campaign as early as possible.
//!
//! People = jobs (unit processing), conflicts = a bipartite incompatibility
//! graph, facilities = uniform machines whose speed is the daily capacity.
//!
//! Run with: `cargo run --release --example vaccination`

use bisched::graph::gilbert_bipartite;
use bisched::model::bounds::min_time_to_cover;
use bisched::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2022);

    // Two communities of 400 people each; each cross-community pair is in
    // conflict with probability 3/n (the critical regime of Section 4.1).
    let n = 400usize;
    let conflicts = gilbert_bipartite(n, n, 3.0 / n as f64, &mut rng);
    println!(
        "population: {} people, {} pairwise conflicts",
        2 * n,
        conflicts.num_edges()
    );

    // Five facilities: a large hospital, two clinics, two pop-up sites.
    // Speeds are daily throughputs.
    let capacities = vec![120u64, 60, 60, 25, 25];
    let people = vec![1u64; 2 * n];
    let inst = Instance::uniform(capacities.clone(), people, conflicts).unwrap();

    // Algorithm 2 is the tool for random conflict graphs (Theorem 19:
    // a.a.s. within twice the optimal campaign length).
    let plan = alg2_random_graph(&inst).expect("conflict graph is bipartite");
    plan.schedule
        .validate(&inst)
        .expect("no conflicts co-located");

    // The no-conflicts lower bound: pure capacity.
    let capacity_lb = min_time_to_cover(&capacities, 2 * n as u64);
    println!(
        "campaign length: {:.2} days (pure-capacity lower bound {:.2})",
        plan.makespan.to_f64(),
        capacity_lb.to_f64()
    );
    println!(
        "conflict overhead factor: {:.3}",
        plan.makespan.ratio_to(&capacity_lb)
    );
    for i in 0..inst.num_machines() as u32 {
        let assigned = plan.schedule.jobs_on(i).len();
        println!(
            "  facility {} (capacity {:>3}/day): {:>3} people, {:.2} days",
            i + 1,
            inst.speed(i),
            assigned,
            assigned as f64 / inst.speed(i) as f64
        );
    }

    // Sanity: the theorem's promise (checked statistically in experiment
    // E7; here it just demonstrates the API).
    assert!(plan.makespan.ratio_to(&plan.cstar) <= 2.5);
}
