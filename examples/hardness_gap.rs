//! The inapproximability results as a live demonstration: why no good
//! approximation can exist for `Qm`/`Rm` with `m ≥ 3` (Theorems 8 and 24).
//!
//! Both reductions embed an NP-complete coloring question (1-PrExt) into a
//! scheduling instance so that a good scheduler would answer it. This
//! example builds both, shows the YES/NO gap, and decodes a cheap schedule
//! back into the coloring it "solved".
//!
//! Run with: `cargo run --release --example hardness_gap`

use bisched::core::{reduce_1prext_to_qm, reduce_1prext_to_rm};
use bisched::exact::{
    branch_and_bound, claw_no_instance, path_yes_instance, precoloring_extension, standard_pins,
};

fn main() {
    // A YES instance of 1-PrExt: a path whose pinned endpoints extend.
    let (yes_graph, yes_pins) = path_yes_instance(3);
    let coloring = precoloring_extension(&yes_graph, &standard_pins(&yes_pins), 3)
        .expect("this instance extends");
    // A NO instance: the claw — its center would need a fourth color.
    let (no_graph, no_pins) = claw_no_instance(3);
    assert!(precoloring_extension(&no_graph, &standard_pins(&no_pins), 3).is_none());

    println!("== Theorem 8: uniform machines, unit jobs ==");
    for k in [2u64, 4, 8] {
        let red = reduce_1prext_to_qm(&yes_graph, yes_pins, k, 4);
        let witness = red.schedule_from_coloring(&coloring);
        let mk = witness.makespan(&red.instance);
        println!(
            "k={k}: n'={} jobs; YES witness C_max = {:.4}, NO floor = {}, gap ≈ {:.1}x",
            red.instance.num_jobs(),
            mk.to_f64(),
            red.no_bound(),
            red.no_bound().ratio_to(&mk)
        );
        // The witness decodes back to the coloring that built it.
        assert!(red.decodes_to_yes(&witness, &yes_graph));
    }
    println!("A c*sqrt(n)-approximation would separate YES from NO -> P = NP.");

    println!("\n== Theorem 24: unrelated machines ==");
    for d in [100u64, 10_000] {
        let yes = reduce_1prext_to_rm(&yes_graph, yes_pins, d, 3);
        let no = reduce_1prext_to_rm(&no_graph, no_pins, d, 3);
        let yes_opt = branch_and_bound(&yes.instance, 50_000_000)
            .optimum
            .expect("feasible")
            .makespan;
        let no_opt = branch_and_bound(&no.instance, 50_000_000)
            .optimum
            .expect("feasible")
            .makespan;
        println!(
            "d={d}: OPT(YES) = {yes_opt} <= n = {}, OPT(NO) = {no_opt} >= d; gap = {:.0}x",
            yes.yes_bound(),
            no_opt.ratio_to(&yes_opt)
        );
        assert!(yes_opt <= yes.yes_bound());
        assert!(no_opt >= no.no_bound());
    }
    println!("The gap scales with p_max — no O(n^b * p_max^(1-eps)) ratio is possible.");
}
