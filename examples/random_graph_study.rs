//! A miniature of the Section 4.1 study: how Algorithm 2's quality tracks
//! the `p(n)` regime, live at the terminal.
//!
//! Run with: `cargo run --release --example random_graph_study`

use bisched::graph::EdgeProbability;
use bisched::model::SpeedProfile;
use bisched::random::{alg2_ratio_experiment, lemma14_limit, random_graph_statistics};

fn main() {
    let regimes = [
        EdgeProbability::SubCritical { exponent: 1.5 },
        EdgeProbability::Critical { a: 1.0 },
        EdgeProbability::Critical { a: 4.0 },
        EdgeProbability::SuperCritical {
            c: 1.0,
            exponent: 0.5,
        },
        EdgeProbability::Constant { p: 0.2 },
    ];

    println!("== graph shape across regimes (n = 512, 16 seeds) ==");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "regime", "|V'2|/n", "mu/n", "|V'2|/mu", "limit 1.6"
    );
    for regime in regimes {
        let row = random_graph_statistics(512, regime, 16, 42);
        println!(
            "{:<22} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            row.regime,
            row.minor_fraction_mean,
            row.matching_fraction_mean,
            row.ratio_mean,
            lemma14_limit()
        );
    }

    println!("\n== Algorithm 2 vs graph-aware lower bound (m = 6) ==");
    println!(
        "{:<22} {:<18} {:>12} {:>12}",
        "regime", "speeds", "ratio mean", "ratio max"
    );
    for regime in regimes {
        for profile in [
            SpeedProfile::Equal,
            SpeedProfile::Geometric { ratio: 2 },
            SpeedProfile::OneFast { factor: 16 },
        ] {
            let row = alg2_ratio_experiment(512, regime, profile, 6, 16, 42);
            println!(
                "{:<22} {:<18} {:>12.4} {:>12.4}",
                row.regime, row.speeds, row.ratio_mean, row.ratio_max
            );
            assert!(
                row.ratio_max <= 3.0,
                "Theorem 19 violated far beyond its a.a.s. slack"
            );
        }
    }
    println!("\nTheorem 19: ratios concentrate at or below 2 as n grows.");
}
