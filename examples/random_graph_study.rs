//! The Section 4.1 study, served by the lab: the `paper-sec4` suite runs
//! the random-graph statistics and Algorithm 2 ratio tables that the old
//! standalone runners produced, now as one reproducible report.
//!
//! Run with: `cargo run --release --example random_graph_study`
//!
//! The same tables (plus `BENCH_paper-sec4.json`) come from
//! `bisched_cli lab run --suite paper-sec4`.

use bisched::lab::{run_suite, suite, RunOptions, Sec4Params};
use bisched::random::lemma14_limit;

fn main() {
    let mut sec4 = suite("paper-sec4").expect("registered suite");
    // A miniature of the CLI run: smaller sides, fewer seeds, same rows.
    sec4.sec4 = Some(Sec4Params {
        n: 256,
        seeds: 8,
        m: 6,
    });
    let report = run_suite(&sec4, &RunOptions::default());
    println!("{}", report.to_markdown());
    println!(
        "Lemma 14 limit e/(e-1) = {:.4}; Theorem 19: ratios concentrate at or below 2.",
        lemma14_limit()
    );
    for row in report.sec4_alg2.as_deref().unwrap_or_default() {
        assert!(
            row.ratio_max <= 3.0,
            "Theorem 19 violated far beyond its a.a.s. slack"
        );
    }
}
