//! Quickstart: build an instance, solve it through the `Solver` engine,
//! inspect the report.
//!
//! Run with: `cargo run --release --example quickstart`

use bisched::prelude::*;

fn main() {
    // Eight jobs. Edges say "these two must not share a machine".
    let graph = Graph::from_edges(8, &[(0, 4), (0, 5), (1, 5), (2, 6), (3, 7), (1, 6)]);
    let processing = vec![9, 7, 6, 5, 4, 3, 2, 2];

    // --- Uniform machines: the default Auto policy --------------------
    let inst = Instance::uniform(vec![4, 1, 1], processing.clone(), graph.clone()).unwrap();
    let report = Solver::new().solve(&inst).unwrap();
    report.schedule.validate(&inst).expect("feasible");
    println!("instance: {}", inst.describe());
    println!("method:   {} — {}", report.method, report.guarantee);
    println!(
        "C_max:    {}  (lower bound {})",
        report.makespan, report.lower_bound
    );
    for attempt in &report.attempts {
        println!(
            "  tried {:<16} {:?}  ({:.2?})",
            attempt.method.name(),
            attempt.makespan().map(Rat::to_f64),
            attempt.wall_time
        );
    }
    for i in 0..inst.num_machines() as u32 {
        let jobs = report.schedule.jobs_on(i);
        let load: u64 = jobs.iter().map(|&j| inst.processing(j)).sum();
        println!(
            "  M{} (speed {}): jobs {:?}, load {}, time {}",
            i + 1,
            inst.speed(i),
            jobs,
            load,
            Rat::new(load, inst.speed(i))
        );
    }

    // --- Two unrelated machines: forcing methods ----------------------
    let times = vec![vec![3, 9, 4, 8, 2, 7, 5, 1], vec![8, 2, 7, 3, 9, 1, 4, 6]];
    let r2 = Instance::unrelated(times, graph).unwrap();
    let fine = SolverConfig::new()
        .eps(0.05)
        .method(Method::R2Fptas)
        .build()
        .unwrap()
        .solve(&r2)
        .unwrap();
    let rough = SolverConfig::new()
        .method(Method::R2TwoApprox)
        .build()
        .unwrap()
        .solve(&r2)
        .unwrap();
    println!(
        "\nR2 FPTAS (ε=0.05): C_max = {} ({})",
        fine.makespan, fine.guarantee
    );
    println!(
        "R2 2-approx:       C_max = {} ({})",
        rough.makespan, rough.guarantee
    );
    assert!(fine.makespan <= rough.makespan);

    // --- A portfolio keeps the best of its members --------------------
    let portfolio = SolverConfig::new()
        .portfolio(vec![Method::R2TwoApprox, Method::R2Fptas, Method::ExactR2])
        .build()
        .unwrap()
        .solve(&r2)
        .unwrap();
    println!(
        "portfolio:         C_max = {} via {} ({})",
        portfolio.makespan, portfolio.method, portfolio.guarantee
    );
    assert!(portfolio.makespan <= fine.makespan);
}
