//! Quickstart: build an instance, solve it, inspect the schedule.
//!
//! Run with: `cargo run --release --example quickstart`

use bisched::prelude::*;

fn main() {
    // Eight jobs. Edges say "these two must not share a machine".
    let graph = Graph::from_edges(
        8,
        &[(0, 4), (0, 5), (1, 5), (2, 6), (3, 7), (1, 6)],
    );
    let processing = vec![9, 7, 6, 5, 4, 3, 2, 2];

    // --- Uniform machines: one fast, two slow -------------------------
    let inst = Instance::uniform(vec![4, 1, 1], processing.clone(), graph.clone()).unwrap();
    let solution = solve(&inst).unwrap();
    solution.schedule.validate(&inst).expect("feasible");
    println!("instance: {}", inst.describe());
    println!("method:   {:?} — {}", solution.method, solution.guarantee);
    println!("C_max:    {}", solution.makespan);
    for i in 0..inst.num_machines() as u32 {
        let jobs = solution.schedule.jobs_on(i);
        let load: u64 = jobs.iter().map(|&j| inst.processing(j)).sum();
        println!(
            "  M{} (speed {}): jobs {:?}, load {}, time {}",
            i + 1,
            inst.speed(i),
            jobs,
            load,
            Rat::new(load, inst.speed(i))
        );
    }

    // --- Two unrelated machines: the Theorem 22 FPTAS ------------------
    let times = vec![vec![3, 9, 4, 8, 2, 7, 5, 1], vec![8, 2, 7, 3, 9, 1, 4, 6]];
    let r2 = Instance::unrelated(times, graph).unwrap();
    let fast = r2_fptas(&r2, 0.05).unwrap();
    let rough = r2_two_approx(&r2).unwrap();
    println!("\nR2 FPTAS (ε=0.05): C_max = {}", fast.makespan(&r2));
    println!("R2 2-approx:       C_max = {}", rough.makespan(&r2));
    assert!(fast.makespan(&r2) <= rough.makespan(&r2));
}
