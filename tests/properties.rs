//! Property-based invariants across the whole stack (proptest).

use bisched::core::{alg1_sqrt_approx, r2_fptas, r2_two_approx};
use bisched::exact::{q2_bipartite_exact, r2_bipartite_exact};
use bisched::graph::{
    bipartition, inequitable_coloring_weighted, max_weight_independent_set, maximum_matching, Graph,
};
use bisched::model::{floor_capacities, min_time_to_cover, Instance, Rat};
use proptest::prelude::*;

/// Strategy: a random bipartite graph given part sizes and an edge mask.
fn bipartite_graph(max_side: usize) -> impl Strategy<Value = Graph> {
    (1..=max_side, 1..=max_side).prop_flat_map(|(a, b)| {
        proptest::collection::vec(any::<bool>(), a * b).prop_map(move |mask| {
            let mut edges = Vec::new();
            for i in 0..a {
                for j in 0..b {
                    if mask[i * b + j] {
                        edges.push((i as u32, (a + j) as u32));
                    }
                }
            }
            Graph::from_edges(a + b, &edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inequitable_coloring_is_proper_and_majorized(
        g in bipartite_graph(8),
        seed in 0u64..1000,
    ) {
        let n = g.num_vertices();
        let weights: Vec<u64> = (0..n).map(|i| 1 + (seed + i as u64) % 9).collect();
        let col = inequitable_coloring_weighted(&g, &weights).unwrap();
        prop_assert!(col.is_proper(&g));
        prop_assert!(col.major_weight() >= col.minor_weight());
        prop_assert_eq!(
            col.major_weight() + col.minor_weight(),
            weights.iter().sum::<u64>()
        );
        // Both classes are independent sets.
        prop_assert!(g.is_independent_set(&col.major()));
        prop_assert!(g.is_independent_set(&col.minor()));
    }

    #[test]
    fn koenig_duality(g in bipartite_graph(8)) {
        let bp = bipartition(&g).unwrap();
        let matching = maximum_matching(&g, &bp);
        let n = g.num_vertices();
        // α + μ = |V| (König) via the unweighted MWIS.
        let mwis = max_weight_independent_set(&g, &vec![1u64; n]);
        prop_assert_eq!(mwis.weight as usize + matching.size(), n);
        prop_assert!(g.is_independent_set(&mwis.vertices));
    }

    #[test]
    fn min_cover_time_is_monotone_and_tight(
        speeds in proptest::collection::vec(1u64..20, 1..6),
        demand in 0u64..200,
    ) {
        let t = min_time_to_cover(&speeds, demand);
        let caps: u64 = floor_capacities(&speeds, &t).iter().sum();
        prop_assert!(caps >= demand);
        // Monotonicity in demand.
        let t2 = min_time_to_cover(&speeds, demand + 1);
        prop_assert!(t2 >= t);
    }

    #[test]
    fn q2_exact_is_lower_than_any_orientation(
        g in bipartite_graph(6),
        seed in 0u64..1000,
    ) {
        let n = g.num_vertices();
        let p: Vec<u64> = (0..n).map(|i| 1 + (seed * 7 + i as u64) % 6).collect();
        let inst = Instance::uniform(vec![2, 1], p, g).unwrap();
        let opt = q2_bipartite_exact(&inst).unwrap();
        prop_assert!(opt.schedule.validate(&inst).is_ok());
        // The trivial coloring split is an upper bound.
        let split = bisched::baselines::coloring_split(&inst).unwrap();
        prop_assert!(opt.makespan <= split.makespan(&inst));
    }

    #[test]
    fn alg1_respects_theorem9_budget_vs_cstar(
        g in bipartite_graph(7),
        seed in 0u64..1000,
    ) {
        let n = g.num_vertices();
        let p: Vec<u64> = (0..n).map(|i| 1 + (seed * 3 + i as u64) % 8).collect();
        let inst = Instance::uniform(vec![4, 2, 1], p, g).unwrap();
        let r = alg1_sqrt_approx(&inst).unwrap();
        prop_assert!(r.schedule.validate(&inst).is_ok());
        if let Some(lb) = r.cstar_lower {
            if lb > Rat::ZERO {
                let budget = (inst.total_processing() as f64).sqrt() + 1e-9;
                // Against the C** *lower bound* — stricter than vs OPT.
                // The paper proves the ratio vs C**; empirically both hold.
                prop_assert!(
                    r.makespan.ratio_to(&lb) <= budget * 4.0,
                    "ratio vs C** exploded: {} / {}",
                    r.makespan,
                    lb
                );
            }
        }
    }

    #[test]
    fn r2_chain_exact_le_fptas_le_twoapprox_bound(
        g in bipartite_graph(6),
        seed in 0u64..1000,
    ) {
        let n = g.num_vertices();
        let times: Vec<Vec<u64>> = (0..2)
            .map(|i| (0..n).map(|j| 1 + (seed * 5 + i as u64 * 13 + j as u64) % 25).collect())
            .collect();
        let inst = Instance::unrelated(times, g).unwrap();
        let exact = r2_bipartite_exact(&inst).unwrap();
        let fptas = r2_fptas(&inst, 0.25).unwrap();
        let two = r2_two_approx(&inst).unwrap();
        prop_assert!(fptas.makespan(&inst) >= exact.makespan);
        prop_assert!(fptas.makespan(&inst).ratio_to(&exact.makespan) <= 1.25 + 1e-9);
        prop_assert!(two.makespan(&inst).ratio_to(&exact.makespan) <= 2.0 + 1e-9);
    }

    #[test]
    fn schedules_partition_jobs(
        g in bipartite_graph(6),
        seed in 0u64..100,
    ) {
        let n = g.num_vertices();
        let p: Vec<u64> = (0..n).map(|i| 1 + (seed + i as u64) % 4).collect();
        let inst = Instance::uniform(vec![3, 2, 1], p, g).unwrap();
        let r = alg1_sqrt_approx(&inst).unwrap();
        let mut seen = vec![false; n];
        for i in 0..inst.num_machines() as u32 {
            for j in r.schedule.jobs_on(i) {
                prop_assert!(!seen[j as usize], "job {} scheduled twice", j);
                seen[j as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b), "some job unscheduled");
    }
}
