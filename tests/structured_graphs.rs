//! The paper's algorithms on the structured bipartite subclasses from its
//! related-work section: trees [3], bounded-degree ("bisubquartic") graphs
//! [23], caterpillars, and complete bipartite graphs [20]/[24].

use bisched::core::{alg1_sqrt_approx, alg2_random_graph, Solver};
use bisched::exact::{brute_force, q_complete_bipartite_unit};
use bisched::graph::{bounded_degree_bipartite, caterpillar, random_tree, Graph};
use bisched::model::{Instance, JobSizes, SpeedProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn algorithms_handle_trees() {
    let mut rng = StdRng::seed_from_u64(401);
    for _ in 0..10 {
        let n = rng.gen_range(2..=10);
        let t = random_tree(n, &mut rng);
        let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(n, &mut rng);
        let inst = Instance::uniform(SpeedProfile::Geometric { ratio: 2 }.speeds(3), p, t).unwrap();
        let r = alg1_sqrt_approx(&inst).unwrap();
        assert!(r.schedule.validate(&inst).is_ok());
        let opt = brute_force(&inst).unwrap();
        // Trees are sparse and benign; Algorithm 1 should be well under
        // its budget here.
        let budget = (inst.total_processing() as f64).sqrt();
        assert!(r.makespan.ratio_to(&opt.makespan) <= budget + 1e-9);
    }
}

#[test]
fn algorithm2_on_caterpillars() {
    // Caterpillars have small minor classes (the spine's minor side), so
    // Algorithm 2 does well even deterministically.
    let g = caterpillar(10, 2);
    let n = g.num_vertices();
    let inst = Instance::uniform(vec![4, 2, 1, 1], vec![1; n], g).unwrap();
    let r = alg2_random_graph(&inst).unwrap();
    assert!(r.schedule.validate(&inst).is_ok());
    assert!(r.makespan.ratio_to(&r.cstar) <= 2.5);
}

#[test]
fn bounded_degree_graphs_all_engines() {
    let mut rng = StdRng::seed_from_u64(409);
    for max_deg in [2usize, 4] {
        let g = bounded_degree_bipartite(5, 5, max_deg, 0.7, &mut rng);
        let n = g.num_vertices();
        let p = JobSizes::Uniform { lo: 1, hi: 6 }.sample(n, &mut rng);
        let inst = Instance::uniform(vec![3, 2, 1], p, g).unwrap();
        let sol = Solver::new().solve(&inst).unwrap();
        assert!(sol.schedule.validate(&inst).is_ok());
        let opt = brute_force(&inst).unwrap();
        assert!(sol.makespan >= opt.makespan);
        assert!(sol.makespan.ratio_to(&opt.makespan) <= 4.0);
    }
}

#[test]
fn complete_bipartite_specialist_beats_generalists_runtime_domain() {
    // On K_{a,b} the [24] specialist is exact; Algorithm 1 must stay
    // within its budget of that exact value.
    let mut rng = StdRng::seed_from_u64(419);
    for _ in 0..8 {
        let a = rng.gen_range(2..=6);
        let b = rng.gen_range(2..=6);
        let m = rng.gen_range(2..=4);
        let speeds: Vec<u64> = (0..m).map(|_| rng.gen_range(1..=5)).collect();
        let inst =
            Instance::uniform(speeds, vec![1; a + b], Graph::complete_bipartite(a, b)).unwrap();
        let exact = q_complete_bipartite_unit(&inst).unwrap();
        let approx = alg1_sqrt_approx(&inst).unwrap();
        assert!(approx.makespan >= exact.makespan);
        let budget = ((a + b) as f64).sqrt();
        assert!(
            approx.makespan.ratio_to(&exact.makespan) <= budget + 1e-9,
            "K_({a},{b}): {} vs {}",
            approx.makespan,
            exact.makespan
        );
    }
}

#[test]
fn star_forests_favor_inequitable_coloring() {
    // A forest of stars: all centers in the minor class, leaves major.
    let mut b = bisched::graph::GraphBuilder::new(0);
    for _ in 0..5 {
        let center = b.add_vertices(1);
        let first = b.add_vertices(4);
        for leaf in first..first + 4 {
            b.add_edge(center, leaf);
        }
    }
    let g = b.build();
    let n = g.num_vertices();
    let inst = Instance::uniform(vec![5, 1, 1], vec![1; n], g).unwrap();
    let r = alg2_random_graph(&inst).unwrap();
    assert!(r.schedule.validate(&inst).is_ok());
    assert_eq!(r.minor_size, 5, "the five centers form the minor class");
}
