//! End-to-end pipelines: generate → solve with every applicable engine →
//! validate feasibility → compare against the exact oracle.

use bisched::baselines::{bjw_two_approx, coloring_split, greedy_lpt};
use bisched::core::{
    alg1_sqrt_approx, alg2_random_graph, r2_fptas, r2_two_approx, thm4_fptas_route, Solver,
};
use bisched::exact::{brute_force, q2_bipartite_exact, r2_bipartite_exact};
use bisched::graph::{gilbert_bipartite, Graph};
use bisched::model::{Instance, JobSizes, SpeedProfile, UnrelatedFamily};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn every_engine_beats_nothing_and_validates_q() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..12 {
        let n = rng.gen_range(4..=10);
        let m = rng.gen_range(3..=4);
        let g = gilbert_bipartite(n / 2, n - n / 2, 0.4, &mut rng);
        let p = JobSizes::Uniform { lo: 1, hi: 10 }.sample(n, &mut rng);
        let inst = Instance::uniform(SpeedProfile::Geometric { ratio: 2 }.speeds(m), p, g).unwrap();
        let opt = brute_force(&inst).unwrap();

        // The paper's Algorithm 1.
        let a1 = alg1_sqrt_approx(&inst).unwrap();
        assert!(a1.schedule.validate(&inst).is_ok());
        assert!(a1.makespan >= opt.makespan);
        let bound = (inst.total_processing() as f64).sqrt();
        assert!(a1.makespan.ratio_to(&opt.makespan) <= bound + 1e-9);

        // Baselines are feasible and no better than optimal.
        let lpt = greedy_lpt(&inst).unwrap();
        assert!(lpt.validate(&inst).is_ok());
        assert!(lpt.makespan(&inst) >= opt.makespan);
        let split = coloring_split(&inst).unwrap();
        assert!(split.validate(&inst).is_ok());
        if inst.num_machines() >= 3 {
            let bjw = bjw_two_approx(&inst).unwrap();
            assert!(bjw.validate(&inst).is_ok());
        }

        // The engine picks something feasible and sane.
        let sol = Solver::new().solve(&inst).unwrap();
        assert!(sol.schedule.validate(&inst).is_ok());
        assert!(sol.makespan >= opt.makespan);
        assert!(sol.lower_bound <= opt.makespan);
    }
}

#[test]
fn q2_exact_routes_and_facade_agree() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..12 {
        let n = rng.gen_range(2..=10);
        let g = gilbert_bipartite(n / 2, n - n / 2, 0.5, &mut rng);
        let inst = Instance::uniform(vec![3, 1], vec![1; n], g).unwrap();
        let dp = q2_bipartite_exact(&inst).unwrap();
        let fptas_route = thm4_fptas_route(&inst).unwrap();
        let facade = Solver::new().solve(&inst).unwrap();
        assert_eq!(dp.makespan, fptas_route.makespan);
        assert_eq!(facade.makespan, dp.makespan);
        let bf = brute_force(&inst).unwrap();
        assert_eq!(bf.makespan, dp.makespan);
    }
}

#[test]
fn r2_ladder_of_guarantees() {
    let mut rng = StdRng::seed_from_u64(107);
    for fam in [
        UnrelatedFamily::Uncorrelated { lo: 1, hi: 60 },
        UnrelatedFamily::JobCorrelated {
            base: (5, 60),
            spread: 8,
        },
    ] {
        for _ in 0..8 {
            let n = rng.gen_range(3..=11);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.35, &mut rng);
            let inst = Instance::unrelated(fam.sample(2, n, &mut rng), g).unwrap();
            let exact = r2_bipartite_exact(&inst).unwrap();
            let two = r2_two_approx(&inst).unwrap();
            let fine = r2_fptas(&inst, 0.05).unwrap();
            assert!(two.validate(&inst).is_ok());
            assert!(fine.validate(&inst).is_ok());
            // exact <= fptas(0.05) <= 1.05*exact <= 2approx-bound
            assert!(fine.makespan(&inst) >= exact.makespan);
            assert!(fine.makespan(&inst).ratio_to(&exact.makespan) <= 1.05 + 1e-9);
            assert!(two.makespan(&inst).ratio_to(&exact.makespan) <= 2.0 + 1e-9);
        }
    }
}

#[test]
fn unit_random_graph_pipeline() {
    let mut rng = StdRng::seed_from_u64(109);
    let g = gilbert_bipartite(64, 64, 2.0 / 64.0, &mut rng);
    let inst = Instance::uniform(
        SpeedProfile::TwoTier {
            fast_count: 2,
            factor: 8,
        }
        .speeds(6),
        vec![1; 128],
        g,
    )
    .unwrap();
    let a2 = alg2_random_graph(&inst).unwrap();
    assert!(a2.schedule.validate(&inst).is_ok());
    // Makespan at least the capacity bound, at most a small multiple.
    assert!(a2.makespan >= a2.cstar);
    assert!(a2.makespan.ratio_to(&a2.cstar) <= 3.0);
    // Algorithm 1 also applies (unit jobs are jobs too) and is feasible.
    let a1 = alg1_sqrt_approx(&inst).unwrap();
    assert!(a1.schedule.validate(&inst).is_ok());
}

#[test]
fn infeasibility_is_detected_consistently() {
    // Odd cycle: not bipartite — every paper algorithm must refuse.
    let g = Graph::cycle(7);
    let q = Instance::uniform(vec![2, 1, 1], vec![1; 7], g.clone()).unwrap();
    assert!(alg1_sqrt_approx(&q).is_err());
    assert!(alg2_random_graph(&q).is_err());
    assert!(Solver::new().solve(&q).is_err());
    let r = Instance::unrelated(vec![vec![1; 7], vec![2; 7]], g).unwrap();
    assert!(r2_two_approx(&r).is_err());
    assert!(r2_fptas(&r, 0.5).is_err());
    // But brute force on 3 machines schedules it fine (C7 is 3-colorable).
    let q3 = Instance::identical(3, vec![1; 7], Graph::cycle(7)).unwrap();
    assert!(brute_force(&q3).is_some());
}
