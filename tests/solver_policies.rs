//! Dispatch-policy matrix: what `Auto` selects across {P, Q, R} ×
//! {m = 1, 2, 3, 8}, that every `Force(Method)` either solves or refuses
//! with a typed error, and that `Portfolio` dominates its members.

use bisched::core::{
    EngineOutcome, Guarantee, Method, MethodPolicy, SolveError, Solver, SolverConfig,
};
use bisched::graph::Graph;
use bisched::model::Instance;

/// Twelve jobs (`> auto_exact_jobs`, so `Auto` skips branch and bound and
/// the environment dispatch is what's under test), sizes 1..=4.
const N: usize = 12;

fn processing() -> Vec<u64> {
    (0..N as u64).map(|j| 1 + j % 4).collect()
}

/// A bipartite graph when the machine count allows edges, else edge-free
/// (m = 1 is only feasible with no incompatibilities).
fn graph(m: usize) -> Graph {
    if m == 1 {
        Graph::empty(N)
    } else {
        Graph::from_edges(
            N,
            &[
                (0, 6),
                (1, 7),
                (2, 8),
                (3, 9),
                (4, 10),
                (5, 11),
                (0, 7),
                (2, 9),
            ],
        )
    }
}

/// The {P, Q, R} × {1, 2, 3, 8} instance matrix.
fn matrix() -> Vec<(String, Instance)> {
    let mut out = Vec::new();
    for m in [1usize, 2, 3, 8] {
        let g = graph(m);
        out.push((
            format!("P{m}"),
            Instance::identical(m, processing(), g.clone()).unwrap(),
        ));
        out.push((
            format!("Q{m}"),
            Instance::uniform((1..=m as u64).rev().collect(), processing(), g.clone()).unwrap(),
        ));
        let times: Vec<Vec<u64>> = (0..m as u64)
            .map(|i| (0..N as u64).map(|j| 1 + (3 * i + 2 * j) % 7).collect())
            .collect();
        out.push((format!("R{m}"), Instance::unrelated(times, g).unwrap()));
    }
    out
}

#[test]
fn auto_selects_the_documented_method() {
    let solver = Solver::new();
    for (name, inst) in matrix() {
        let report = solver
            .solve(&inst)
            .unwrap_or_else(|e| panic!("{name}: auto failed: {e}"));
        report
            .schedule
            .validate(&inst)
            .unwrap_or_else(|e| panic!("{name}: infeasible schedule: {e:?}"));
        assert!(report.makespan >= report.lower_bound, "{name}: below bound");

        let expected: &[Method] = match name.as_str() {
            // Two identical/uniform machines with Σp_j under the budget:
            // the exact subset-sum DP.
            "P2" | "Q2" => &[Method::ExactQ2],
            // Identical, m ≥ 3: best of BJW and Algorithm 1.
            "P3" | "P8" => &[Method::Bjw, Method::Alg1],
            // Uniform (and the trivial m = 1 cases): Algorithm 1.
            "P1" | "Q1" | "Q3" | "Q8" => &[Method::Alg1],
            // Two unrelated machines, row mass under the budget: exact DP.
            "R2" => &[Method::ExactR2],
            // Unrelated otherwise: Theorem 24 leaves only heuristics.
            "R1" | "R3" | "R8" => &[Method::GreedyR],
            other => panic!("unexpected matrix entry {other}"),
        };
        assert!(
            expected.contains(&report.method),
            "{name}: auto chose {}, expected one of {expected:?}",
            report.method
        );
        // Whatever won, the reported winner's makespan is the returned one.
        let winner = report
            .attempts
            .iter()
            .find(|a| a.method == report.method)
            .expect("winner must be among the attempts");
        assert_eq!(winner.makespan(), Some(&report.makespan), "{name}");
        // And no recorded attempt did strictly better.
        for run in &report.attempts {
            if let Some(mk) = run.makespan() {
                assert!(
                    *mk >= report.makespan,
                    "{name}: {} beat the winner",
                    run.method
                );
            }
        }
    }
}

#[test]
fn auto_prefers_proven_optima_on_small_instances() {
    // n = 5 ≤ auto_exact_jobs: a complete branch and bound wins outright.
    let inst = Instance::identical(
        3,
        vec![3, 2, 2, 1, 1],
        Graph::from_edges(5, &[(0, 1), (2, 3)]),
    )
    .unwrap();
    let report = Solver::new().solve(&inst).unwrap();
    assert_eq!(report.method, Method::BranchAndBound);
    assert_eq!(report.guarantee, Guarantee::Optimal);
    let opt = bisched::exact::brute_force(&inst).unwrap();
    assert_eq!(report.makespan, opt.makespan);
}

#[test]
fn every_forced_method_solves_or_refuses_with_a_typed_error() {
    for (name, inst) in matrix() {
        for method in Method::ALL {
            let solver = SolverConfig::new().method(method).build().unwrap();
            match solver.solve(&inst) {
                Ok(report) => {
                    assert_eq!(report.method, method, "{name}/{method}");
                    report
                        .schedule
                        .validate(&inst)
                        .unwrap_or_else(|e| panic!("{name}/{method}: invalid: {e:?}"));
                    assert_eq!(report.attempts.len(), 1, "{name}/{method}");
                    assert!(
                        matches!(report.attempts[0].outcome, EngineOutcome::Solved { .. }),
                        "{name}/{method}"
                    );
                }
                Err(SolveError::NotApplicable { method: m, reason }) => {
                    assert_eq!(m, method, "{name}: refusal names the wrong method");
                    assert!(!reason.is_empty(), "{name}/{method}: empty reason");
                }
                Err(other) => panic!("{name}/{method}: untyped failure {other:?}"),
            }
        }
    }
}

#[test]
fn forced_applicability_matches_the_paper_table() {
    // Spot-check the applicability matrix rather than every cell: the
    // R2-only engines refuse P/Q and m ≠ 2; BJW refuses m < 3; Alg2
    // refuses non-unit jobs; the environment-agnostic engines always run.
    let by_name: std::collections::HashMap<String, Instance> = matrix().into_iter().collect();
    let solves = |name: &str, method: Method| -> bool {
        let solver = SolverConfig::new().method(method).build().unwrap();
        solver.solve(&by_name[name]).is_ok()
    };
    for name in ["P2", "Q2"] {
        assert!(solves(name, Method::ExactQ2));
        assert!(!solves(name, Method::ExactR2));
        assert!(!solves(name, Method::R2Fptas));
        assert!(!solves(name, Method::R2TwoApprox));
        assert!(!solves(name, Method::Bjw));
    }
    assert!(solves("R2", Method::ExactR2));
    assert!(solves("R2", Method::R2Fptas));
    assert!(solves("R2", Method::R2TwoApprox));
    assert!(!solves("R2", Method::ExactQ2));
    assert!(!solves("R2", Method::Alg1));
    assert!(solves("P3", Method::Bjw));
    assert!(solves("P8", Method::Bjw));
    assert!(!solves("R3", Method::Bjw));
    // Alg2 needs unit jobs; the matrix instances are non-unit.
    assert!(!solves("Q3", Method::Alg2));
    let unit = Instance::uniform(vec![2, 1, 1], vec![1; N], graph(3)).unwrap();
    let alg2 = SolverConfig::new().method(Method::Alg2).build().unwrap();
    assert!(alg2.solve(&unit).is_ok());
    for name in ["P1", "Q1", "R1", "P8", "Q8", "R8"] {
        assert!(solves(name, Method::BranchAndBound), "{name}");
        assert!(solves(name, Method::GreedyLpt), "{name}");
        assert!(solves(name, Method::GreedyR), "{name}");
    }
}

#[test]
fn portfolio_dominates_every_member_across_the_matrix() {
    for (name, inst) in matrix() {
        // Pick a portfolio whose members are applicable to the row's
        // environment, plus one that never is (it must be recorded, not
        // fatal).
        let members = match name.chars().next().unwrap() {
            'R' if inst.num_machines() == 2 => vec![
                Method::R2TwoApprox,
                Method::R2Fptas,
                Method::GreedyLpt,
                Method::Bjw, // never applicable on R
            ],
            'R' => vec![Method::GreedyR, Method::GreedyLpt, Method::R2Fptas],
            _ => vec![
                Method::GreedyLpt,
                Method::Alg1,
                Method::BranchAndBound,
                Method::ExactR2, // never applicable on P/Q
            ],
        };
        let solver = SolverConfig::new()
            .portfolio(members.clone())
            .build()
            .unwrap();
        let report = solver
            .solve(&inst)
            .unwrap_or_else(|e| panic!("{name}: portfolio failed: {e}"));
        assert_eq!(report.attempts.len(), members.len(), "{name}");
        let mut solved = 0;
        for (run, member) in report.attempts.iter().zip(&members) {
            assert_eq!(run.method, *member, "{name}: attempts in member order");
            if let Some(mk) = run.makespan() {
                solved += 1;
                assert!(
                    report.makespan <= *mk,
                    "{name}: portfolio lost to member {member}"
                );
            }
        }
        assert!(
            solved >= 2,
            "{name}: too few members ran to be a meaningful test"
        );
        assert!(members.contains(&report.method), "{name}");
    }
}

#[test]
fn portfolio_guarantee_is_the_strongest_applicable() {
    // On R2 the exact DP joins the portfolio, so even when the FPTAS
    // schedule ties, the report must claim optimality.
    let (_, r2) = matrix().into_iter().find(|(n, _)| n == "R2").unwrap();
    let solver = SolverConfig::new()
        .portfolio(vec![Method::R2TwoApprox, Method::ExactR2])
        .build()
        .unwrap();
    let report = solver.solve(&r2).unwrap();
    assert_eq!(report.guarantee, Guarantee::Optimal);
}

#[test]
fn policy_is_visible_on_the_config() {
    let solver = SolverConfig::new()
        .policy(MethodPolicy::Force(Method::Alg1))
        .build()
        .unwrap();
    assert_eq!(solver.config().policy, MethodPolicy::Force(Method::Alg1));
}
