//! End-to-end validation of the Theorem 8 and Theorem 24 gap reductions
//! against the exact 1-PrExt decider — the executable version of the
//! paper's inapproximability arguments.

use bisched::core::{reduce_1prext_to_qm, reduce_1prext_to_rm};
use bisched::exact::{
    branch_and_bound, claw_no_instance, greedy_incumbent, path_yes_instance, precoloring_extension,
    standard_pins,
};
use bisched::graph::{gilbert_bipartite, Graph, Vertex};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random small bipartite 1-PrExt instances with known answers.
fn sample_instances(count: usize, seed: u64) -> Vec<(Graph, [Vertex; 3], bool)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    while out.len() < count {
        let g = gilbert_bipartite(4, 4, 0.5, &mut rng);
        let pins = [0u32, 1, 4];
        let yes = precoloring_extension(&g, &standard_pins(&pins), 3).is_some();
        out.push((g, pins, yes));
    }
    out
}

#[test]
fn thm24_gap_matches_prext_answer_exactly() {
    let d = 64u64;
    for (g, pins, yes) in sample_instances(12, 211) {
        let red = reduce_1prext_to_rm(&g, pins, d, 3);
        let opt = branch_and_bound(&red.instance, 50_000_000);
        assert!(opt.complete, "oracle must finish at this size");
        let mk = opt.optimum.unwrap().makespan;
        if yes {
            assert!(
                mk <= red.yes_bound(),
                "YES instance but OPT {mk} > n = {}",
                red.yes_bound()
            );
        } else {
            assert!(
                mk >= red.no_bound(),
                "NO instance but OPT {mk} < d = {}",
                red.no_bound()
            );
        }
    }
}

#[test]
fn thm24_optimal_schedule_decodes_iff_yes() {
    for (g, pins, yes) in sample_instances(8, 223) {
        let red = reduce_1prext_to_rm(&g, pins, 64, 4);
        let opt = branch_and_bound(&red.instance, 50_000_000).optimum.unwrap();
        if yes {
            assert!(opt.makespan < red.no_bound());
            assert!(
                red.decodes_to_yes(&opt.schedule, &g),
                "cheap optimum must expose a proper extension"
            );
        } else {
            assert!(!red.decodes_to_yes(&opt.schedule, &g));
        }
    }
}

#[test]
fn thm8_yes_side_constructive() {
    // YES instances: the coloring-derived schedule beats the gap.
    let (g, pins) = path_yes_instance(4);
    let coloring = precoloring_extension(&g, &standard_pins(&pins), 3).expect("YES");
    for k in [1u64, 2, 3] {
        let red = reduce_1prext_to_qm(&g, pins, k, 5);
        let s = red.schedule_from_coloring(&coloring);
        s.validate(&red.instance).expect("witness feasible");
        let mk = s.makespan(&red.instance);
        assert!(mk <= red.yes_bound());
        assert!(
            red.no_bound().ratio_to(&mk) >= k as f64 * 0.8,
            "gap did not scale with k"
        );
    }
}

#[test]
fn thm8_no_side_contrapositive() {
    // NO instance: every schedule our solvers produce must respect the
    // forcing — either it costs ≥ the NO bound, or (impossibly) it would
    // decode to a proper extension.
    let (g, pins) = claw_no_instance(3);
    assert!(precoloring_extension(&g, &standard_pins(&pins), 3).is_none());
    let red = reduce_1prext_to_qm(&g, pins, 2, 4);
    let candidates = vec![
        greedy_incumbent(&red.instance).unwrap().schedule,
        bisched::core::alg1_sqrt_approx(&red.instance)
            .unwrap()
            .schedule,
        bisched::core::alg2_random_graph(&red.instance)
            .unwrap()
            .schedule,
    ];
    for s in candidates {
        s.validate(&red.instance).expect("feasible");
        let mk = s.makespan(&red.instance);
        assert!(
            mk >= red.no_bound() || red.decodes_to_yes(&s, &g),
            "schedule at {mk} beneath the NO bound without decoding — forcing violated"
        );
    }
}

#[test]
fn thm8_yes_side_decodes_roundtrip_on_random_instances() {
    for (g, pins, yes) in sample_instances(6, 227) {
        if !yes {
            continue;
        }
        let coloring = precoloring_extension(&g, &standard_pins(&pins), 3).unwrap();
        let red = reduce_1prext_to_qm(&g, pins, 2, 4);
        let s = red.schedule_from_coloring(&coloring);
        assert!(red.decodes_to_yes(&s, &g));
        assert!(s.makespan(&red.instance) < red.no_bound());
    }
}
