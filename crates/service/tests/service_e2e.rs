//! End-to-end service tests: a daemon on an ephemeral loopback port, a
//! mixed {P,Q,R} × {2,3,8} workload pushed concurrently from several
//! client threads, response validation against the original instances,
//! cache-hit accounting, and a graceful drain on shutdown.

use bisched_graph::gilbert_bipartite;
use bisched_model::{
    Instance, InstanceData, JobSizes, Rat, Schedule, SpeedProfile, UnrelatedFamily,
};
use bisched_service::{Client, Request, ServeOptions, Service};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Two instances for every (env, m) pair of {P,Q,R} × {2,3,8}.
fn mixed_workload() -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(0x5EEE);
    let mut out = Vec::new();
    for &m in &[2usize, 3, 8] {
        for round in 0..2u64 {
            // n ≥ 11 keeps Auto off the exhaustive branch-and-bound path,
            // which is slow in debug builds.
            let n = 11 + (m + round as usize) % 4;
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.35, &mut rng);
            let sizes = JobSizes::Uniform { lo: 1, hi: 25 }.sample(n, &mut rng);
            out.push(Instance::identical(m, sizes, g.clone()).unwrap());

            let g = gilbert_bipartite(n / 2, n - n / 2, 0.35, &mut rng);
            let sizes = JobSizes::Uniform { lo: 1, hi: 25 }.sample(n, &mut rng);
            let speeds = SpeedProfile::Geometric { ratio: 2 }.speeds(m);
            out.push(Instance::uniform(speeds, sizes, g).unwrap());

            let g = gilbert_bipartite(n / 2, n - n / 2, 0.35, &mut rng);
            let times = UnrelatedFamily::Uncorrelated { lo: 1, hi: 40 }.sample(m, n, &mut rng);
            out.push(Instance::unrelated(times, g).unwrap());
        }
    }
    out
}

/// Submits the whole workload on one connection, validating every
/// response against its instance; returns (ok, cached) counts.
fn submit_all(addr: std::net::SocketAddr, workload: &[Instance]) -> (usize, usize) {
    let mut client = Client::connect(addr).expect("connect");
    let mut ok = 0;
    let mut cached = 0;
    for (k, inst) in workload.iter().enumerate() {
        let mut req = Request::solve(InstanceData::from_instance(inst));
        req.id = Some(k as u64);
        let resp = client.request(&req).expect("response");
        assert_eq!(resp.status, "ok", "request {k}: {:?}", resp.error);
        assert_eq!(resp.id, Some(k as u64));
        let assignment = resp.assignment.clone().expect("assignment");
        let schedule = Schedule::new(assignment);
        schedule
            .validate(inst)
            .unwrap_or_else(|e| panic!("request {k} returned an invalid schedule: {e}"));
        // The reported makespan must be the mapped schedule's actual
        // makespan — this catches bad cache-hit label translation.
        let reported = Rat::new(resp.makespan_num.unwrap(), resp.makespan_den.unwrap());
        assert_eq!(
            schedule.makespan(inst),
            reported,
            "request {k}: reported makespan disagrees with the returned schedule"
        );
        ok += 1;
        if resp.cached == Some(true) {
            cached += 1;
        }
    }
    (ok, cached)
}

#[test]
fn concurrent_mixed_workload_validates_hits_cache_and_drains() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 3,
        batch: 4,
        cache_cap: 256,
        queue_cap: 512,
        ..ServeOptions::default()
    })
    .expect("start service");
    let addr = service.local_addr();
    let workload = Arc::new(mixed_workload());
    assert_eq!(workload.len(), 18); // {P,Q,R} x {2,3,8} x 2 rounds

    // Four client threads submit the *same* workload concurrently, so
    // every instance is solved at most a handful of times and served
    // from the cache afterwards.
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let workload = Arc::clone(&workload);
            std::thread::spawn(move || submit_all(addr, &workload))
        })
        .collect();
    let mut total_ok = 0;
    let mut total_cached = 0;
    for t in threads {
        let (ok, cached) = t.join().expect("client thread");
        total_ok += ok;
        total_cached += cached;
    }
    assert_eq!(total_ok, 4 * workload.len(), "every request answered ok");
    assert!(
        total_cached > 0,
        "duplicate submissions must be served from the cache"
    );

    // Stats agree: hits observed, everything solved, nothing dropped.
    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    assert!(stats.cache_hits > 0, "stats must report cache hits");
    assert_eq!(stats.solved, 4 * workload.len() as u64);
    assert_eq!(stats.errors, 0);
    assert!(stats.batches > 0);
    assert!(stats.batched_jobs >= stats.cache_misses);
    assert!(stats.hit_rate > 0.0 && stats.hit_rate < 1.0);
    // The latency split is populated: every miss went through the queue
    // and a solve_batch call.
    assert!(stats.solve_p50_ms > 0.0, "solve-time histogram is empty");

    // The `metrics` verb serves the same counters as Prometheus text.
    let text = client.metrics().expect("metrics");
    assert!(text.contains(&format!(
        "bisched_solved_total {}",
        4 * workload.len() as u64
    )));
    assert!(text.contains("# TYPE bisched_request_latency_seconds histogram"));
    assert!(text.contains("bisched_queue_wait_seconds_count"));
    assert!(text.contains("bisched_solve_time_seconds_bucket{le=\"+Inf\"}"));
    let wins: u64 = text
        .lines()
        .filter(|l| l.starts_with("bisched_method_wins_total{"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
        .sum();
    assert_eq!(wins, stats.cache_misses, "one win per fresh solve");

    // Graceful shutdown over the wire; join must drain and return the
    // final numbers without losing anything accepted.
    let resp = client.shutdown_server().expect("shutdown ack");
    assert_eq!(resp.status, "ok");
    drop(client);
    let final_stats = service.join();
    assert_eq!(final_stats.solved, 4 * workload.len() as u64);
    assert_eq!(final_stats.errors, 0);
}

#[test]
fn isomorphic_relabelings_hit_the_cache() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        batch: 1,
        ..ServeOptions::default()
    })
    .expect("start service");
    let mut client = Client::connect(service.local_addr()).expect("connect");

    // Same instance under two different job labelings.
    let a = Instance::identical(
        2,
        vec![5, 3, 8, 2, 9],
        bisched_graph::Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]),
    )
    .unwrap();
    let b = Instance::identical(
        2,
        vec![9, 2, 8, 3, 5],
        bisched_graph::Graph::from_edges(5, &[(4, 3), (3, 2), (1, 0)]),
    )
    .unwrap();

    let ra = client.solve(InstanceData::from_instance(&a)).expect("a");
    assert_eq!(ra.status, "ok");
    assert_eq!(ra.cached, Some(false));
    let rb = client.solve(InstanceData::from_instance(&b)).expect("b");
    assert_eq!(rb.status, "ok");
    assert_eq!(rb.cached, Some(true), "relabeling must hit the cache");
    // And the cached answer is translated into b's labeling correctly.
    let schedule = Schedule::new(rb.assignment.unwrap());
    assert!(schedule.validate(&b).is_ok());
    assert_eq!(
        (rb.makespan_num, rb.makespan_den),
        (ra.makespan_num, ra.makespan_den),
        "isomorphic instances share their makespan"
    );

    service.shutdown();
    service.join();
}

#[test]
fn per_request_overrides_and_errors() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        batch: 4,
        ..ServeOptions::default()
    })
    .expect("start service");
    let mut client = Client::connect(service.local_addr()).expect("connect");

    // Forced method that does not apply -> typed error response.
    let q3 = Instance::uniform(vec![3, 2, 1], vec![1; 6], bisched_graph::Graph::path(6)).unwrap();
    let mut req = Request::solve(InstanceData::from_instance(&q3));
    req.method = Some("fptas".into());
    let resp = client.request(&req).expect("response");
    assert_eq!(resp.status, "error");
    assert!(resp.error.unwrap().contains("not applicable"));

    // Unknown engine name rejected up front.
    let mut req = Request::solve(InstanceData::from_instance(&q3));
    req.method = Some("no-such-engine".into());
    let resp = client.request(&req).expect("response");
    assert_eq!(resp.status, "error");

    // Non-bipartite instance -> typed solve error.
    let odd = Instance::identical(3, vec![1; 5], bisched_graph::Graph::cycle(5)).unwrap();
    let resp = client
        .solve(InstanceData::from_instance(&odd))
        .expect("response");
    assert_eq!(resp.status, "error");
    assert!(resp.error.unwrap().contains("bipartite"));

    // Garbage line on a raw socket -> typed error response, and the same
    // connection stays usable for a valid request afterwards.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut raw = std::net::TcpStream::connect(service.local_addr()).expect("raw connect");
        let mut lines = BufReader::new(raw.try_clone().expect("clone"));
        writeln!(raw, "this is not json \u{1F41B}").expect("write garbage");
        let mut line = String::new();
        lines.read_line(&mut line).expect("error response");
        assert!(line.contains("\"status\":\"error\""), "got: {line}");
        writeln!(raw, "{{\"verb\":\"ping\",\"id\":9}}").expect("write ping");
        line.clear();
        lines.read_line(&mut line).expect("ping response");
        assert!(line.contains("\"status\":\"ok\""), "got: {line}");
    }
    let ping = client.ping().expect("ping after errors");
    assert_eq!(ping.status, "ok");

    // `method: "auto"` restores Auto dispatch even when it was already
    // resolved (it is not silently ignored).
    let mut req = Request::solve(InstanceData::from_instance(&q3));
    req.method = Some("auto".into());
    let resp = client.request(&req).expect("auto method");
    assert_eq!(resp.status, "ok");

    // Different solver configurations never share cache entries: a
    // default-config (Auto) report must not answer a forced-method
    // request for the same instance, and each configuration caches
    // independently.
    let r2 = Instance::unrelated(
        vec![vec![3, 5, 2, 4, 6, 3], vec![4, 2, 6, 3, 2, 5]],
        bisched_graph::Graph::path(6),
    )
    .unwrap();
    let auto = client
        .solve(InstanceData::from_instance(&r2))
        .expect("auto");
    assert_eq!(auto.cached, Some(false));
    let mut forced = Request::solve(InstanceData::from_instance(&r2));
    forced.method = Some("twoapprox".into());
    let f1 = client.request(&forced).expect("forced 1");
    assert_eq!(
        (f1.status.as_str(), f1.cached, f1.method.as_deref()),
        ("ok", Some(false), Some("twoapprox")),
        "a forced method must not be served the Auto report"
    );
    let f2 = client.request(&forced).expect("forced 2");
    assert_eq!(
        (f2.cached, f2.method.as_deref()),
        (Some(true), Some("twoapprox"))
    );
    let auto2 = client
        .solve(InstanceData::from_instance(&r2))
        .expect("auto 2");
    assert_eq!(auto2.cached, Some(true));
    assert_eq!(auto2.method, auto.method);

    // no_cache forces a re-solve but still stores/refreshes.
    let mut req = Request::solve(InstanceData::from_instance(&q3));
    req.no_cache = Some(true);
    let r1 = client.request(&req).expect("r1");
    assert_eq!(r1.cached, Some(false));
    let r2 = client.solve(InstanceData::from_instance(&q3)).expect("r2");
    assert_eq!(r2.cached, Some(true));

    service.shutdown();
    service.join();
}

#[test]
fn trace_verb_returns_exemplars_with_engine_counters() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        batch: 4,
        ..ServeOptions::default()
    })
    .expect("start service");
    let mut client = Client::connect(service.local_addr()).expect("connect");

    // Force branch-and-bound so the winning attempt carries `nodes`
    // counters all the way into the exemplar span tree.
    let inst = Instance::identical(
        2,
        vec![5, 3, 8, 2, 9, 4, 7, 6],
        bisched_graph::Graph::from_edges(8, &[(0, 1), (2, 3), (4, 5)]),
    )
    .unwrap();
    let mut req = Request::solve(InstanceData::from_instance(&inst));
    req.method = Some("branch-and-bound".into());
    req.id = Some(1);
    let resp = client.request(&req).expect("solve");
    assert_eq!(resp.status, "ok", "{:?}", resp.error);

    // Satellite: the solve response itself surfaces the counters.
    let attempts = resp.attempts.as_ref().expect("fresh solve has attempts");
    let winner = attempts
        .iter()
        .find(|a| a.method == "branch-and-bound" && a.outcome == "solved")
        .expect("forced engine attempt present");
    assert!(
        winner.stats.iter().any(|(n, v)| n == "nodes" && *v > 0),
        "bnb attempt must report a node count, got {:?}",
        winner.stats
    );

    // A cache hit must NOT carry attempts (they'd describe the original
    // solve, not this request).
    let hit = client.request(&req).expect("cached solve");
    assert_eq!(hit.cached, Some(true));
    assert!(hit.attempts.is_none());

    // The trace verb returns the request as a slow-request exemplar
    // whose span tree reaches the engine counters.
    let trace = client.trace().expect("trace");
    assert!(trace.k >= 1);
    let ex = trace
        .current
        .iter()
        .chain(&trace.previous)
        .find(|e| !e.cached && e.method.as_deref() == Some("branch-and-bound"))
        .expect("fresh bnb request captured as an exemplar");
    assert_eq!(ex.root.name, "solve_request");
    assert!(ex.total_ms > 0.0);
    let phases: Vec<&str> = ex.root.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(phases, vec!["canonicalize", "queue", "solve_batch"]);
    let batch = ex.root.children.last().unwrap();
    let engine = batch
        .children
        .iter()
        .find(|s| s.name == "branch-and-bound")
        .expect("engine span under solve_batch");
    assert!(
        engine.counters.iter().any(|(n, v)| n == "nodes" && *v > 0),
        "exemplar engine span must carry counters, got {:?}",
        engine.counters
    );
    // The cached repeat is captured too — with a canonicalize-only tree.
    let cached_ex = trace
        .current
        .iter()
        .chain(&trace.previous)
        .find(|e| e.cached)
        .expect("cache hit captured as an exemplar");
    assert_eq!(cached_ex.root.children.len(), 1);
    assert_eq!(cached_ex.root.children[0].name, "canonicalize");

    service.shutdown();
    service.join();
}

#[test]
fn exemplar_ring_keeps_the_worst_under_concurrency() {
    // k = 1: whatever survives must be the single slowest request the
    // window saw, no matter how many clients raced.
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        batch: 2,
        exemplar_k: 1,
        ..ServeOptions::default()
    })
    .expect("start service");
    let addr = service.local_addr();

    let workload = Arc::new(mixed_workload());
    let threads: Vec<_> = (0..3)
        .map(|_| {
            let workload = Arc::clone(&workload);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut worst: f64 = 0.0;
                for inst in workload.iter() {
                    let resp = client
                        .solve(InstanceData::from_instance(inst))
                        .expect("solve");
                    assert_eq!(resp.status, "ok");
                    worst = worst.max(resp.time_ms.unwrap());
                }
                worst
            })
        })
        .collect();
    let worst_seen = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .fold(0.0f64, f64::max);

    let mut client = Client::connect(addr).expect("connect");
    let trace = client.trace().expect("trace");
    assert_eq!(trace.k, 1);
    assert_eq!(
        trace.current.len(),
        1,
        "k = 1 keeps exactly one exemplar despite {} requests",
        3 * workload.len()
    );
    // `time_ms` and the exemplar's `total_ms` are the same measurement,
    // so the survivor must be exactly the slowest response any client
    // observed (faster exemplars were evicted by slower ones).
    assert_eq!(
        trace.current[0].total_ms, worst_seen,
        "the surviving exemplar must be the slowest request"
    );

    service.shutdown();
    service.join();
}

#[test]
fn exemplar_window_rolls_current_into_previous() {
    let window = std::time::Duration::from_secs(1);
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        batch: 1,
        exemplar_k: 4,
        exemplar_window: window,
        ..ServeOptions::default()
    })
    .expect("start service");
    let mut client = Client::connect(service.local_addr()).expect("connect");

    let inst = Instance::identical(2, vec![4, 2, 5], bisched_graph::Graph::path(3)).unwrap();
    let resp = client
        .solve(InstanceData::from_instance(&inst))
        .expect("solve");
    assert_eq!(resp.status, "ok");
    let before = client.trace().expect("trace before roll");
    assert_eq!(before.window, 0);
    assert_eq!(before.current.len(), 1);
    assert!(before.previous.is_empty());

    // One window later (well inside the second window, so the first
    // window's exemplar must survive as `previous`).
    std::thread::sleep(window + window / 5);
    let after = client.trace().expect("trace after roll");
    assert_eq!(after.window, 1, "window index advances");
    assert!(after.current.is_empty(), "new window starts empty");
    assert_eq!(
        after.previous.len(),
        1,
        "the completed window stays fetchable"
    );
    assert_eq!(
        after.previous[0].request_id, before.current[0].request_id,
        "same exemplar, one window older"
    );

    service.shutdown();
    service.join();
}

#[test]
fn unsorted_q_speeds_answered_in_submitted_machine_order() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        batch: 1,
        ..ServeOptions::default()
    })
    .expect("start service");
    let mut client = Client::connect(service.local_addr()).expect("connect");

    // Submitted speeds are [1, 3]: the server sorts them internally, so
    // without translation machine ids would silently refer to the wrong
    // machines. The reported makespan must match the schedule evaluated
    // under the *submitted* speed order.
    let data = InstanceData {
        env: "Q".into(),
        machines: None,
        speeds: Some(vec![1, 3]),
        processing: Some(vec![4, 4, 2]),
        times: None,
        jobs: 3,
        edges: vec![(0, 1)],
    };
    let resp = client.solve(data).expect("solve");
    assert_eq!(resp.status, "ok", "{:?}", resp.error);
    let assignment = resp.assignment.expect("assignment");
    assert_ne!(assignment[0], assignment[1], "edge (0,1) must split");
    let mut loads = [0u64; 2];
    for (j, &m) in assignment.iter().enumerate() {
        loads[m as usize] += [4u64, 4, 2][j];
    }
    let submitted_speeds = [1u64, 3];
    let makespan = (0..2)
        .map(|i| Rat::new(loads[i], submitted_speeds[i]))
        .max()
        .unwrap();
    let reported = Rat::new(resp.makespan_num.unwrap(), resp.makespan_den.unwrap());
    assert_eq!(
        makespan, reported,
        "assignment must be expressed in the submitted machine order"
    );

    service.shutdown();
    service.join();
}
