//! End-to-end service tests: a daemon on an ephemeral loopback port, a
//! mixed {P,Q,R} × {2,3,8} workload pushed concurrently from several
//! client threads, response validation against the original instances,
//! cache-hit accounting, and a graceful drain on shutdown.

use bisched_graph::gilbert_bipartite;
use bisched_model::{
    Instance, InstanceData, JobSizes, Rat, Schedule, SpeedProfile, UnrelatedFamily,
};
use bisched_service::{Client, Request, ServeOptions, Service};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Two instances for every (env, m) pair of {P,Q,R} × {2,3,8}.
fn mixed_workload() -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(0x5EEE);
    let mut out = Vec::new();
    for &m in &[2usize, 3, 8] {
        for round in 0..2u64 {
            // n ≥ 11 keeps Auto off the exhaustive branch-and-bound path,
            // which is slow in debug builds.
            let n = 11 + (m + round as usize) % 4;
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.35, &mut rng);
            let sizes = JobSizes::Uniform { lo: 1, hi: 25 }.sample(n, &mut rng);
            out.push(Instance::identical(m, sizes, g.clone()).unwrap());

            let g = gilbert_bipartite(n / 2, n - n / 2, 0.35, &mut rng);
            let sizes = JobSizes::Uniform { lo: 1, hi: 25 }.sample(n, &mut rng);
            let speeds = SpeedProfile::Geometric { ratio: 2 }.speeds(m);
            out.push(Instance::uniform(speeds, sizes, g).unwrap());

            let g = gilbert_bipartite(n / 2, n - n / 2, 0.35, &mut rng);
            let times = UnrelatedFamily::Uncorrelated { lo: 1, hi: 40 }.sample(m, n, &mut rng);
            out.push(Instance::unrelated(times, g).unwrap());
        }
    }
    out
}

/// Submits the whole workload on one connection, validating every
/// response against its instance; returns (ok, cached) counts.
fn submit_all(addr: std::net::SocketAddr, workload: &[Instance]) -> (usize, usize) {
    let mut client = Client::connect(addr).expect("connect");
    let mut ok = 0;
    let mut cached = 0;
    for (k, inst) in workload.iter().enumerate() {
        let mut req = Request::solve(InstanceData::from_instance(inst));
        req.id = Some(k as u64);
        let resp = client.request(&req).expect("response");
        assert_eq!(resp.status, "ok", "request {k}: {:?}", resp.error);
        assert_eq!(resp.id, Some(k as u64));
        let assignment = resp.assignment.clone().expect("assignment");
        let schedule = Schedule::new(assignment);
        schedule
            .validate(inst)
            .unwrap_or_else(|e| panic!("request {k} returned an invalid schedule: {e}"));
        // The reported makespan must be the mapped schedule's actual
        // makespan — this catches bad cache-hit label translation.
        let reported = Rat::new(resp.makespan_num.unwrap(), resp.makespan_den.unwrap());
        assert_eq!(
            schedule.makespan(inst),
            reported,
            "request {k}: reported makespan disagrees with the returned schedule"
        );
        ok += 1;
        if resp.cached == Some(true) {
            cached += 1;
        }
    }
    (ok, cached)
}

#[test]
fn concurrent_mixed_workload_validates_hits_cache_and_drains() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 3,
        batch: 4,
        cache_cap: 256,
        queue_cap: 512,
        ..ServeOptions::default()
    })
    .expect("start service");
    let addr = service.local_addr();
    let workload = Arc::new(mixed_workload());
    assert_eq!(workload.len(), 18); // {P,Q,R} x {2,3,8} x 2 rounds

    // Four client threads submit the *same* workload concurrently, so
    // every instance is solved at most a handful of times and served
    // from the cache afterwards.
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let workload = Arc::clone(&workload);
            std::thread::spawn(move || submit_all(addr, &workload))
        })
        .collect();
    let mut total_ok = 0;
    let mut total_cached = 0;
    for t in threads {
        let (ok, cached) = t.join().expect("client thread");
        total_ok += ok;
        total_cached += cached;
    }
    assert_eq!(total_ok, 4 * workload.len(), "every request answered ok");
    assert!(
        total_cached > 0,
        "duplicate submissions must be served from the cache"
    );

    // Stats agree: hits observed, everything solved, nothing dropped.
    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    assert!(stats.cache_hits > 0, "stats must report cache hits");
    assert_eq!(stats.solved, 4 * workload.len() as u64);
    assert_eq!(stats.errors, 0);
    assert!(stats.batches > 0);
    assert!(stats.batched_jobs >= stats.cache_misses);
    assert!(stats.hit_rate > 0.0 && stats.hit_rate < 1.0);
    // The latency split is populated: every miss went through the queue
    // and a solve_batch call.
    assert!(stats.solve_p50_ms > 0.0, "solve-time histogram is empty");

    // The `metrics` verb serves the same counters as Prometheus text.
    let text = client.metrics().expect("metrics");
    assert!(text.contains(&format!(
        "bisched_solved_total {}",
        4 * workload.len() as u64
    )));
    assert!(text.contains("# TYPE bisched_request_latency_seconds histogram"));
    assert!(text.contains("bisched_queue_wait_seconds_count"));
    assert!(text.contains("bisched_solve_time_seconds_bucket{le=\"+Inf\"}"));
    let wins: u64 = text
        .lines()
        .filter(|l| l.starts_with("bisched_method_wins_total{"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
        .sum();
    assert_eq!(wins, stats.cache_misses, "one win per fresh solve");

    // Graceful shutdown over the wire; join must drain and return the
    // final numbers without losing anything accepted.
    let resp = client.shutdown_server().expect("shutdown ack");
    assert_eq!(resp.status, "ok");
    drop(client);
    let final_stats = service.join();
    assert_eq!(final_stats.solved, 4 * workload.len() as u64);
    assert_eq!(final_stats.errors, 0);
}

#[test]
fn isomorphic_relabelings_hit_the_cache() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        batch: 1,
        ..ServeOptions::default()
    })
    .expect("start service");
    let mut client = Client::connect(service.local_addr()).expect("connect");

    // Same instance under two different job labelings.
    let a = Instance::identical(
        2,
        vec![5, 3, 8, 2, 9],
        bisched_graph::Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]),
    )
    .unwrap();
    let b = Instance::identical(
        2,
        vec![9, 2, 8, 3, 5],
        bisched_graph::Graph::from_edges(5, &[(4, 3), (3, 2), (1, 0)]),
    )
    .unwrap();

    let ra = client.solve(InstanceData::from_instance(&a)).expect("a");
    assert_eq!(ra.status, "ok");
    assert_eq!(ra.cached, Some(false));
    let rb = client.solve(InstanceData::from_instance(&b)).expect("b");
    assert_eq!(rb.status, "ok");
    assert_eq!(rb.cached, Some(true), "relabeling must hit the cache");
    // And the cached answer is translated into b's labeling correctly.
    let schedule = Schedule::new(rb.assignment.unwrap());
    assert!(schedule.validate(&b).is_ok());
    assert_eq!(
        (rb.makespan_num, rb.makespan_den),
        (ra.makespan_num, ra.makespan_den),
        "isomorphic instances share their makespan"
    );

    service.shutdown();
    service.join();
}

#[test]
fn per_request_overrides_and_errors() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        batch: 4,
        ..ServeOptions::default()
    })
    .expect("start service");
    let mut client = Client::connect(service.local_addr()).expect("connect");

    // Forced method that does not apply -> typed error response.
    let q3 = Instance::uniform(vec![3, 2, 1], vec![1; 6], bisched_graph::Graph::path(6)).unwrap();
    let mut req = Request::solve(InstanceData::from_instance(&q3));
    req.method = Some("fptas".into());
    let resp = client.request(&req).expect("response");
    assert_eq!(resp.status, "error");
    assert!(resp.error.unwrap().contains("not applicable"));

    // Unknown engine name rejected up front.
    let mut req = Request::solve(InstanceData::from_instance(&q3));
    req.method = Some("no-such-engine".into());
    let resp = client.request(&req).expect("response");
    assert_eq!(resp.status, "error");

    // Non-bipartite instance -> typed solve error.
    let odd = Instance::identical(3, vec![1; 5], bisched_graph::Graph::cycle(5)).unwrap();
    let resp = client
        .solve(InstanceData::from_instance(&odd))
        .expect("response");
    assert_eq!(resp.status, "error");
    assert!(resp.error.unwrap().contains("bipartite"));

    // Garbage line on a raw socket -> typed error response, and the same
    // connection stays usable for a valid request afterwards.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut raw = std::net::TcpStream::connect(service.local_addr()).expect("raw connect");
        let mut lines = BufReader::new(raw.try_clone().expect("clone"));
        writeln!(raw, "this is not json \u{1F41B}").expect("write garbage");
        let mut line = String::new();
        lines.read_line(&mut line).expect("error response");
        assert!(line.contains("\"status\":\"error\""), "got: {line}");
        writeln!(raw, "{{\"verb\":\"ping\",\"id\":9}}").expect("write ping");
        line.clear();
        lines.read_line(&mut line).expect("ping response");
        assert!(line.contains("\"status\":\"ok\""), "got: {line}");
    }
    let ping = client.ping().expect("ping after errors");
    assert_eq!(ping.status, "ok");

    // `method: "auto"` restores Auto dispatch even when it was already
    // resolved (it is not silently ignored).
    let mut req = Request::solve(InstanceData::from_instance(&q3));
    req.method = Some("auto".into());
    let resp = client.request(&req).expect("auto method");
    assert_eq!(resp.status, "ok");

    // Different solver configurations never share cache entries: a
    // default-config (Auto) report must not answer a forced-method
    // request for the same instance, and each configuration caches
    // independently.
    let r2 = Instance::unrelated(
        vec![vec![3, 5, 2, 4, 6, 3], vec![4, 2, 6, 3, 2, 5]],
        bisched_graph::Graph::path(6),
    )
    .unwrap();
    let auto = client
        .solve(InstanceData::from_instance(&r2))
        .expect("auto");
    assert_eq!(auto.cached, Some(false));
    let mut forced = Request::solve(InstanceData::from_instance(&r2));
    forced.method = Some("twoapprox".into());
    let f1 = client.request(&forced).expect("forced 1");
    assert_eq!(
        (f1.status.as_str(), f1.cached, f1.method.as_deref()),
        ("ok", Some(false), Some("twoapprox")),
        "a forced method must not be served the Auto report"
    );
    let f2 = client.request(&forced).expect("forced 2");
    assert_eq!(
        (f2.cached, f2.method.as_deref()),
        (Some(true), Some("twoapprox"))
    );
    let auto2 = client
        .solve(InstanceData::from_instance(&r2))
        .expect("auto 2");
    assert_eq!(auto2.cached, Some(true));
    assert_eq!(auto2.method, auto.method);

    // no_cache forces a re-solve but still stores/refreshes.
    let mut req = Request::solve(InstanceData::from_instance(&q3));
    req.no_cache = Some(true);
    let r1 = client.request(&req).expect("r1");
    assert_eq!(r1.cached, Some(false));
    let r2 = client.solve(InstanceData::from_instance(&q3)).expect("r2");
    assert_eq!(r2.cached, Some(true));

    service.shutdown();
    service.join();
}

#[test]
fn trace_verb_returns_exemplars_with_engine_counters() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        batch: 4,
        ..ServeOptions::default()
    })
    .expect("start service");
    let mut client = Client::connect(service.local_addr()).expect("connect");

    // Force branch-and-bound so the winning attempt carries `nodes`
    // counters all the way into the exemplar span tree.
    let inst = Instance::identical(
        2,
        vec![5, 3, 8, 2, 9, 4, 7, 6],
        bisched_graph::Graph::from_edges(8, &[(0, 1), (2, 3), (4, 5)]),
    )
    .unwrap();
    let mut req = Request::solve(InstanceData::from_instance(&inst));
    req.method = Some("branch-and-bound".into());
    req.id = Some(1);
    let resp = client.request(&req).expect("solve");
    assert_eq!(resp.status, "ok", "{:?}", resp.error);

    // Satellite: the solve response itself surfaces the counters.
    let attempts = resp.attempts.as_ref().expect("fresh solve has attempts");
    let winner = attempts
        .iter()
        .find(|a| a.method == "branch-and-bound" && a.outcome == "solved")
        .expect("forced engine attempt present");
    assert!(
        winner.stats.iter().any(|(n, v)| n == "nodes" && *v > 0),
        "bnb attempt must report a node count, got {:?}",
        winner.stats
    );

    // A cache hit must NOT carry attempts (they'd describe the original
    // solve, not this request).
    let hit = client.request(&req).expect("cached solve");
    assert_eq!(hit.cached, Some(true));
    assert!(hit.attempts.is_none());

    // The trace verb returns the request as a slow-request exemplar
    // whose span tree reaches the engine counters.
    let trace = client.trace(None).expect("trace");
    assert!(trace.k >= 1);
    let ex = trace
        .current
        .iter()
        .chain(&trace.previous)
        .find(|e| !e.cached && e.method.as_deref() == Some("branch-and-bound"))
        .expect("fresh bnb request captured as an exemplar");
    assert_eq!(ex.root.name, "solve_request");
    assert!(ex.total_ms > 0.0);
    let phases: Vec<&str> = ex.root.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(phases, vec!["canonicalize", "queue", "solve_batch"]);
    let batch = ex.root.children.last().unwrap();
    let engine = batch
        .children
        .iter()
        .find(|s| s.name == "branch-and-bound")
        .expect("engine span under solve_batch");
    assert!(
        engine.counters.iter().any(|(n, v)| n == "nodes" && *v > 0),
        "exemplar engine span must carry counters, got {:?}",
        engine.counters
    );
    // The cached repeat is captured too — with a canonicalize-only tree.
    let cached_ex = trace
        .current
        .iter()
        .chain(&trace.previous)
        .find(|e| e.cached)
        .expect("cache hit captured as an exemplar");
    assert_eq!(cached_ex.root.children.len(), 1);
    assert_eq!(cached_ex.root.children[0].name, "canonicalize");

    service.shutdown();
    service.join();
}

#[test]
fn exemplar_ring_keeps_the_worst_under_concurrency() {
    // k = 1: whatever survives must be the single slowest request the
    // window saw, no matter how many clients raced.
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        batch: 2,
        exemplar_k: 1,
        ..ServeOptions::default()
    })
    .expect("start service");
    let addr = service.local_addr();

    let workload = Arc::new(mixed_workload());
    let threads: Vec<_> = (0..3)
        .map(|_| {
            let workload = Arc::clone(&workload);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut worst: f64 = 0.0;
                for inst in workload.iter() {
                    let resp = client
                        .solve(InstanceData::from_instance(inst))
                        .expect("solve");
                    assert_eq!(resp.status, "ok");
                    worst = worst.max(resp.time_ms.unwrap());
                }
                worst
            })
        })
        .collect();
    let worst_seen = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .fold(0.0f64, f64::max);

    let mut client = Client::connect(addr).expect("connect");
    let trace = client.trace(None).expect("trace");
    assert_eq!(trace.k, 1);
    assert_eq!(
        trace.current.len(),
        1,
        "k = 1 keeps exactly one exemplar despite {} requests",
        3 * workload.len()
    );
    // `time_ms` and the exemplar's `total_ms` are the same measurement,
    // so the survivor must be exactly the slowest response any client
    // observed (faster exemplars were evicted by slower ones).
    assert_eq!(
        trace.current[0].total_ms, worst_seen,
        "the surviving exemplar must be the slowest request"
    );

    service.shutdown();
    service.join();
}

#[test]
fn exemplar_window_rolls_current_into_previous() {
    let window = std::time::Duration::from_secs(1);
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        batch: 1,
        exemplar_k: 4,
        exemplar_window: window,
        ..ServeOptions::default()
    })
    .expect("start service");
    let mut client = Client::connect(service.local_addr()).expect("connect");

    let inst = Instance::identical(2, vec![4, 2, 5], bisched_graph::Graph::path(3)).unwrap();
    let resp = client
        .solve(InstanceData::from_instance(&inst))
        .expect("solve");
    assert_eq!(resp.status, "ok");
    let before = client.trace(None).expect("trace before roll");
    assert_eq!(before.window, 0);
    assert_eq!(before.current.len(), 1);
    assert!(before.previous.is_empty());

    // One window later (well inside the second window, so the first
    // window's exemplar must survive as `previous`).
    std::thread::sleep(window + window / 5);
    let after = client.trace(None).expect("trace after roll");
    assert_eq!(after.window, 1, "window index advances");
    assert!(after.current.is_empty(), "new window starts empty");
    assert_eq!(
        after.previous.len(),
        1,
        "the completed window stays fetchable"
    );
    assert_eq!(
        after.previous[0].request_id, before.current[0].request_id,
        "same exemplar, one window older"
    );

    service.shutdown();
    service.join();
}

#[test]
fn sharded_daemon_routes_pins_and_aggregates() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        batch: 2,
        shards: 4,
        ..ServeOptions::default()
    })
    .expect("start service");
    let addr = service.local_addr();
    let workload = Arc::new(mixed_workload());

    // Three clients replay the same workload: requests fan out across
    // shards by fingerprint and duplicates hit each shard's own cache.
    let threads: Vec<_> = (0..3)
        .map(|_| {
            let workload = Arc::clone(&workload);
            std::thread::spawn(move || submit_all(addr, &workload))
        })
        .collect();
    let mut total_ok = 0;
    for t in threads {
        let (ok, _) = t.join().expect("client thread");
        total_ok += ok;
    }
    assert_eq!(total_ok, 3 * workload.len());

    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.solved, 3 * workload.len() as u64);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.shards.len(), 4, "one breakdown entry per shard");
    // The totals are exactly the sum of the per-shard rows.
    let sum: u64 = stats.shards.iter().map(|s| s.solved).sum();
    assert_eq!(sum, stats.solved);
    let hits: u64 = stats.shards.iter().map(|s| s.cache_hits).sum();
    assert_eq!(hits, stats.cache_hits);
    assert!(hits > 0, "duplicate submissions hit shard caches");
    // 18 distinct fingerprints over 4 shards: more than one shard works.
    let active = stats.shards.iter().filter(|s| s.solved > 0).count();
    assert!(active > 1, "workload must spread across shards");

    // Prometheus carries the per-shard series for every shard.
    let text = client.metrics().expect("metrics");
    for i in 0..4 {
        assert!(
            text.contains(&format!("bisched_shard_requests_total{{shard=\"{i}\"}}")),
            "missing shard {i} series"
        );
    }

    // The merged trace view tags exemplars with their shard; a per-shard
    // trace only returns that shard's exemplars.
    let merged = client.trace(None).expect("merged trace");
    let tagged: std::collections::BTreeSet<u64> = merged
        .current
        .iter()
        .chain(&merged.previous)
        .map(|e| e.shard)
        .collect();
    assert!(tagged.len() > 1, "exemplars from more than one shard");
    for &s in &tagged {
        let one = client.trace(Some(s)).expect("per-shard trace");
        assert!(one
            .current
            .iter()
            .chain(&one.previous)
            .all(|e| e.shard == s));
    }
    let err = client.trace(Some(99)).expect_err("out-of-range shard");
    assert!(err.to_string().contains("shard"), "got: {err}");

    service.shutdown();
    let final_stats = service.join();
    assert_eq!(final_stats.solved, 3 * workload.len() as u64);
    assert_eq!(final_stats.errors, 0);
}

#[test]
fn isomorphic_relabelings_route_to_the_same_shard() {
    // Routing uses the canonical fingerprint, so any relabeling of an
    // instance must land on the shard that cached the original — a
    // label-sensitive router would scatter isomorphic duplicates across
    // shards and re-solve them.
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        batch: 1,
        shards: 4,
        ..ServeOptions::default()
    })
    .expect("start service");
    let mut client = Client::connect(service.local_addr()).expect("connect");

    let mut rng = StdRng::seed_from_u64(0xA11CE);
    let base: Vec<Instance> = (0..6)
        .map(|k| {
            let n = 8 + k;
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.4, &mut rng);
            let sizes = JobSizes::Uniform { lo: 1, hi: 30 }.sample(n, &mut rng);
            Instance::identical(2 + k % 3, sizes, g).unwrap()
        })
        .collect();

    for inst in &base {
        let first = client.solve(InstanceData::from_instance(inst)).expect("a");
        assert_eq!(first.status, "ok", "{:?}", first.error);
        assert_eq!(first.cached, Some(false));
        // Relabel jobs by reversal: job j -> n-1-j.
        let data = InstanceData::from_instance(inst);
        let n = data.jobs as u32;
        let relabeled = InstanceData {
            processing: data
                .processing
                .as_ref()
                .map(|p| p.iter().rev().copied().collect()),
            times: data.times.as_ref().map(|rows| {
                rows.iter()
                    .map(|r| r.iter().rev().copied().collect())
                    .collect()
            }),
            edges: data
                .edges
                .iter()
                .map(|&(a, b)| (n - 1 - a, n - 1 - b))
                .collect(),
            ..data
        };
        let second = client.request(&Request::solve(relabeled)).expect("b");
        assert_eq!(second.status, "ok", "{:?}", second.error);
        assert_eq!(
            second.cached,
            Some(true),
            "relabeled duplicate must find the original's shard cache"
        );
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.cache_hits, base.len() as u64);
    assert_eq!(stats.cache_misses, base.len() as u64);
    // Per shard, hits mirror misses: the duplicate landed where the
    // original was cached.
    for (i, s) in stats.shards.iter().enumerate() {
        assert_eq!(
            s.cache_hits, s.cache_misses,
            "shard {i}: relabeled twin must route to its original"
        );
    }

    service.shutdown();
    service.join();
}

#[test]
fn binary_framing_upgrade_round_trips_solves_and_stats() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        batch: 2,
        shards: 2,
        ..ServeOptions::default()
    })
    .expect("start service");
    let addr = service.local_addr();

    // Solve over JSON first so the binary client can compare answers.
    let inst = Instance::identical(
        3,
        vec![7, 4, 9, 2, 5, 8, 3],
        bisched_graph::Graph::from_edges(7, &[(0, 1), (2, 3), (4, 5)]),
    )
    .unwrap();
    let mut json_client = Client::connect(addr).expect("connect json");
    let json_resp = json_client
        .solve(InstanceData::from_instance(&inst))
        .expect("json solve");
    assert_eq!(json_resp.status, "ok", "{:?}", json_resp.error);

    let mut client = Client::connect(addr).expect("connect");
    assert!(!client.is_binary());
    client.upgrade_binary().expect("upgrade");
    assert!(client.is_binary());

    // Same instance over binary frames: a cache hit with an identical
    // makespan proves the two framings describe the same request.
    let resp = client
        .solve(InstanceData::from_instance(&inst))
        .expect("binary solve");
    assert_eq!(resp.status, "ok", "{:?}", resp.error);
    assert_eq!(resp.cached, Some(true));
    assert_eq!(
        (resp.makespan_num, resp.makespan_den),
        (json_resp.makespan_num, json_resp.makespan_den)
    );
    let schedule = Schedule::new(resp.assignment.expect("assignment"));
    assert!(schedule.validate(&inst).is_ok());

    // Structured verbs survive the framing too.
    let stats = client.stats().expect("binary stats");
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.shards.len(), 2);
    let trace = client.trace(None).expect("binary trace");
    assert!(trace.current.len() + trace.previous.len() >= 2);
    assert!(client.ping().expect("ping").status == "ok");

    // A fresh solve (not just cache hits) over binary framing.
    let fresh = Instance::identical(2, vec![6, 1, 4, 2], bisched_graph::Graph::path(4)).unwrap();
    let resp = client
        .solve(InstanceData::from_instance(&fresh))
        .expect("fresh binary solve");
    assert_eq!(resp.status, "ok", "{:?}", resp.error);
    assert_eq!(resp.cached, Some(false));

    // Downgrade works over the same connection.
    let mut req = Request::verb("upgrade");
    req.frame = Some("json".into());
    let resp = client.request(&req).expect("downgrade");
    assert_eq!(resp.status, "ok");
    // (Client keeps binary mode internally; use a raw JSON probe.)
    drop(client);
    let mut back = Client::connect(addr).expect("reconnect json");
    assert_eq!(back.ping().expect("ping").status, "ok");

    service.shutdown();
    service.join();
}

#[test]
fn snapshot_warm_restart_answers_from_cache_across_shard_counts() {
    let dir = std::env::temp_dir().join(format!("bisched-e2e-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let snap = dir.join("cache.bsnap");
    let _ = std::fs::remove_file(&snap);
    let workload = mixed_workload();

    // First life: 2 shards, cold cache, snapshot on drain.
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        batch: 2,
        shards: 2,
        cache_snapshot: Some(snap.clone()),
        ..ServeOptions::default()
    })
    .expect("start first life");
    let (ok, _) = submit_all(service.local_addr(), &workload);
    assert_eq!(ok, workload.len());
    service.shutdown();
    let first = service.join();
    assert_eq!(first.cache_misses, workload.len() as u64);
    assert!(snap.exists(), "drain must write the snapshot");

    // Second life: different shard count (re-bucketing) — every request
    // must be a cache hit and no batch may reach the solver.
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 3,
        batch: 2,
        shards: 3,
        cache_snapshot: Some(snap.clone()),
        ..ServeOptions::default()
    })
    .expect("start second life");
    let (ok, cached) = submit_all(service.local_addr(), &workload);
    assert_eq!(ok, workload.len());
    assert_eq!(cached, workload.len(), "warm start must serve everything");
    service.shutdown();
    let second = service.join();
    assert_eq!(second.cache_hits, workload.len() as u64);
    assert_eq!(second.cache_misses, 0);
    assert_eq!(second.batches, 0, "no solver work after a warm start");

    // A corrupt snapshot is a cold start, not a crash.
    std::fs::write(&snap, b"BSNAPgarbage").expect("corrupt");
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        batch: 1,
        cache_snapshot: Some(snap.clone()),
        ..ServeOptions::default()
    })
    .expect("cold start on corrupt snapshot");
    let mut client = Client::connect(service.local_addr()).expect("connect");
    let inst = Instance::identical(2, vec![3, 1, 2], bisched_graph::Graph::path(3)).unwrap();
    let resp = client
        .solve(InstanceData::from_instance(&inst))
        .expect("solve");
    assert_eq!(resp.cached, Some(false));
    service.shutdown();
    service.join();
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn unsorted_q_speeds_answered_in_submitted_machine_order() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        batch: 1,
        ..ServeOptions::default()
    })
    .expect("start service");
    let mut client = Client::connect(service.local_addr()).expect("connect");

    // Submitted speeds are [1, 3]: the server sorts them internally, so
    // without translation machine ids would silently refer to the wrong
    // machines. The reported makespan must match the schedule evaluated
    // under the *submitted* speed order.
    let data = InstanceData {
        env: "Q".into(),
        machines: None,
        speeds: Some(vec![1, 3]),
        processing: Some(vec![4, 4, 2]),
        times: None,
        jobs: 3,
        edges: vec![(0, 1)],
    };
    let resp = client.solve(data).expect("solve");
    assert_eq!(resp.status, "ok", "{:?}", resp.error);
    let assignment = resp.assignment.expect("assignment");
    assert_ne!(assignment[0], assignment[1], "edge (0,1) must split");
    let mut loads = [0u64; 2];
    for (j, &m) in assignment.iter().enumerate() {
        loads[m as usize] += [4u64, 4, 2][j];
    }
    let submitted_speeds = [1u64, 3];
    let makespan = (0..2)
        .map(|i| Rat::new(loads[i], submitted_speeds[i]))
        .max()
        .unwrap();
    let reported = Rat::new(resp.makespan_num.unwrap(), resp.makespan_den.unwrap());
    assert_eq!(
        makespan, reported,
        "assignment must be expressed in the submitted machine order"
    );

    service.shutdown();
    service.join();
}
