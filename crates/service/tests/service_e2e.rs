//! End-to-end service tests: a daemon on an ephemeral loopback port, a
//! mixed {P,Q,R} × {2,3,8} workload pushed concurrently from several
//! client threads, response validation against the original instances,
//! cache-hit accounting, and a graceful drain on shutdown.

use bisched_graph::gilbert_bipartite;
use bisched_model::{
    Instance, InstanceData, JobSizes, Rat, Schedule, SpeedProfile, UnrelatedFamily,
};
use bisched_service::{Client, Request, ServeOptions, Service};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Two instances for every (env, m) pair of {P,Q,R} × {2,3,8}.
fn mixed_workload() -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(0x5EEE);
    let mut out = Vec::new();
    for &m in &[2usize, 3, 8] {
        for round in 0..2u64 {
            // n ≥ 11 keeps Auto off the exhaustive branch-and-bound path,
            // which is slow in debug builds.
            let n = 11 + (m + round as usize) % 4;
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.35, &mut rng);
            let sizes = JobSizes::Uniform { lo: 1, hi: 25 }.sample(n, &mut rng);
            out.push(Instance::identical(m, sizes, g.clone()).unwrap());

            let g = gilbert_bipartite(n / 2, n - n / 2, 0.35, &mut rng);
            let sizes = JobSizes::Uniform { lo: 1, hi: 25 }.sample(n, &mut rng);
            let speeds = SpeedProfile::Geometric { ratio: 2 }.speeds(m);
            out.push(Instance::uniform(speeds, sizes, g).unwrap());

            let g = gilbert_bipartite(n / 2, n - n / 2, 0.35, &mut rng);
            let times = UnrelatedFamily::Uncorrelated { lo: 1, hi: 40 }.sample(m, n, &mut rng);
            out.push(Instance::unrelated(times, g).unwrap());
        }
    }
    out
}

/// Submits the whole workload on one connection, validating every
/// response against its instance; returns (ok, cached) counts.
fn submit_all(addr: std::net::SocketAddr, workload: &[Instance]) -> (usize, usize) {
    let mut client = Client::connect(addr).expect("connect");
    let mut ok = 0;
    let mut cached = 0;
    for (k, inst) in workload.iter().enumerate() {
        let mut req = Request::solve(InstanceData::from_instance(inst));
        req.id = Some(k as u64);
        let resp = client.request(&req).expect("response");
        assert_eq!(resp.status, "ok", "request {k}: {:?}", resp.error);
        assert_eq!(resp.id, Some(k as u64));
        let assignment = resp.assignment.clone().expect("assignment");
        let schedule = Schedule::new(assignment);
        schedule
            .validate(inst)
            .unwrap_or_else(|e| panic!("request {k} returned an invalid schedule: {e}"));
        // The reported makespan must be the mapped schedule's actual
        // makespan — this catches bad cache-hit label translation.
        let reported = Rat::new(resp.makespan_num.unwrap(), resp.makespan_den.unwrap());
        assert_eq!(
            schedule.makespan(inst),
            reported,
            "request {k}: reported makespan disagrees with the returned schedule"
        );
        ok += 1;
        if resp.cached == Some(true) {
            cached += 1;
        }
    }
    (ok, cached)
}

#[test]
fn concurrent_mixed_workload_validates_hits_cache_and_drains() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 3,
        batch: 4,
        cache_cap: 256,
        queue_cap: 512,
        ..ServeOptions::default()
    })
    .expect("start service");
    let addr = service.local_addr();
    let workload = Arc::new(mixed_workload());
    assert_eq!(workload.len(), 18); // {P,Q,R} x {2,3,8} x 2 rounds

    // Four client threads submit the *same* workload concurrently, so
    // every instance is solved at most a handful of times and served
    // from the cache afterwards.
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let workload = Arc::clone(&workload);
            std::thread::spawn(move || submit_all(addr, &workload))
        })
        .collect();
    let mut total_ok = 0;
    let mut total_cached = 0;
    for t in threads {
        let (ok, cached) = t.join().expect("client thread");
        total_ok += ok;
        total_cached += cached;
    }
    assert_eq!(total_ok, 4 * workload.len(), "every request answered ok");
    assert!(
        total_cached > 0,
        "duplicate submissions must be served from the cache"
    );

    // Stats agree: hits observed, everything solved, nothing dropped.
    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    assert!(stats.cache_hits > 0, "stats must report cache hits");
    assert_eq!(stats.solved, 4 * workload.len() as u64);
    assert_eq!(stats.errors, 0);
    assert!(stats.batches > 0);
    assert!(stats.batched_jobs >= stats.cache_misses);
    assert!(stats.hit_rate > 0.0 && stats.hit_rate < 1.0);
    // The latency split is populated: every miss went through the queue
    // and a solve_batch call.
    assert!(stats.solve_p50_ms > 0.0, "solve-time histogram is empty");

    // The `metrics` verb serves the same counters as Prometheus text.
    let text = client.metrics().expect("metrics");
    assert!(text.contains(&format!(
        "bisched_solved_total {}",
        4 * workload.len() as u64
    )));
    assert!(text.contains("# TYPE bisched_request_latency_seconds histogram"));
    assert!(text.contains("bisched_queue_wait_seconds_count"));
    assert!(text.contains("bisched_solve_time_seconds_bucket{le=\"+Inf\"}"));
    let wins: u64 = text
        .lines()
        .filter(|l| l.starts_with("bisched_method_wins_total{"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
        .sum();
    assert_eq!(wins, stats.cache_misses, "one win per fresh solve");

    // Graceful shutdown over the wire; join must drain and return the
    // final numbers without losing anything accepted.
    let resp = client.shutdown_server().expect("shutdown ack");
    assert_eq!(resp.status, "ok");
    drop(client);
    let final_stats = service.join();
    assert_eq!(final_stats.solved, 4 * workload.len() as u64);
    assert_eq!(final_stats.errors, 0);
}

#[test]
fn isomorphic_relabelings_hit_the_cache() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        batch: 1,
        ..ServeOptions::default()
    })
    .expect("start service");
    let mut client = Client::connect(service.local_addr()).expect("connect");

    // Same instance under two different job labelings.
    let a = Instance::identical(
        2,
        vec![5, 3, 8, 2, 9],
        bisched_graph::Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]),
    )
    .unwrap();
    let b = Instance::identical(
        2,
        vec![9, 2, 8, 3, 5],
        bisched_graph::Graph::from_edges(5, &[(4, 3), (3, 2), (1, 0)]),
    )
    .unwrap();

    let ra = client.solve(InstanceData::from_instance(&a)).expect("a");
    assert_eq!(ra.status, "ok");
    assert_eq!(ra.cached, Some(false));
    let rb = client.solve(InstanceData::from_instance(&b)).expect("b");
    assert_eq!(rb.status, "ok");
    assert_eq!(rb.cached, Some(true), "relabeling must hit the cache");
    // And the cached answer is translated into b's labeling correctly.
    let schedule = Schedule::new(rb.assignment.unwrap());
    assert!(schedule.validate(&b).is_ok());
    assert_eq!(
        (rb.makespan_num, rb.makespan_den),
        (ra.makespan_num, ra.makespan_den),
        "isomorphic instances share their makespan"
    );

    service.shutdown();
    service.join();
}

#[test]
fn per_request_overrides_and_errors() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        batch: 4,
        ..ServeOptions::default()
    })
    .expect("start service");
    let mut client = Client::connect(service.local_addr()).expect("connect");

    // Forced method that does not apply -> typed error response.
    let q3 = Instance::uniform(vec![3, 2, 1], vec![1; 6], bisched_graph::Graph::path(6)).unwrap();
    let mut req = Request::solve(InstanceData::from_instance(&q3));
    req.method = Some("fptas".into());
    let resp = client.request(&req).expect("response");
    assert_eq!(resp.status, "error");
    assert!(resp.error.unwrap().contains("not applicable"));

    // Unknown engine name rejected up front.
    let mut req = Request::solve(InstanceData::from_instance(&q3));
    req.method = Some("no-such-engine".into());
    let resp = client.request(&req).expect("response");
    assert_eq!(resp.status, "error");

    // Non-bipartite instance -> typed solve error.
    let odd = Instance::identical(3, vec![1; 5], bisched_graph::Graph::cycle(5)).unwrap();
    let resp = client
        .solve(InstanceData::from_instance(&odd))
        .expect("response");
    assert_eq!(resp.status, "error");
    assert!(resp.error.unwrap().contains("bipartite"));

    // Garbage line on a raw socket -> typed error response, and the same
    // connection stays usable for a valid request afterwards.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut raw = std::net::TcpStream::connect(service.local_addr()).expect("raw connect");
        let mut lines = BufReader::new(raw.try_clone().expect("clone"));
        writeln!(raw, "this is not json \u{1F41B}").expect("write garbage");
        let mut line = String::new();
        lines.read_line(&mut line).expect("error response");
        assert!(line.contains("\"status\":\"error\""), "got: {line}");
        writeln!(raw, "{{\"verb\":\"ping\",\"id\":9}}").expect("write ping");
        line.clear();
        lines.read_line(&mut line).expect("ping response");
        assert!(line.contains("\"status\":\"ok\""), "got: {line}");
    }
    let ping = client.ping().expect("ping after errors");
    assert_eq!(ping.status, "ok");

    // `method: "auto"` restores Auto dispatch even when it was already
    // resolved (it is not silently ignored).
    let mut req = Request::solve(InstanceData::from_instance(&q3));
    req.method = Some("auto".into());
    let resp = client.request(&req).expect("auto method");
    assert_eq!(resp.status, "ok");

    // Different solver configurations never share cache entries: a
    // default-config (Auto) report must not answer a forced-method
    // request for the same instance, and each configuration caches
    // independently.
    let r2 = Instance::unrelated(
        vec![vec![3, 5, 2, 4, 6, 3], vec![4, 2, 6, 3, 2, 5]],
        bisched_graph::Graph::path(6),
    )
    .unwrap();
    let auto = client
        .solve(InstanceData::from_instance(&r2))
        .expect("auto");
    assert_eq!(auto.cached, Some(false));
    let mut forced = Request::solve(InstanceData::from_instance(&r2));
    forced.method = Some("twoapprox".into());
    let f1 = client.request(&forced).expect("forced 1");
    assert_eq!(
        (f1.status.as_str(), f1.cached, f1.method.as_deref()),
        ("ok", Some(false), Some("twoapprox")),
        "a forced method must not be served the Auto report"
    );
    let f2 = client.request(&forced).expect("forced 2");
    assert_eq!(
        (f2.cached, f2.method.as_deref()),
        (Some(true), Some("twoapprox"))
    );
    let auto2 = client
        .solve(InstanceData::from_instance(&r2))
        .expect("auto 2");
    assert_eq!(auto2.cached, Some(true));
    assert_eq!(auto2.method, auto.method);

    // no_cache forces a re-solve but still stores/refreshes.
    let mut req = Request::solve(InstanceData::from_instance(&q3));
    req.no_cache = Some(true);
    let r1 = client.request(&req).expect("r1");
    assert_eq!(r1.cached, Some(false));
    let r2 = client.solve(InstanceData::from_instance(&q3)).expect("r2");
    assert_eq!(r2.cached, Some(true));

    service.shutdown();
    service.join();
}

#[test]
fn unsorted_q_speeds_answered_in_submitted_machine_order() {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        batch: 1,
        ..ServeOptions::default()
    })
    .expect("start service");
    let mut client = Client::connect(service.local_addr()).expect("connect");

    // Submitted speeds are [1, 3]: the server sorts them internally, so
    // without translation machine ids would silently refer to the wrong
    // machines. The reported makespan must match the schedule evaluated
    // under the *submitted* speed order.
    let data = InstanceData {
        env: "Q".into(),
        machines: None,
        speeds: Some(vec![1, 3]),
        processing: Some(vec![4, 4, 2]),
        times: None,
        jobs: 3,
        edges: vec![(0, 1)],
    };
    let resp = client.solve(data).expect("solve");
    assert_eq!(resp.status, "ok", "{:?}", resp.error);
    let assignment = resp.assignment.expect("assignment");
    assert_ne!(assignment[0], assignment[1], "edge (0,1) must split");
    let mut loads = [0u64; 2];
    for (j, &m) in assignment.iter().enumerate() {
        loads[m as usize] += [4u64, 4, 2][j];
    }
    let submitted_speeds = [1u64, 3];
    let makespan = (0..2)
        .map(|i| Rat::new(loads[i], submitted_speeds[i]))
        .max()
        .unwrap();
    let reported = Rat::new(resp.makespan_num.unwrap(), resp.makespan_den.unwrap());
    assert_eq!(
        makespan, reported,
        "assignment must be expressed in the submitted machine order"
    );

    service.shutdown();
    service.join();
}
