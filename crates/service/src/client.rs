//! A minimal blocking client for the JSON-lines protocol, used by
//! `bisched_cli submit`, the CI smoke test, and the end-to-end tests.

use crate::protocol::{Request, Response, StatsData};
use bisched_model::InstanceData;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent something unparseable, or an unexpected shape.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a running service; requests are answered in order
/// on the same stream.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running service.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one request and reads its response line.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let text = serde_json::to_string(req)
            .map_err(|e| ClientError::Protocol(format!("encode: {e}")))?;
        writeln!(self.writer, "{text}")?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        serde_json::from_str(&line).map_err(|e| ClientError::Protocol(format!("decode: {e}")))
    }

    /// Submits one instance with optional overrides already applied to
    /// `req`.
    pub fn solve(&mut self, instance: InstanceData) -> Result<Response, ClientError> {
        self.request(&Request::solve(instance))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::verb("ping"))
    }

    /// Fetches the metrics snapshot.
    pub fn stats(&mut self) -> Result<StatsData, ClientError> {
        let resp = self.request(&Request::verb("stats"))?;
        resp.stats
            .ok_or_else(|| ClientError::Protocol("stats response missing payload".into()))
    }

    /// Fetches the Prometheus text exposition (the `metrics` verb).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let resp = self.request(&Request::verb("metrics"))?;
        resp.metrics
            .ok_or_else(|| ClientError::Protocol("metrics response missing payload".into()))
    }

    /// Fetches the slow-request exemplars (the `trace` verb): the K
    /// worst requests of the current and previous windows, each with
    /// its span tree and engine counters.
    pub fn trace(&mut self) -> Result<crate::exemplar::TraceData, ClientError> {
        let resp = self.request(&Request::verb("trace"))?;
        resp.exemplars
            .ok_or_else(|| ClientError::Protocol("trace response missing payload".into()))
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::verb("shutdown"))
    }
}
