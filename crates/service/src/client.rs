//! A minimal blocking client for the wire protocol, used by
//! `bisched_cli submit`, the CI smoke test, and the end-to-end tests.
//! Speaks JSON lines by default and can negotiate the length-prefixed
//! binary framing via [`Client::upgrade_binary`].

use crate::frame;
use crate::protocol::{Request, Response, StatsData};
use bisched_model::InstanceData;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent something unparseable, or an unexpected shape.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a running service; requests are answered in order
/// on the same stream.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Whether the connection has been upgraded to binary framing.
    binary: bool,
}

impl Client {
    /// Connects to a running service (JSON-lines framing).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            writer,
            reader,
            binary: false,
        })
    }

    /// Whether the connection currently speaks binary frames.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Negotiates the length-prefixed binary framing (`PROTOCOL.md` §v2):
    /// sends the `upgrade` verb in the current framing and, on `ok`,
    /// switches both directions of this connection.
    pub fn upgrade_binary(&mut self) -> Result<(), ClientError> {
        let mut req = Request::verb("upgrade");
        req.frame = Some("binary".into());
        let resp = self.request(&req)?;
        if resp.status != "ok" {
            return Err(ClientError::Protocol(format!(
                "upgrade refused: {}",
                resp.error.unwrap_or_else(|| resp.status.clone())
            )));
        }
        self.binary = true;
        Ok(())
    }

    /// Sends one request and reads its response in the connection's
    /// current framing.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        if self.binary {
            let value = serde_json::to_value(req)
                .map_err(|e| ClientError::Protocol(format!("encode: {e}")))?;
            let mut payload = Vec::new();
            frame::encode_value(&value, &mut payload);
            self.writer
                .write_all(&(payload.len() as u32).to_le_bytes())?;
            self.writer.write_all(&payload)?;
            let mut len = [0u8; 4];
            self.reader.read_exact(&mut len)?;
            let len = u32::from_le_bytes(len);
            if len > frame::MAX_FRAME_LEN {
                return Err(ClientError::Protocol(format!(
                    "response frame length {len} over limit"
                )));
            }
            let mut payload = vec![0u8; len as usize];
            self.reader.read_exact(&mut payload)?;
            let value = frame::decode_value(&payload).map_err(ClientError::Protocol)?;
            serde_json::from_value(value).map_err(|e| ClientError::Protocol(format!("decode: {e}")))
        } else {
            let text = serde_json::to_string(req)
                .map_err(|e| ClientError::Protocol(format!("encode: {e}")))?;
            writeln!(self.writer, "{text}")?;
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Protocol("server closed the connection".into()));
            }
            serde_json::from_str(&line).map_err(|e| ClientError::Protocol(format!("decode: {e}")))
        }
    }

    /// Submits one instance with optional overrides already applied to
    /// `req`.
    pub fn solve(&mut self, instance: InstanceData) -> Result<Response, ClientError> {
        self.request(&Request::solve(instance))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::verb("ping"))
    }

    /// Fetches the metrics snapshot (cross-shard totals plus the
    /// per-shard breakdown).
    pub fn stats(&mut self) -> Result<StatsData, ClientError> {
        let resp = self.request(&Request::verb("stats"))?;
        resp.stats
            .ok_or_else(|| ClientError::Protocol("stats response missing payload".into()))
    }

    /// Fetches the Prometheus text exposition (the `metrics` verb).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let resp = self.request(&Request::verb("metrics"))?;
        resp.metrics
            .ok_or_else(|| ClientError::Protocol("metrics response missing payload".into()))
    }

    /// Fetches the slow-request exemplars (the `trace` verb): with
    /// `shard: None` the merged all-shard view (each exemplar tagged
    /// with its shard), otherwise one shard's ring.
    pub fn trace(&mut self, shard: Option<u64>) -> Result<crate::exemplar::TraceData, ClientError> {
        let mut req = Request::verb("trace");
        req.shard = shard;
        let resp = self.request(&req)?;
        if resp.status != "ok" {
            return Err(ClientError::Protocol(
                resp.error.unwrap_or_else(|| resp.status.clone()),
            ));
        }
        resp.exemplars
            .ok_or_else(|| ClientError::Protocol("trace response missing payload".into()))
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::verb("shutdown"))
    }
}
