//! The daemon: a `std::net` TCP listener speaking the JSON-lines
//! protocol, one handler thread per connection, backed by the shared
//! canonicalization cache and the micro-batching worker pool.
//!
//! Lifecycle: [`Service::start`] binds and spawns everything;
//! [`Service::join`] blocks until a `shutdown` request (or a programmatic
//! [`Service::shutdown`]) arrives, drains the queue, joins every thread,
//! logs the final stats to stderr, and returns them.

use crate::cache::LruCache;
use crate::exemplar::{ExemplarData, SlowRing, SpanData};
use crate::metrics::Metrics;
use crate::protocol::{AttemptData, Request, Response, StatsData};
use crate::worker::{spawn_workers, Job, JobReply};
use bisched_core::SolverConfig;
use bisched_model::canonical::fnv128;
use bisched_model::canonicalize;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
// Atomics and mutexes come from the workspace concurrency facade (std
// passthroughs in normal builds; model-checked shims under `--cfg
// bisched_model` — the queue/cache handoff is mirrored and explored by
// crates/analyze's `model_service_handoff` suite). The mpsc channel
// itself stays `std`: the facade models the protocol *around* it.
use bisched_obs::sync::{AtomicBool, AtomicU64, Mutex, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Service::start`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`Service::local_addr`]).
    pub addr: String,
    /// Solver worker threads.
    pub workers: usize,
    /// Maximum jobs one worker drains into a single `solve_batch` call.
    pub batch: usize,
    /// Canonicalization-cache capacity (reports); `0` disables caching.
    pub cache_cap: usize,
    /// Bounded queue depth; past it, solve requests get a `busy`
    /// response (backpressure).
    pub queue_cap: usize,
    /// Base solver configuration; per-request `eps`/`method`/`portfolio`
    /// override it.
    pub base_config: SolverConfig,
    /// Slow-request exemplars kept per window (the K in "K worst");
    /// `trace` verb payload size. Minimum 1.
    pub exemplar_k: usize,
    /// Exemplar window length; the previous window stays fetchable for
    /// one more window after it completes.
    pub exemplar_window: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism()
                .map(|p| p.get().min(8))
                .unwrap_or(2),
            batch: 16,
            cache_cap: 4096,
            queue_cap: 1024,
            base_config: SolverConfig::new(),
            exemplar_k: 8,
            exemplar_window: Duration::from_secs(60),
        }
    }
}

/// State shared by the accept loop, every connection handler, and the
/// worker pool.
pub(crate) struct Shared {
    pub(crate) base_config: SolverConfig,
    pub(crate) cache: Mutex<LruCache>,
    pub(crate) metrics: Metrics,
    /// `None` once shutdown began: dropping the sender closes the queue,
    /// letting workers drain and exit.
    queue: Mutex<Option<SyncSender<Job>>>,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    /// Request-id mint: each solve request gets the next value, which
    /// tags its spans, log lines, and exemplar.
    next_request_id: AtomicU64,
    /// The slow-request exemplar buffer behind the `trace` verb.
    exemplars: Mutex<SlowRing>,
}

impl Shared {
    /// Snapshot for the `stats` verb.
    pub(crate) fn stats(&self) -> StatsData {
        let cache = self.cache.lock().unwrap();
        self.metrics.snapshot(cache.counters(), cache.len())
    }

    /// Prometheus text exposition for the `metrics` verb.
    pub(crate) fn prometheus(&self) -> String {
        let cache = self.cache.lock().unwrap();
        self.metrics.prometheus(cache.counters(), cache.len())
    }

    /// Idempotent shutdown trigger: refuse new work, close the queue,
    /// poke the accept loop awake.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        bisched_obs::info!("service", "shutdown initiated, draining the queue");
        *self.queue.lock().unwrap() = None;
        // Unblock `accept` so the loop observes the flag. A wildcard bind
        // address (0.0.0.0 / ::) is not connectable everywhere; poke via
        // loopback on the same port instead.
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(match poke.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&poke, Duration::from_secs(1));
    }
}

/// A running solve daemon. Dropping the handle does **not** stop it; call
/// [`Service::shutdown`] (or send the `shutdown` verb) and then
/// [`Service::join`].
pub struct Service {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Service {
    /// Binds, spawns the worker pool and the accept loop, and returns the
    /// running service.
    pub fn start(opts: ServeOptions) -> std::io::Result<Service> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = mpsc::sync_channel::<Job>(opts.queue_cap.max(1));
        let shared = Arc::new(Shared {
            base_config: opts.base_config.clone(),
            cache: Mutex::new(LruCache::new(opts.cache_cap)),
            metrics: Metrics::default(),
            queue: Mutex::new(Some(tx)),
            shutting_down: AtomicBool::new(false),
            addr,
            next_request_id: AtomicU64::new(0),
            exemplars: Mutex::new(SlowRing::new(
                opts.exemplar_k,
                opts.exemplar_window,
                Instant::now(),
            )),
        });
        let workers = spawn_workers(opts.workers.max(1), opts.batch, rx, Arc::clone(&shared));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("bisched-accept".into())
                .spawn(move || accept_loop(listener, shared, handlers))
                .expect("spawn accept thread")
        };
        bisched_obs::info!(
            "service",
            "listening on {addr} — {} workers, batch {}, queue {}, cache {}",
            opts.workers.max(1),
            opts.batch,
            opts.queue_cap.max(1),
            opts.cache_cap,
        );
        Ok(Service {
            shared,
            addr,
            accept: Some(accept),
            workers,
            handlers,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current metrics snapshot (same payload as the `stats` verb).
    pub fn stats(&self) -> StatsData {
        self.shared.stats()
    }

    /// Initiates graceful shutdown: new solves are refused, queued ones
    /// drain. Follow with [`Service::join`].
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the service has shut down (a `shutdown` request or
    /// [`Service::shutdown`]), joins every thread, logs the final stats
    /// to stderr, and returns them.
    pub fn join(mut self) -> StatsData {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().unwrap());
        for handler in handlers {
            let _ = handler.join();
        }
        let stats = self.shared.stats();
        bisched_obs::info!(
            "service",
            "shut down after {:.1}s — {} requests, {} solved ({} cached, hit rate {:.2}), {} busy, {} errors, p50 {:.3}ms p99 {:.3}ms (queue p50 {:.3}ms, solve p50 {:.3}ms)",
            stats.uptime_s,
            stats.requests,
            stats.solved,
            stats.cache_hits,
            stats.hit_rate,
            stats.busy,
            stats.errors,
            stats.p50_ms,
            stats.p99_ms,
            stats.queue_p50_ms,
            stats.solve_p50_ms,
        );
        stats
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if let Ok(peer) = stream.peer_addr() {
            bisched_obs::debug!("service", "connection from {peer}");
        }
        let shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("bisched-conn".into())
            .spawn(move || handle_connection(stream, &shared))
            .expect("spawn connection handler");
        // Reap finished handlers as we go so a long-lived daemon serving
        // short connections doesn't accumulate dead JoinHandles.
        let mut guard = handlers.lock().unwrap();
        guard.retain(|h| !h.is_finished());
        guard.push(handle);
    }
}

/// Reads newline-delimited requests until EOF, error, or shutdown;
/// answers each on the same stream. Reads poll with a short timeout so
/// idle connections notice shutdown promptly instead of pinning
/// [`Service::join`].
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    // Accumulate raw bytes, not a String: `read_line`'s UTF-8 guard
    // discards already-consumed bytes when a poll timeout splits a
    // multi-byte character, which would desynchronize the stream.
    let mut line: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {
                let text = String::from_utf8_lossy(&line);
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    let response = handle_request(trimmed, shared);
                    let Ok(text) = serde_json::to_string(&response) else {
                        break;
                    };
                    if writeln!(writer, "{text}").is_err() {
                        break;
                    }
                }
                line.clear();
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break; // close the connection once shutdown is underway
                }
            }
            // Poll timeout: partial bytes stay in `line` and the next
            // read continues the same request.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

fn handle_request(line: &str, shared: &Shared) -> Response {
    shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
    let req: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            bisched_obs::debug!("service", "unparseable request line: {e}");
            return Response::error(None, format!("bad request: {e}"));
        }
    };
    match req.verb.as_str() {
        "ping" => Response::ok(req.id),
        "stats" => {
            let mut r = Response::ok(req.id);
            r.stats = Some(shared.stats());
            r
        }
        "metrics" => {
            let mut r = Response::ok(req.id);
            r.metrics = Some(shared.prometheus());
            r
        }
        "trace" => {
            let mut r = Response::ok(req.id);
            r.exemplars = Some(shared.exemplars.lock().unwrap().snapshot(Instant::now()));
            r
        }
        "shutdown" => {
            shared.begin_shutdown();
            Response::ok(req.id)
        }
        "solve" => handle_solve(&req, shared),
        other => Response::error(req.id, format!("unknown verb {other:?}")),
    }
}

fn handle_solve(req: &Request, shared: &Shared) -> Response {
    let t0 = Instant::now();
    // Mint the request id first: every span and log line this request
    // produces — here and in the worker — carries it.
    let rid = shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
    let _rid_scope = bisched_obs::log::request_scope(rid);
    let _request_span = bisched_obs::span_arg("solve_request", "service", "request_id", rid);
    let id = req.id;
    let fail = |r: Response, shared: &Shared| {
        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        r
    };
    let Some(data) = req.instance.clone() else {
        return fail(Response::error(id, "solve requires `instance`"), shared);
    };
    let config = match req.solver_config(&shared.base_config) {
        Ok(c) => c,
        Err(e) => return fail(Response::error(id, e), shared),
    };
    // `Instance::uniform` sorts speeds, so a `Q` request with unsorted
    // speeds gets its machines renumbered internally; keep the submitted
    // order to translate machine ids back in the response.
    let submitted_speeds = data.speeds.clone();
    let instance = match data.into_instance() {
        Ok(i) => i,
        Err(e) => return fail(Response::error(id, e.to_string()), shared),
    };
    let canon_t0 = Instant::now();
    let canon_span = bisched_obs::span_arg("canonicalize", "service", "request_id", rid);
    let mut canonical = canonicalize(&instance);
    drop(canon_span);
    let canon_us = canon_t0.elapsed().as_micros() as u64;
    if let Some(submitted) = &submitted_speeds {
        let map = sorted_to_submitted(&instance.speeds(), submitted);
        for m in canonical.machine_perm.iter_mut() {
            *m = map[*m as usize];
        }
    }
    // The cache key covers the *effective solver configuration* too: a
    // report produced under `method: greedy` must never answer a request
    // that forced an exact engine (or a different eps), and vice versa.
    let cfg_bytes = config_cache_bytes(&config);
    let cache_key = canonical.fingerprint ^ fnv128(&cfg_bytes);
    let cache_cert: Vec<u8> = {
        let mut c = canonical.certificate.clone();
        c.extend_from_slice(&cfg_bytes);
        c
    };

    // Fast path: serve relabelings of anything already solved straight
    // from the cache, translated back to the request's labeling.
    if !req.no_cache.unwrap_or(false) {
        let hit = shared.cache.lock().unwrap().get(cache_key, &cache_cert);
        if let Some(report) = hit {
            bisched_obs::instant("cache_hit", "service", "request_id", rid);
            return finish_solve(
                id, rid, &canonical, &report, true, t0, canon_us, None, shared,
            );
        }
        bisched_obs::instant("cache_miss", "service", "request_id", rid);
    }

    // Miss: enqueue for the worker pool (bounded — `busy` on overflow).
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        request_id: rid,
        instance: canonical.instance.clone(),
        fingerprint: cache_key,
        certificate: cache_cert,
        config,
        reply: reply_tx,
        enqueued: Instant::now(),
    };
    let send_result = {
        let queue = shared.queue.lock().unwrap();
        match queue.as_ref() {
            None => Err(None),
            Some(tx) => tx.try_send(job).map_err(Some),
        }
    };
    match send_result {
        Ok(()) => {}
        Err(Some(TrySendError::Full(_))) => {
            shared.metrics.busy.fetch_add(1, Ordering::Relaxed);
            bisched_obs::debug!("service", "queue full, rejecting request {id:?}");
            return Response::busy(id);
        }
        Err(Some(TrySendError::Disconnected(_))) | Err(None) => {
            return fail(Response::error(id, "service is shutting down"), shared);
        }
    }
    match reply_rx.recv() {
        Ok(JobReply::Solved {
            report,
            queue_us,
            solve_us,
        }) => finish_solve(
            id,
            rid,
            &canonical,
            &report,
            false,
            t0,
            canon_us,
            Some((queue_us, solve_us)),
            shared,
        ),
        Ok(JobReply::Failed(e)) => fail(Response::solve_error(id, &e), shared),
        Err(_) => fail(Response::error(id, "worker dropped the request"), shared),
    }
}

/// Builds the `ok` solve response in the request's labeling, and offers
/// the finished request to the slow-request exemplar buffer. `timing` is
/// `Some((queue_us, solve_us))` for worker-solved requests, `None` for
/// cache hits (which never enqueue).
#[allow(clippy::too_many_arguments)]
fn finish_solve(
    id: Option<u64>,
    rid: u64,
    canonical: &bisched_model::Canonical,
    report: &bisched_core::SolveReport,
    cached: bool,
    t0: Instant,
    canon_us: u64,
    timing: Option<(u64, u64)>,
    shared: &Shared,
) -> Response {
    let schedule = canonical.schedule_to_original(&report.schedule);
    let mut r = Response::ok(id);
    r.method = Some(report.method.name().to_string());
    r.guarantee = Some(report.guarantee.to_string());
    r.makespan_num = Some(report.makespan.num());
    r.makespan_den = Some(report.makespan.den());
    r.lower_bound_num = Some(report.lower_bound.num());
    r.lower_bound_den = Some(report.lower_bound.den());
    r.assignment = Some(schedule.assignment().to_vec());
    r.cached = Some(cached);
    let elapsed = t0.elapsed();
    let total_ms = elapsed.as_secs_f64() * 1e3;
    r.time_ms = Some(total_ms);
    // Counters travel only on fresh solves: a cache hit's attempts
    // would describe the original request's work, not this one's.
    if !cached {
        r.attempts = Some(report.attempts.iter().map(AttemptData::from_run).collect());
    }
    shared.metrics.solved.fetch_add(1, Ordering::Relaxed);
    shared.metrics.record_latency(elapsed.as_micros() as u64);
    bisched_obs::debug!(
        "service",
        "solved via {} in {total_ms:.3}ms (cached: {cached})",
        report.method.name()
    );
    let exemplar = ExemplarData {
        request_id: rid,
        total_ms,
        cached,
        method: Some(report.method.name().to_string()),
        fingerprint: format!("{:032x}", canonical.fingerprint),
        root: exemplar_tree(total_ms, canon_us, timing, report, cached),
    };
    shared
        .exemplars
        .lock()
        .unwrap()
        .record(exemplar, Instant::now());
    r
}

/// Assembles the exemplar's span tree from the measured phase boundaries
/// and the report's per-engine attempts. Cache hits get a
/// canonicalize-only tree: the engine spans of the original solve would
/// misattribute this request's time.
fn exemplar_tree(
    total_ms: f64,
    canon_us: u64,
    timing: Option<(u64, u64)>,
    report: &bisched_core::SolveReport,
    cached: bool,
) -> SpanData {
    let canon_ms = canon_us as f64 / 1e3;
    let mut children = vec![SpanData {
        name: "canonicalize".into(),
        start_ms: 0.0,
        dur_ms: canon_ms,
        counters: vec![],
        children: vec![],
    }];
    if let (Some((queue_us, solve_us)), false) = (timing, cached) {
        let queue_ms = queue_us as f64 / 1e3;
        let solve_ms = solve_us as f64 / 1e3;
        children.push(SpanData {
            name: "queue".into(),
            start_ms: canon_ms,
            dur_ms: queue_ms,
            counters: vec![],
            children: vec![],
        });
        let batch_start = canon_ms + queue_ms;
        // Race members run concurrently, so each engine span starts at
        // the batch start; its own wall time is its duration.
        let engine_spans = report
            .attempts
            .iter()
            .map(|run| SpanData {
                name: run.method.name().to_string(),
                start_ms: batch_start,
                dur_ms: run.wall_time.as_secs_f64() * 1e3,
                counters: run.stats.iter().map(|(n, v)| (n.to_string(), v)).collect(),
                children: vec![],
            })
            .collect();
        children.push(SpanData {
            name: "solve_batch".into(),
            start_ms: batch_start,
            dur_ms: solve_ms,
            counters: vec![],
            children: engine_spans,
        });
    }
    SpanData {
        name: "solve_request".into(),
        start_ms: 0.0,
        dur_ms: total_ms,
        counters: vec![],
        children,
    }
}

/// Maps each position of the server's sorted `Q` speeds vector to a
/// submitted machine index with the same speed (duplicates consumed in
/// submission order — equal-speed machines are interchangeable).
fn sorted_to_submitted(sorted: &[u64], submitted: &[u64]) -> Vec<u32> {
    let mut buckets: std::collections::HashMap<u64, std::collections::VecDeque<u32>> =
        std::collections::HashMap::new();
    for (i, &s) in submitted.iter().enumerate() {
        buckets.entry(s).or_default().push_back(i as u32);
    }
    sorted
        .iter()
        .map(|s| {
            buckets
                .get_mut(s)
                .and_then(|q| q.pop_front())
                .expect("sorted speeds are a permutation of the submitted speeds")
        })
        .collect()
}

/// `SolverConfig` fields deliberately excluded from the cache key, each
/// with its justification. The `bisched-analyze` `cache-key-fields`
/// lint reads this table: a config field missing from both
/// [`config_cache_bytes`] and this list fails the lint, so excluding a
/// field always costs an explicit written reason.
// Referenced by the contract test below; the analyzer reads it straight
// from the source, so the non-test build never touches it.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) const CACHE_KEY_ALLOWLIST: &[(&str, &str)] = &[(
    "fptas_parallel",
    "parallel FPTAS expansion is result-identical to the sequential sweep, \
     so both settings may share cache entries",
)];

/// Stable byte encoding of everything in a [`SolverConfig`] that can
/// change a solve's outcome — part of the cache key.
///
/// The exhaustive destructure below is deliberate: adding a field to
/// `SolverConfig` breaks this build until the field is either encoded
/// here or added to the `CACHE_KEY_ALLOWLIST` with a justification —
/// a silent wrong-config cache hit is never an option. The
/// `bisched-analyze` `cache-key-fields` lint checks the same contract
/// token-level (it fails when a field name appears in neither the body
/// nor the allowlist).
fn config_cache_bytes(config: &SolverConfig) -> Vec<u8> {
    use bisched_core::MethodPolicy;
    let SolverConfig {
        eps,
        exact_budget,
        bnb_node_limit,
        bnb_deadline,
        cp_node_limit,
        race_deadline,
        auto_exact_jobs,
        fptas_state_cap,
        fptas_parallel,
        seed,
        policy,
    } = config;
    // `fptas_parallel` is deliberately absent from the key: the parallel
    // expansion is result-identical to the sequential sweep, so both may
    // share cache entries (see CACHE_KEY_ALLOWLIST).
    let _ = fptas_parallel;
    let mut out = Vec::new();
    out.extend_from_slice(&eps.to_bits().to_le_bytes());
    out.extend_from_slice(&exact_budget.to_le_bytes());
    out.extend_from_slice(&bnb_node_limit.to_le_bytes());
    // `u64::MAX` marks "no deadline" (a real deadline of u64::MAX ns is
    // indistinguishable from none in effect, so the collision is benign).
    let deadline_ns = bnb_deadline
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(u64::MAX);
    out.extend_from_slice(&deadline_ns.to_le_bytes());
    out.extend_from_slice(&cp_node_limit.to_le_bytes());
    // Same `u64::MAX`-as-"none" convention for the race deadline.
    let race_ns = race_deadline
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(u64::MAX);
    out.extend_from_slice(&race_ns.to_le_bytes());
    // `u64::MAX` marks "no FPTAS state cap" (a real cap never reaches it:
    // `SolverConfig::build` rejects 0 and widths are bounded by memory).
    let fptas_cap = fptas_state_cap.map(|c| c as u64).unwrap_or(u64::MAX);
    out.extend_from_slice(&fptas_cap.to_le_bytes());
    out.extend_from_slice(&(*auto_exact_jobs as u64).to_le_bytes());
    out.extend_from_slice(&seed.to_le_bytes());
    match policy {
        MethodPolicy::Auto => out.push(0),
        MethodPolicy::Force(m) => {
            out.push(1);
            out.extend_from_slice(m.name().as_bytes());
        }
        MethodPolicy::Portfolio(methods) => {
            out.push(2);
            for m in methods {
                out.extend_from_slice(m.name().as_bytes());
                out.push(b',');
            }
        }
    }
    out
}

/// Convenience: starts a service on `addr` with default options.
pub fn serve<A: ToSocketAddrs + std::fmt::Display>(addr: A) -> std::io::Result<Service> {
    Service::start(ServeOptions {
        addr: addr.to_string(),
        ..ServeOptions::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_bytes_distinguish_outcome_changing_knobs() {
        let base = SolverConfig::new();
        let baseline = config_cache_bytes(&base);
        // Every knob that can change a solve's result must change the key.
        for variant in [
            base.clone().eps(0.5),
            base.clone().exact_budget(7),
            base.clone().bnb_node_limit(9),
            base.clone()
                .bnb_deadline(Some(std::time::Duration::from_millis(3))),
            base.clone().cp_node_limit(11),
            base.clone()
                .race_deadline(Some(std::time::Duration::from_millis(5))),
            base.clone().fptas_state_cap(Some(1024)),
            base.clone().auto_exact_jobs(3),
            base.clone().seed(1),
        ] {
            assert_ne!(
                config_cache_bytes(&variant),
                baseline,
                "variant {variant:?} must not share a cache key with the default config"
            );
        }
        // The parallel toggle is result-identical by construction and
        // deliberately shares entries.
        assert_eq!(
            config_cache_bytes(&base.clone().fptas_parallel(true)),
            baseline
        );
    }

    /// The cache-key contract: `config_cache_bytes` exhaustively
    /// destructures `SolverConfig` (a new field is a compile error in
    /// that function until it is encoded or allowlisted), and every
    /// allowlisted exclusion both names a real field and genuinely does
    /// not perturb the key.
    #[test]
    fn cache_key_allowlist_matches_reality() {
        // Mirror destructure: this test stops compiling at the same
        // moment `config_cache_bytes` does, so the contract cannot rot
        // silently in a build where tests are skipped.
        let SolverConfig {
            eps: _,
            exact_budget: _,
            bnb_node_limit: _,
            bnb_deadline: _,
            cp_node_limit: _,
            race_deadline: _,
            auto_exact_jobs: _,
            fptas_state_cap: _,
            fptas_parallel: _,
            seed: _,
            policy: _,
        } = SolverConfig::new();

        assert!(
            !CACHE_KEY_ALLOWLIST.is_empty(),
            "allowlist exists to carry justifications; emptying it means \
             every field is encoded — then delete this assertion too"
        );
        for (field, why) in CACHE_KEY_ALLOWLIST {
            assert!(
                !why.trim().is_empty(),
                "allowlisted field `{field}` needs a written justification"
            );
            assert_eq!(
                *field, "fptas_parallel",
                "new allowlist entry `{field}`: extend this test with a \
                 key-equality check proving the field really is inert"
            );
        }
    }
}
