//! The daemon: a `std::net` TCP listener in front of N independent
//! shards, each owning its own LRU cache, bounded queue, worker pool,
//! latency histograms, and slow-request exemplar ring. Connections speak
//! JSON lines by default and may negotiate length-prefixed binary frames
//! via the `upgrade` verb (see `PROTOCOL.md` §v2).
//!
//! Every solve request is routed by its canonical 128-bit fingerprint
//! (`fingerprint % shard_count`), so isomorphic relabelings of one
//! instance always land on the same shard — and therefore the same
//! cache. The solve hot path touches no cross-shard lock: shard state is
//! only aggregated on the cold `stats`/`metrics`/`trace` verbs.
//!
//! The accept loop is a non-blocking poll (`set_nonblocking` + short
//! sleeps), so shutdown needs no connect-to-self poke: the loop observes
//! the flag within milliseconds.
//!
//! Lifecycle: [`Service::start`] binds and spawns everything (optionally
//! warm-starting every shard cache from a snapshot file);
//! [`Service::join`] blocks until a `shutdown` request (or a programmatic
//! [`Service::shutdown`]) arrives, drains every shard queue, joins every
//! thread, writes the cache snapshot if one was configured, logs the
//! final stats to stderr, and returns them.

use crate::cache::LruCache;
use crate::exemplar::{ExemplarData, SlowRing, SpanData, TraceData};
use crate::frame;
use crate::metrics::{prometheus_sharded, snapshot_sharded, Metrics, ShardView};
use crate::protocol::{AttemptData, Request, Response, StatsData};
use crate::snapshot::{self, SnapshotEntry};
use crate::worker::{spawn_shard_workers, Job, JobReply};
use bisched_core::SolverConfig;
use bisched_model::canonical::fnv128;
use bisched_model::canonicalize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
// Atomics and mutexes come from the workspace concurrency facade (std
// passthroughs in normal builds; model-checked shims under `--cfg
// bisched_model` — the queue/cache handoff is mirrored and explored by
// crates/analyze's `model_service_handoff` suite). The mpsc channel
// itself stays `std`: the facade models the protocol *around* it.
use bisched_obs::sync::{AtomicBool, AtomicU64, Mutex, Ordering};
use std::path::PathBuf;
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the non-blocking accept loop and idle connection reads sleep
/// between polls. Small enough that shutdown and new connections are
/// picked up promptly, large enough to keep an idle daemon at ~zero CPU.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// Tuning knobs for [`Service::start`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`Service::local_addr`]).
    pub addr: String,
    /// Solver worker threads, split across shards (each shard gets
    /// `max(1, workers / shards)`).
    pub workers: usize,
    /// Maximum jobs one worker drains into a single `solve_batch` call.
    pub batch: usize,
    /// Canonicalization-cache capacity **per shard** (reports); `0`
    /// disables caching.
    pub cache_cap: usize,
    /// Bounded queue depth per shard; past it, solve requests get a
    /// `busy` response (backpressure).
    pub queue_cap: usize,
    /// Base solver configuration; per-request `eps`/`method`/`portfolio`
    /// override it.
    pub base_config: SolverConfig,
    /// Slow-request exemplars kept per window per shard (the K in "K
    /// worst"); `trace` verb payload size. Minimum 1.
    pub exemplar_k: usize,
    /// Exemplar window length; the previous window stays fetchable for
    /// one more window after it completes.
    pub exemplar_window: Duration,
    /// Number of independent shards. Each owns its cache, queue, worker
    /// pool, and metrics; solve requests route by
    /// `canonical_fingerprint % shards`.
    pub shards: usize,
    /// Cache snapshot file: loaded (and re-bucketed by route) at boot
    /// when present, written on graceful shutdown. `None` disables both.
    pub cache_snapshot: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism()
                .map(|p| p.get().min(8))
                .unwrap_or(2),
            batch: 16,
            cache_cap: 4096,
            queue_cap: 1024,
            base_config: SolverConfig::new(),
            exemplar_k: 8,
            exemplar_window: Duration::from_secs(60),
            shards: 1,
            cache_snapshot: None,
        }
    }
}

/// One shard: everything a solve request touches after routing. No two
/// shards share any of this state, so requests on different shards never
/// contend.
pub(crate) struct Shard {
    pub(crate) cache: Mutex<LruCache>,
    pub(crate) metrics: Metrics,
    /// `None` once shutdown began: dropping the sender closes this
    /// shard's queue, letting its workers drain and exit.
    queue: Mutex<Option<SyncSender<Job>>>,
    /// The shard's slow-request exemplar buffer behind the `trace` verb.
    exemplars: Mutex<SlowRing>,
    /// Serializes `stall_us` benchmark holds within the shard (and only
    /// within it — that is the point: the `service_scaling` suite uses
    /// the gate to make aggregate throughput shard-bound).
    stall_gate: Mutex<()>,
}

/// State shared by the accept loop, every connection handler, and the
/// per-shard worker pools.
pub(crate) struct Shared {
    pub(crate) base_config: SolverConfig,
    pub(crate) shards: Vec<Shard>,
    shutting_down: AtomicBool,
    /// Request-id mint: each solve request gets the next value, which
    /// tags its spans, log lines, and exemplar. Service-global so ids
    /// stay unique across shards.
    next_request_id: AtomicU64,
}

impl Shared {
    /// The shard a canonical fingerprint routes to.
    pub(crate) fn shard_of(&self, route: u128) -> usize {
        (route % self.shards.len() as u128) as usize
    }

    /// Per-shard views for the cross-shard aggregators; takes each
    /// shard's cache lock briefly, never all at once.
    fn views(&self) -> Vec<ShardView<'_>> {
        self.shards
            .iter()
            .map(|s| {
                let cache = s.cache.lock().unwrap();
                ShardView {
                    metrics: &s.metrics,
                    cache: cache.counters(),
                    cache_len: cache.len(),
                }
            })
            .collect()
    }

    /// Snapshot for the `stats` verb: cross-shard totals plus the
    /// per-shard breakdown.
    pub(crate) fn stats(&self) -> StatsData {
        snapshot_sharded(&self.views())
    }

    /// Prometheus text exposition for the `metrics` verb.
    pub(crate) fn prometheus(&self) -> String {
        prometheus_sharded(&self.views())
    }

    /// The `trace` verb's payload: one shard's ring, or the merged
    /// all-shard view (each exemplar tagged with its shard id, the K
    /// worst service-wide kept).
    fn trace(&self, shard: Option<u64>) -> Result<TraceData, String> {
        let now = Instant::now();
        match shard {
            Some(i) => {
                let shard = self.shards.get(i as usize).ok_or_else(|| {
                    format!("shard {i} out of range (service has {})", self.shards.len())
                })?;
                Ok(shard.exemplars.lock().unwrap().snapshot(now))
            }
            None => {
                let mut merged = TraceData::default();
                for shard in &self.shards {
                    let snap = shard.exemplars.lock().unwrap().snapshot(now);
                    merged.window_s = snap.window_s;
                    merged.k = merged.k.max(snap.k);
                    merged.window = merged.window.max(snap.window);
                    merged.current.extend(snap.current);
                    merged.previous.extend(snap.previous);
                }
                let k = merged.k as usize;
                for list in [&mut merged.current, &mut merged.previous] {
                    list.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));
                    list.truncate(k);
                }
                Ok(merged)
            }
        }
    }

    /// Idempotent shutdown trigger: refuse new work and close every
    /// shard's queue. The polling accept loop observes the flag on its
    /// next tick — no connect-to-self poke needed.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        bisched_obs::info!(
            "service",
            "shutdown initiated, draining {} shard queue(s)",
            self.shards.len()
        );
        for shard in &self.shards {
            *shard.queue.lock().unwrap() = None;
        }
    }
}

/// A running solve daemon. Dropping the handle does **not** stop it; call
/// [`Service::shutdown`] (or send the `shutdown` verb) and then
/// [`Service::join`].
pub struct Service {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    snapshot_path: Option<PathBuf>,
}

impl Service {
    /// Binds, spawns the per-shard worker pools and the accept loop,
    /// warm-starts the shard caches from the configured snapshot when one
    /// exists, and returns the running service.
    pub fn start(opts: ServeOptions) -> std::io::Result<Service> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shard_count = opts.shards.max(1);
        let now = Instant::now();
        let mut receivers = Vec::with_capacity(shard_count);
        let shards = (0..shard_count)
            .map(|_| {
                let (tx, rx) = mpsc::sync_channel::<Job>(opts.queue_cap.max(1));
                receivers.push(rx);
                Shard {
                    cache: Mutex::new(LruCache::new(opts.cache_cap)),
                    metrics: Metrics::default(),
                    queue: Mutex::new(Some(tx)),
                    exemplars: Mutex::new(SlowRing::new(
                        opts.exemplar_k,
                        opts.exemplar_window,
                        now,
                    )),
                    stall_gate: Mutex::new(()),
                }
            })
            .collect();
        let shared = Arc::new(Shared {
            base_config: opts.base_config.clone(),
            shards,
            shutting_down: AtomicBool::new(false),
            next_request_id: AtomicU64::new(0),
        });
        if let Some(path) = &opts.cache_snapshot {
            warm_start(&shared, path);
        }
        let per_shard = (opts.workers.max(1) / shard_count).max(1);
        let mut workers = Vec::with_capacity(shard_count * per_shard);
        for (shard_idx, rx) in receivers.into_iter().enumerate() {
            workers.extend(spawn_shard_workers(
                per_shard,
                opts.batch,
                rx,
                Arc::clone(&shared),
                shard_idx,
            ));
        }
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("bisched-accept".into())
                .spawn(move || accept_loop(listener, shared, handlers))
                .expect("spawn accept thread")
        };
        bisched_obs::info!(
            "service",
            "listening on {addr} — {shard_count} shard(s) × {per_shard} worker(s), batch {}, queue {}/shard, cache {}/shard",
            opts.batch,
            opts.queue_cap.max(1),
            opts.cache_cap,
        );
        Ok(Service {
            shared,
            addr,
            accept: Some(accept),
            workers,
            handlers,
            snapshot_path: opts.cache_snapshot,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current metrics snapshot (same payload as the `stats` verb).
    pub fn stats(&self) -> StatsData {
        self.shared.stats()
    }

    /// Initiates graceful shutdown: new solves are refused, queued ones
    /// drain. Follow with [`Service::join`].
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the service has shut down (a `shutdown` request or
    /// [`Service::shutdown`]), joins every thread, writes the cache
    /// snapshot if one was configured, logs the final stats to stderr,
    /// and returns them.
    pub fn join(mut self) -> StatsData {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().unwrap());
        for handler in handlers {
            let _ = handler.join();
        }
        if let Some(path) = &self.snapshot_path {
            write_snapshot(&self.shared, path);
        }
        let stats = self.shared.stats();
        bisched_obs::info!(
            "service",
            "shut down after {:.1}s — {} requests over {} shard(s), {} solved ({} cached, hit rate {:.2}), {} busy, {} errors, p50 {:.3}ms p99 {:.3}ms (queue p50 {:.3}ms, solve p50 {:.3}ms)",
            stats.uptime_s,
            stats.requests,
            self.shared.shards.len(),
            stats.solved,
            stats.cache_hits,
            stats.hit_rate,
            stats.busy,
            stats.errors,
            stats.p50_ms,
            stats.p99_ms,
            stats.queue_p50_ms,
            stats.solve_p50_ms,
        );
        stats
    }
}

/// Loads `path` into the shard caches, re-bucketing every entry by its
/// recorded route (the snapshot may have been written under a different
/// shard count). A missing file is a normal cold start; a corrupt one is
/// logged and skipped — the daemon still boots.
fn warm_start(shared: &Shared, path: &std::path::Path) {
    if !path.exists() {
        bisched_obs::info!(
            "service",
            "no cache snapshot at {}, cold start",
            path.display()
        );
        return;
    }
    match snapshot::load(path) {
        Ok(entries) => {
            let n = entries.len();
            // The file holds each shard's entries most-recent first;
            // replaying in reverse inserts oldest-first, so LRU recency
            // survives the restart.
            for e in entries.into_iter().rev() {
                let shard = &shared.shards[shared.shard_of(e.route)];
                shard
                    .cache
                    .lock()
                    .unwrap()
                    .insert_routed(e.route, e.key, e.certificate, e.report);
            }
            bisched_obs::info!(
                "service",
                "warm start: loaded {n} cache entries from {} into {} shard(s)",
                path.display(),
                shared.shards.len()
            );
        }
        Err(e) => {
            bisched_obs::warn!(
                "service",
                "cache snapshot {} unreadable ({e}), cold start",
                path.display()
            );
        }
    }
}

/// Writes every shard's live cache entries to `path` (shard by shard,
/// most-recent first — the order [`warm_start`] expects to reverse).
fn write_snapshot(shared: &Shared, path: &std::path::Path) {
    let mut entries: Vec<SnapshotEntry> = Vec::new();
    for shard in &shared.shards {
        shard
            .cache
            .lock()
            .unwrap()
            .for_each_entry(|route, key, cert, report| {
                entries.push(SnapshotEntry {
                    route,
                    key,
                    certificate: cert.to_vec(),
                    report: Arc::clone(report),
                });
            });
    }
    match snapshot::save(path, &entries) {
        Ok(()) => bisched_obs::info!(
            "service",
            "wrote {} cache entries to snapshot {}",
            entries.len(),
            path.display()
        ),
        Err(e) => bisched_obs::warn!(
            "service",
            "failed to write cache snapshot {}: {e}",
            path.display()
        ),
    }
}

/// Polls the non-blocking listener, spawning one handler thread per
/// accepted connection, until shutdown. Accepted streams are switched
/// back to blocking (with a short read timeout) for the handler.
fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                bisched_obs::debug!("service", "connection from {peer}");
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("bisched-conn".into())
                    .spawn(move || handle_connection(stream, &shared))
                    .expect("spawn connection handler");
                // Reap finished handlers as we go so a long-lived daemon
                // serving short connections doesn't accumulate dead
                // JoinHandles.
                let mut guard = handlers.lock().unwrap();
                guard.retain(|h| !h.is_finished());
                guard.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// The wire framing a connection currently speaks. Every connection
/// starts in [`FrameMode::Json`]; the `upgrade` verb switches it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FrameMode {
    /// One JSON object per `\n`-terminated line (the v1 default).
    Json,
    /// `u32`-LE length prefix + tagged binary payload (see [`frame`]).
    Binary,
}

/// Per-connection state: the negotiated framing and the shard the first
/// routed solve pinned (used to attribute non-solve verbs and unrouteable
/// errors; solve requests always re-route by their own fingerprint, so
/// multiplexed clients stay correct).
struct ConnState {
    mode: FrameMode,
    pinned: Option<usize>,
}

/// Reads requests until EOF, error, framing violation, or shutdown;
/// answers each on the same stream in the connection's current framing.
/// Reads poll with a short timeout so idle connections notice shutdown
/// promptly instead of pinning [`Service::join`]; partially received
/// messages survive the poll ticks in `pending`.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(mut read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut conn = ConnState {
        mode: FrameMode::Json,
        pinned: None,
    };
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    'conn: loop {
        // Serve every complete message already buffered before reading
        // more bytes.
        loop {
            let msg = match next_message(&mut pending, conn.mode) {
                Ok(Some(m)) => m,
                Ok(None) => break,
                // Framing violation (oversized or malformed frame): the
                // stream position is unrecoverable, drop the connection.
                Err(e) => {
                    bisched_obs::debug!("service", "framing violation: {e}");
                    break 'conn;
                }
            };
            if msg.is_empty() {
                continue; // blank JSON line
            }
            if serve_message(&msg, &mut conn, &mut writer, shared).is_none() {
                break 'conn;
            }
            if shared.shutting_down.load(Ordering::SeqCst) {
                break 'conn; // close the connection once shutdown is underway
            }
        }
        match read_half.read(&mut chunk) {
            Ok(0) => break, // EOF
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            // Poll timeout: partial bytes stay in `pending` and the next
            // read continues the same message.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Extracts the next complete message from `pending`, if one is fully
/// buffered: a `\n`-terminated line (trimmed, delimiter removed) in JSON
/// mode, a length-prefixed payload in binary mode.
fn next_message(pending: &mut Vec<u8>, mode: FrameMode) -> Result<Option<Vec<u8>>, String> {
    match mode {
        FrameMode::Json => {
            let Some(pos) = pending.iter().position(|&b| b == b'\n') else {
                return Ok(None);
            };
            let mut line: Vec<u8> = pending.drain(..=pos).collect();
            line.pop(); // the delimiter
            while line.last().is_some_and(|b| b.is_ascii_whitespace()) {
                line.pop();
            }
            while line.first().is_some_and(|b| b.is_ascii_whitespace()) {
                line.remove(0);
            }
            Ok(Some(line))
        }
        FrameMode::Binary => {
            if pending.len() < 4 {
                return Ok(None);
            }
            let len = u32::from_le_bytes(pending[..4].try_into().expect("4 bytes checked"));
            if len > frame::MAX_FRAME_LEN {
                return Err(format!("frame length {len} over limit"));
            }
            let total = 4 + len as usize;
            if pending.len() < total {
                return Ok(None);
            }
            let mut payload: Vec<u8> = pending.drain(..total).collect();
            payload.drain(..4);
            Ok(Some(payload))
        }
    }
}

/// Decodes, dispatches, and answers one message. Returns `None` when the
/// connection should close (write failure).
fn serve_message(
    msg: &[u8],
    conn: &mut ConnState,
    writer: &mut TcpStream,
    shared: &Shared,
) -> Option<()> {
    let (response, switch) = match decode_request(msg, conn.mode) {
        Ok(req) => handle_request(req, conn, shared),
        Err(e) => {
            bisched_obs::debug!("service", "unparseable request: {e}");
            fallback_shard(conn, shared)
                .metrics
                .requests
                .fetch_add(1, Ordering::Relaxed);
            (Response::error(None, format!("bad request: {e}")), None)
        }
    };
    write_response(&response, conn.mode, writer).ok()?;
    // The upgrade response travels in the *old* framing; everything after
    // it speaks the new one.
    if let Some(mode) = switch {
        conn.mode = mode;
    }
    Some(())
}

/// Parses one wire message into a [`Request`] under the given framing.
fn decode_request(msg: &[u8], mode: FrameMode) -> Result<Request, String> {
    match mode {
        FrameMode::Json => {
            serde_json::from_str(&String::from_utf8_lossy(msg)).map_err(|e| e.to_string())
        }
        FrameMode::Binary => {
            let value = frame::decode_value(msg)?;
            serde_json::from_value(value).map_err(|e| e.to_string())
        }
    }
}

/// Serializes one response under the given framing.
fn write_response(
    response: &Response,
    mode: FrameMode,
    writer: &mut TcpStream,
) -> std::io::Result<()> {
    match mode {
        FrameMode::Json => {
            let text = serde_json::to_string(response)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            writeln!(writer, "{text}")
        }
        FrameMode::Binary => {
            let value = serde_json::to_value(response)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            let mut payload = Vec::new();
            frame::encode_value(&value, &mut payload);
            writer.write_all(&(payload.len() as u32).to_le_bytes())?;
            writer.write_all(&payload)
        }
    }
}

/// The shard non-solve verbs and unrouteable errors are attributed to:
/// whatever the connection's first solve pinned, shard 0 before that.
fn fallback_shard<'a>(conn: &ConnState, shared: &'a Shared) -> &'a Shard {
    &shared.shards[conn.pinned.unwrap_or(0)]
}

/// Dispatches one parsed request; returns the response and, for a
/// successful `upgrade`, the framing to switch to after it is written.
fn handle_request(
    req: Request,
    conn: &mut ConnState,
    shared: &Shared,
) -> (Response, Option<FrameMode>) {
    let count = |shard: &Shard| {
        shard.metrics.requests.fetch_add(1, Ordering::Relaxed);
    };
    match req.verb.as_str() {
        "ping" => {
            count(fallback_shard(conn, shared));
            (Response::ok(req.id), None)
        }
        "stats" => {
            count(fallback_shard(conn, shared));
            let mut r = Response::ok(req.id);
            r.stats = Some(shared.stats());
            (r, None)
        }
        "metrics" => {
            count(fallback_shard(conn, shared));
            let mut r = Response::ok(req.id);
            r.metrics = Some(shared.prometheus());
            (r, None)
        }
        "trace" => {
            count(fallback_shard(conn, shared));
            match shared.trace(req.shard) {
                Ok(t) => {
                    let mut r = Response::ok(req.id);
                    r.exemplars = Some(t);
                    (r, None)
                }
                Err(e) => (Response::error(req.id, e), None),
            }
        }
        "shutdown" => {
            count(fallback_shard(conn, shared));
            shared.begin_shutdown();
            (Response::ok(req.id), None)
        }
        "upgrade" => {
            count(fallback_shard(conn, shared));
            match req.frame.as_deref() {
                Some("binary") => (Response::ok(req.id), Some(FrameMode::Binary)),
                Some("json") => (Response::ok(req.id), Some(FrameMode::Json)),
                other => (
                    Response::error(
                        req.id,
                        format!("unsupported frame {other:?} (expected \"binary\" or \"json\")"),
                    ),
                    None,
                ),
            }
        }
        "solve" => (handle_solve(&req, conn, shared), None),
        other => {
            count(fallback_shard(conn, shared));
            (
                Response::error(req.id, format!("unknown verb {other:?}")),
                None,
            )
        }
    }
}

fn handle_solve(req: &Request, conn: &mut ConnState, shared: &Shared) -> Response {
    let t0 = Instant::now();
    // Mint the request id first: every span and log line this request
    // produces — here and in the worker — carries it.
    let rid = shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
    let _rid_scope = bisched_obs::log::request_scope(rid);
    let _request_span = bisched_obs::span_arg("solve_request", "service", "request_id", rid);
    let id = req.id;
    // Errors before routing (no instance yet, so no fingerprint) are
    // attributed to the connection's fallback shard.
    let fail_unrouted = |message: String| {
        let shard = fallback_shard(conn, shared);
        shard.metrics.requests.fetch_add(1, Ordering::Relaxed);
        shard.metrics.errors.fetch_add(1, Ordering::Relaxed);
        Response::error(id, message)
    };
    let Some(data) = req.instance.clone() else {
        return fail_unrouted("solve requires `instance`".into());
    };
    let config = match req.solver_config(&shared.base_config) {
        Ok(c) => c,
        Err(e) => return fail_unrouted(e),
    };
    // `Instance::uniform` sorts speeds, so a `Q` request with unsorted
    // speeds gets its machines renumbered internally; keep the submitted
    // order to translate machine ids back in the response.
    let submitted_speeds = data.speeds.clone();
    let instance = match data.into_instance() {
        Ok(i) => i,
        Err(e) => return fail_unrouted(e.to_string()),
    };
    let canon_t0 = Instant::now();
    let canon_span = bisched_obs::span_arg("canonicalize", "service", "request_id", rid);
    let mut canonical = canonicalize(&instance);
    drop(canon_span);
    let canon_us = canon_t0.elapsed().as_micros() as u64;
    if let Some(submitted) = &submitted_speeds {
        let map = sorted_to_submitted(&instance.speeds(), submitted);
        for m in canonical.machine_perm.iter_mut() {
            *m = map[*m as usize];
        }
    }

    // Route by the raw canonical fingerprint — relabelings of one
    // instance share it, so they always reach the same shard cache. The
    // first routed solve pins the connection; each request still
    // re-routes by its own fingerprint (multiplexed clients).
    let route = canonical.fingerprint;
    let shard_idx = shared.shard_of(route);
    conn.pinned = Some(shard_idx);
    let shard = &shared.shards[shard_idx];
    shard.metrics.requests.fetch_add(1, Ordering::Relaxed);
    let fail = |r: Response| {
        shard.metrics.errors.fetch_add(1, Ordering::Relaxed);
        r
    };

    // Benchmark aid: emulate a heavier per-request cost, serialized on
    // this shard's gate so aggregate throughput is shard-bound (what the
    // `service_scaling` lab suite measures). Never set by real clients.
    if let Some(us) = req.stall_us.filter(|&us| us > 0) {
        let _gate = shard.stall_gate.lock().unwrap();
        std::thread::sleep(Duration::from_micros(us));
    }

    // The cache key covers the *effective solver configuration* too: a
    // report produced under `method: greedy` must never answer a request
    // that forced an exact engine (or a different eps), and vice versa.
    let cfg_bytes = config_cache_bytes(&config);
    let cache_key = canonical.fingerprint ^ fnv128(&cfg_bytes);
    let cache_cert: Vec<u8> = {
        let mut c = canonical.certificate.clone();
        c.extend_from_slice(&cfg_bytes);
        c
    };

    // Fast path: serve relabelings of anything already solved straight
    // from the shard's cache, translated back to the request's labeling.
    if !req.no_cache.unwrap_or(false) {
        let hit = shard.cache.lock().unwrap().get(cache_key, &cache_cert);
        if let Some(report) = hit {
            bisched_obs::instant("cache_hit", "service", "request_id", rid);
            return finish_solve(
                id, rid, &canonical, &report, true, t0, canon_us, None, shard, shard_idx,
            );
        }
        bisched_obs::instant("cache_miss", "service", "request_id", rid);
    }

    // Miss: enqueue for this shard's worker pool (bounded — `busy` on
    // overflow).
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        request_id: rid,
        instance: canonical.instance.clone(),
        route,
        fingerprint: cache_key,
        certificate: cache_cert,
        config,
        reply: reply_tx,
        enqueued: Instant::now(),
    };
    let send_result = {
        let queue = shard.queue.lock().unwrap();
        match queue.as_ref() {
            None => Err(None),
            Some(tx) => tx.try_send(job).map_err(Some),
        }
    };
    match send_result {
        Ok(()) => {}
        Err(Some(TrySendError::Full(_))) => {
            shard.metrics.busy.fetch_add(1, Ordering::Relaxed);
            bisched_obs::debug!(
                "service",
                "shard {shard_idx} queue full, rejecting request {id:?}"
            );
            return Response::busy(id);
        }
        Err(Some(TrySendError::Disconnected(_))) | Err(None) => {
            return fail(Response::error(id, "service is shutting down"));
        }
    }
    match reply_rx.recv() {
        Ok(JobReply::Solved {
            report,
            queue_us,
            solve_us,
        }) => finish_solve(
            id,
            rid,
            &canonical,
            &report,
            false,
            t0,
            canon_us,
            Some((queue_us, solve_us)),
            shard,
            shard_idx,
        ),
        Ok(JobReply::Failed(e)) => fail(Response::solve_error(id, &e)),
        Err(_) => fail(Response::error(id, "worker dropped the request")),
    }
}

/// Builds the `ok` solve response in the request's labeling, and offers
/// the finished request to the shard's slow-request exemplar buffer.
/// `timing` is `Some((queue_us, solve_us))` for worker-solved requests,
/// `None` for cache hits (which never enqueue).
#[allow(clippy::too_many_arguments)]
fn finish_solve(
    id: Option<u64>,
    rid: u64,
    canonical: &bisched_model::Canonical,
    report: &bisched_core::SolveReport,
    cached: bool,
    t0: Instant,
    canon_us: u64,
    timing: Option<(u64, u64)>,
    shard: &Shard,
    shard_idx: usize,
) -> Response {
    let schedule = canonical.schedule_to_original(&report.schedule);
    let mut r = Response::ok(id);
    r.method = Some(report.method.name().to_string());
    r.guarantee = Some(report.guarantee.to_string());
    r.makespan_num = Some(report.makespan.num());
    r.makespan_den = Some(report.makespan.den());
    r.lower_bound_num = Some(report.lower_bound.num());
    r.lower_bound_den = Some(report.lower_bound.den());
    r.assignment = Some(schedule.assignment().to_vec());
    r.cached = Some(cached);
    let elapsed = t0.elapsed();
    let total_ms = elapsed.as_secs_f64() * 1e3;
    r.time_ms = Some(total_ms);
    // Counters travel only on fresh solves: a cache hit's attempts
    // would describe the original request's work, not this one's.
    if !cached {
        r.attempts = Some(report.attempts.iter().map(AttemptData::from_run).collect());
    }
    shard.metrics.solved.fetch_add(1, Ordering::Relaxed);
    shard.metrics.record_latency(elapsed.as_micros() as u64);
    bisched_obs::debug!(
        "service",
        "solved via {} in {total_ms:.3}ms (shard {shard_idx}, cached: {cached})",
        report.method.name()
    );
    let exemplar = ExemplarData {
        request_id: rid,
        total_ms,
        cached,
        method: Some(report.method.name().to_string()),
        fingerprint: format!("{:032x}", canonical.fingerprint),
        shard: shard_idx as u64,
        root: exemplar_tree(total_ms, canon_us, timing, report, cached),
    };
    shard
        .exemplars
        .lock()
        .unwrap()
        .record(exemplar, Instant::now());
    r
}

/// Assembles the exemplar's span tree from the measured phase boundaries
/// and the report's per-engine attempts. Cache hits get a
/// canonicalize-only tree: the engine spans of the original solve would
/// misattribute this request's time.
fn exemplar_tree(
    total_ms: f64,
    canon_us: u64,
    timing: Option<(u64, u64)>,
    report: &bisched_core::SolveReport,
    cached: bool,
) -> SpanData {
    let canon_ms = canon_us as f64 / 1e3;
    let mut children = vec![SpanData {
        name: "canonicalize".into(),
        start_ms: 0.0,
        dur_ms: canon_ms,
        counters: vec![],
        children: vec![],
    }];
    if let (Some((queue_us, solve_us)), false) = (timing, cached) {
        let queue_ms = queue_us as f64 / 1e3;
        let solve_ms = solve_us as f64 / 1e3;
        children.push(SpanData {
            name: "queue".into(),
            start_ms: canon_ms,
            dur_ms: queue_ms,
            counters: vec![],
            children: vec![],
        });
        let batch_start = canon_ms + queue_ms;
        // Race members run concurrently, so each engine span starts at
        // the batch start; its own wall time is its duration.
        let engine_spans = report
            .attempts
            .iter()
            .map(|run| SpanData {
                name: run.method.name().to_string(),
                start_ms: batch_start,
                dur_ms: run.wall_time.as_secs_f64() * 1e3,
                counters: run.stats.iter().map(|(n, v)| (n.to_string(), v)).collect(),
                children: vec![],
            })
            .collect();
        children.push(SpanData {
            name: "solve_batch".into(),
            start_ms: batch_start,
            dur_ms: solve_ms,
            counters: vec![],
            children: engine_spans,
        });
    }
    SpanData {
        name: "solve_request".into(),
        start_ms: 0.0,
        dur_ms: total_ms,
        counters: vec![],
        children,
    }
}

/// Maps each position of the server's sorted `Q` speeds vector to a
/// submitted machine index with the same speed (duplicates consumed in
/// submission order — equal-speed machines are interchangeable).
fn sorted_to_submitted(sorted: &[u64], submitted: &[u64]) -> Vec<u32> {
    let mut buckets: std::collections::HashMap<u64, std::collections::VecDeque<u32>> =
        std::collections::HashMap::new();
    for (i, &s) in submitted.iter().enumerate() {
        buckets.entry(s).or_default().push_back(i as u32);
    }
    sorted
        .iter()
        .map(|s| {
            buckets
                .get_mut(s)
                .and_then(|q| q.pop_front())
                .expect("sorted speeds are a permutation of the submitted speeds")
        })
        .collect()
}

/// `SolverConfig` fields deliberately excluded from the cache key, each
/// with its justification. The `bisched-analyze` `cache-key-fields`
/// lint reads this table: a config field missing from both
/// [`config_cache_bytes`] and this list fails the lint, so excluding a
/// field always costs an explicit written reason.
// Referenced by the contract test below; the analyzer reads it straight
// from the source, so the non-test build never touches it.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) const CACHE_KEY_ALLOWLIST: &[(&str, &str)] = &[(
    "fptas_parallel",
    "parallel FPTAS expansion is result-identical to the sequential sweep, \
     so both settings may share cache entries",
)];

/// Stable byte encoding of everything in a [`SolverConfig`] that can
/// change a solve's outcome — part of the cache key.
///
/// The exhaustive destructure below is deliberate: adding a field to
/// `SolverConfig` breaks this build until the field is either encoded
/// here or added to the `CACHE_KEY_ALLOWLIST` with a justification —
/// a silent wrong-config cache hit is never an option. The
/// `bisched-analyze` `cache-key-fields` lint checks the same contract
/// token-level (it fails when a field name appears in neither the body
/// nor the allowlist).
fn config_cache_bytes(config: &SolverConfig) -> Vec<u8> {
    use bisched_core::MethodPolicy;
    let SolverConfig {
        eps,
        exact_budget,
        bnb_node_limit,
        bnb_deadline,
        cp_node_limit,
        race_deadline,
        auto_exact_jobs,
        fptas_state_cap,
        fptas_parallel,
        seed,
        policy,
    } = config;
    // `fptas_parallel` is deliberately absent from the key: the parallel
    // expansion is result-identical to the sequential sweep, so both may
    // share cache entries (see CACHE_KEY_ALLOWLIST).
    let _ = fptas_parallel;
    let mut out = Vec::new();
    out.extend_from_slice(&eps.to_bits().to_le_bytes());
    out.extend_from_slice(&exact_budget.to_le_bytes());
    out.extend_from_slice(&bnb_node_limit.to_le_bytes());
    // `u64::MAX` marks "no deadline" (a real deadline of u64::MAX ns is
    // indistinguishable from none in effect, so the collision is benign).
    let deadline_ns = bnb_deadline
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(u64::MAX);
    out.extend_from_slice(&deadline_ns.to_le_bytes());
    out.extend_from_slice(&cp_node_limit.to_le_bytes());
    // Same `u64::MAX`-as-"none" convention for the race deadline.
    let race_ns = race_deadline
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(u64::MAX);
    out.extend_from_slice(&race_ns.to_le_bytes());
    // `u64::MAX` marks "no FPTAS state cap" (a real cap never reaches it:
    // `SolverConfig::build` rejects 0 and widths are bounded by memory).
    let fptas_cap = fptas_state_cap.map(|c| c as u64).unwrap_or(u64::MAX);
    out.extend_from_slice(&fptas_cap.to_le_bytes());
    out.extend_from_slice(&(*auto_exact_jobs as u64).to_le_bytes());
    out.extend_from_slice(&seed.to_le_bytes());
    match policy {
        MethodPolicy::Auto => out.push(0),
        MethodPolicy::Force(m) => {
            out.push(1);
            out.extend_from_slice(m.name().as_bytes());
        }
        MethodPolicy::Portfolio(methods) => {
            out.push(2);
            for m in methods {
                out.extend_from_slice(m.name().as_bytes());
                out.push(b',');
            }
        }
    }
    out
}

/// Convenience: starts a service on `addr` with default options.
pub fn serve<A: ToSocketAddrs + std::fmt::Display>(addr: A) -> std::io::Result<Service> {
    Service::start(ServeOptions {
        addr: addr.to_string(),
        ..ServeOptions::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_bytes_distinguish_outcome_changing_knobs() {
        let base = SolverConfig::new();
        let baseline = config_cache_bytes(&base);
        // Every knob that can change a solve's result must change the key.
        for variant in [
            base.clone().eps(0.5),
            base.clone().exact_budget(7),
            base.clone().bnb_node_limit(9),
            base.clone()
                .bnb_deadline(Some(std::time::Duration::from_millis(3))),
            base.clone().cp_node_limit(11),
            base.clone()
                .race_deadline(Some(std::time::Duration::from_millis(5))),
            base.clone().fptas_state_cap(Some(1024)),
            base.clone().auto_exact_jobs(3),
            base.clone().seed(1),
        ] {
            assert_ne!(
                config_cache_bytes(&variant),
                baseline,
                "variant {variant:?} must not share a cache key with the default config"
            );
        }
        // The parallel toggle is result-identical by construction and
        // deliberately shares entries.
        assert_eq!(
            config_cache_bytes(&base.clone().fptas_parallel(true)),
            baseline
        );
    }

    /// The cache-key contract: `config_cache_bytes` exhaustively
    /// destructures `SolverConfig` (a new field is a compile error in
    /// that function until it is encoded or allowlisted), and every
    /// allowlisted exclusion both names a real field and genuinely does
    /// not perturb the key.
    #[test]
    fn cache_key_allowlist_matches_reality() {
        // Mirror destructure: this test stops compiling at the same
        // moment `config_cache_bytes` does, so the contract cannot rot
        // silently in a build where tests are skipped.
        let SolverConfig {
            eps: _,
            exact_budget: _,
            bnb_node_limit: _,
            bnb_deadline: _,
            cp_node_limit: _,
            race_deadline: _,
            auto_exact_jobs: _,
            fptas_state_cap: _,
            fptas_parallel: _,
            seed: _,
            policy: _,
        } = SolverConfig::new();

        assert!(
            !CACHE_KEY_ALLOWLIST.is_empty(),
            "allowlist exists to carry justifications; emptying it means \
             every field is encoded — then delete this assertion too"
        );
        for (field, why) in CACHE_KEY_ALLOWLIST {
            assert!(
                !why.trim().is_empty(),
                "allowlisted field `{field}` needs a written justification"
            );
            assert_eq!(
                *field, "fptas_parallel",
                "new allowlist entry `{field}`: extend this test with a \
                 key-equality check proving the field really is inert"
            );
        }
    }

    #[test]
    fn json_messages_split_on_newlines_and_survive_partials() {
        let mut pending: Vec<u8> = b"  {\"verb\":\"ping\"}  \n{\"verb\"".to_vec();
        let first = next_message(&mut pending, FrameMode::Json).unwrap();
        assert_eq!(first.as_deref(), Some(b"{\"verb\":\"ping\"}".as_slice()));
        // The second message is incomplete: nothing yet, bytes retained.
        assert!(next_message(&mut pending, FrameMode::Json)
            .unwrap()
            .is_none());
        pending.extend_from_slice(b":\"stats\"}\n");
        let second = next_message(&mut pending, FrameMode::Json).unwrap();
        assert_eq!(second.as_deref(), Some(b"{\"verb\":\"stats\"}".as_slice()));
        assert!(pending.is_empty());
    }

    #[test]
    fn binary_messages_wait_for_the_full_frame() {
        let mut payload = Vec::new();
        let ping = serde_json::parse_value("{\"verb\": \"ping\"}").unwrap();
        frame::encode_value(&ping, &mut payload);
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&payload);
        // Feed the frame one byte at a time: no message until complete.
        let mut pending: Vec<u8> = Vec::new();
        for (i, b) in wire.iter().enumerate() {
            pending.push(*b);
            let got = next_message(&mut pending, FrameMode::Binary).unwrap();
            if i + 1 < wire.len() {
                assert!(got.is_none(), "premature message at byte {i}");
            } else {
                assert_eq!(got.as_deref(), Some(payload.as_slice()));
            }
        }
        assert!(pending.is_empty());
    }

    #[test]
    fn oversized_binary_frames_are_rejected() {
        let mut pending = (frame::MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        pending.extend_from_slice(&[0; 16]);
        assert!(next_message(&mut pending, FrameMode::Binary).is_err());
    }
}
