//! Slow-request exemplars: an always-on, bounded record of the K worst
//! requests per time window, each carrying its full span tree with
//! engine counters — so a p99 outlier in production is inspectable
//! *after the fact* via the `trace` verb, without having pre-enabled
//! the global flight recorder.
//!
//! The span trees are assembled explicitly by the connection handler
//! from measured phase boundaries (canonicalize / queue / solve) and the
//! [`SolveReport`](bisched_core::SolveReport)'s per-engine attempts, not
//! drained from the recorder: capture therefore costs a few allocations
//! per request and works whether or not recording is on.
//!
//! Two windows are kept — the current one and the previous, completed
//! one — so a spike remains fetchable for a full window after it rolls
//! over instead of vanishing at the boundary.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One node of an exemplar's span tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpanData {
    /// Span name (`solve_request`, `canonicalize`, `queue`,
    /// `solve_batch`, or an engine name).
    pub name: String,
    /// Start offset from the request's arrival, milliseconds.
    pub start_ms: f64,
    /// Span duration, milliseconds.
    pub dur_ms: f64,
    /// Engine counters attached to this span (`EngineStats` pairs;
    /// empty for pure phase spans).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub counters: Vec<(String, u64)>,
    /// Child spans, in start order.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub children: Vec<SpanData>,
}

/// One captured slow request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExemplarData {
    /// The server-minted request id (also on the request's log lines).
    pub request_id: u64,
    /// End-to-end handler wall time, milliseconds.
    pub total_ms: f64,
    /// Whether the canonicalization cache answered it.
    pub cached: bool,
    /// Winning engine name, when the solve succeeded.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub method: Option<String>,
    /// Canonical-form fingerprint, hex — correlates exemplars with
    /// cache entries and with each other across relabelings.
    pub fingerprint: String,
    /// The shard that served the request (`0` on single-shard servers;
    /// defaulted so pre-sharding payloads still parse).
    #[serde(default)]
    pub shard: u64,
    /// The request's span tree, rooted at `solve_request`.
    pub root: SpanData,
}

/// The `trace` verb's payload: both exemplar windows.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TraceData {
    /// Window length, seconds.
    pub window_s: f64,
    /// Exemplars kept per window (the K in "K worst").
    pub k: u64,
    /// Index of the current window since service start.
    pub window: u64,
    /// Worst requests of the in-progress window, slowest first.
    pub current: Vec<ExemplarData>,
    /// Worst requests of the last completed window, slowest first.
    pub previous: Vec<ExemplarData>,
}

/// The bounded worst-K-per-window buffer. Callers pass `now` explicitly
/// so window arithmetic is deterministic under test.
pub(crate) struct SlowRing {
    k: usize,
    window: Duration,
    window_started: Instant,
    window_index: u64,
    current: Vec<ExemplarData>,
    previous: Vec<ExemplarData>,
}

impl SlowRing {
    pub(crate) fn new(k: usize, window: Duration, now: Instant) -> SlowRing {
        SlowRing {
            k: k.max(1),
            window: window.max(Duration::from_millis(1)),
            window_started: now,
            window_index: 0,
            current: Vec::new(),
            previous: Vec::new(),
        }
    }

    /// Rolls the window if `now` has left it. One elapsed window moves
    /// `current` to `previous`; a gap of two or more (an idle service)
    /// empties both — those windows genuinely saw nothing.
    fn roll(&mut self, now: Instant) {
        let elapsed = now.saturating_duration_since(self.window_started);
        if elapsed < self.window {
            return;
        }
        let windows = (elapsed.as_nanos() / self.window.as_nanos()).max(1) as u64;
        self.previous = if windows == 1 {
            std::mem::take(&mut self.current)
        } else {
            self.current.clear();
            Vec::new()
        };
        self.window_index += windows;
        self.window_started += self.window * (windows as u32);
    }

    /// Offers one finished request. Kept iff the current window holds
    /// fewer than K exemplars or this one is slower than the fastest
    /// kept — which it then evicts.
    pub(crate) fn record(&mut self, ex: ExemplarData, now: Instant) {
        self.roll(now);
        if self.current.len() >= self.k {
            // `current` is sorted slowest-first, so the last entry is
            // the eviction candidate.
            match self.current.last() {
                Some(fastest) if ex.total_ms > fastest.total_ms => {
                    self.current.pop();
                }
                _ => return,
            }
        }
        let at = self
            .current
            .partition_point(|kept| kept.total_ms >= ex.total_ms);
        self.current.insert(at, ex);
    }

    /// Both windows, for the `trace` verb.
    pub(crate) fn snapshot(&mut self, now: Instant) -> TraceData {
        self.roll(now);
        TraceData {
            window_s: self.window.as_secs_f64(),
            k: self.k as u64,
            window: self.window_index,
            current: self.current.clone(),
            previous: self.previous.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(request_id: u64, total_ms: f64) -> ExemplarData {
        ExemplarData {
            request_id,
            total_ms,
            cached: false,
            method: Some("fptas".into()),
            fingerprint: format!("{request_id:032x}"),
            shard: 0,
            root: SpanData {
                name: "solve_request".into(),
                start_ms: 0.0,
                dur_ms: total_ms,
                counters: vec![],
                children: vec![],
            },
        }
    }

    #[test]
    fn keeps_k_worst_sorted_and_evicts_the_fastest() {
        let t0 = Instant::now();
        let mut ring = SlowRing::new(2, Duration::from_secs(60), t0);
        ring.record(ex(1, 5.0), t0);
        ring.record(ex(2, 1.0), t0);
        ring.record(ex(3, 3.0), t0); // evicts request 2 (1.0 ms)
        ring.record(ex(4, 0.5), t0); // too fast: not kept
        let snap = ring.snapshot(t0);
        let ids: Vec<u64> = snap.current.iter().map(|e| e.request_id).collect();
        assert_eq!(ids, vec![1, 3]);
        assert!(snap.current[0].total_ms >= snap.current[1].total_ms);
    }

    #[test]
    fn window_roll_moves_current_to_previous() {
        let t0 = Instant::now();
        let win = Duration::from_secs(10);
        let mut ring = SlowRing::new(4, win, t0);
        ring.record(ex(1, 9.0), t0);
        // Next window: the old worst stays visible under `previous`.
        ring.record(ex(2, 2.0), t0 + win);
        let snap = ring.snapshot(t0 + win);
        assert_eq!(snap.window, 1);
        assert_eq!(snap.current.len(), 1);
        assert_eq!(snap.current[0].request_id, 2);
        assert_eq!(snap.previous.len(), 1);
        assert_eq!(snap.previous[0].request_id, 1);
    }

    #[test]
    fn idle_gap_clears_both_windows() {
        let t0 = Instant::now();
        let win = Duration::from_secs(10);
        let mut ring = SlowRing::new(4, win, t0);
        ring.record(ex(1, 9.0), t0);
        let snap = ring.snapshot(t0 + win * 3); // two+ windows of silence
        assert_eq!(snap.window, 3);
        assert!(snap.current.is_empty());
        assert!(snap.previous.is_empty());
    }

    #[test]
    fn snapshot_alone_also_rolls() {
        let t0 = Instant::now();
        let win = Duration::from_secs(5);
        let mut ring = SlowRing::new(2, win, t0);
        ring.record(ex(1, 1.0), t0);
        let snap = ring.snapshot(t0 + win);
        assert_eq!(snap.previous.len(), 1);
        assert!(snap.current.is_empty());
    }

    #[test]
    fn trace_payload_round_trips_through_json() {
        let t0 = Instant::now();
        let mut ring = SlowRing::new(2, Duration::from_secs(60), t0);
        let mut sample = ex(7, 4.25);
        sample.root.children.push(SpanData {
            name: "branch-and-bound".into(),
            start_ms: 0.5,
            dur_ms: 3.5,
            counters: vec![("nodes".into(), 123), ("prunes_incumbent".into(), 45)],
            children: vec![],
        });
        ring.record(sample, t0);
        let snap = ring.snapshot(t0);
        let json = serde_json::to_string(&snap).unwrap();
        let back: TraceData = serde_json::from_str(&json).unwrap();
        assert_eq!(back.current.len(), 1);
        assert_eq!(back.current[0].request_id, 7);
        assert_eq!(back.current[0].root.children[0].counters[0].0, "nodes");
        assert_eq!(back.current[0].root.children[0].counters[0].1, 123);
    }
}
