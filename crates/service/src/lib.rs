//! # bisched-service
//!
//! The high-throughput solve daemon: a long-running TCP service (plain
//! `std::net`, JSON-lines protocol with an optional binary framing —
//! see `PROTOCOL.md`) in front of the [`bisched_core::Solver`] engine,
//! built for bulk workloads:
//!
//! * **Sharded front end** — the service runs as N independent shards;
//!   every solve request routes by its canonical 128-bit fingerprint
//!   (`fingerprint % shards`), and each shard owns its own cache, queue,
//!   worker pool, histograms, and exemplar ring, so the solve hot path
//!   crosses no shard boundary and no global lock.
//! * **Canonicalization cache** — every instance is reduced to the
//!   normal form of [`bisched_model::canonical`] and memoized in a
//!   bounded LRU keyed by its 128-bit fingerprint, so repeated *and
//!   relabeled/isomorphic* submissions are answered without re-solving
//!   (the cached schedule is translated back through the request's
//!   labeling). Routing uses the same fingerprint, so isomorphic
//!   submissions always find the shard that cached them.
//! * **Snapshot / warm start** — with `cache_snapshot` set, a graceful
//!   shutdown writes every shard's cache entries to a versioned binary
//!   file and the next boot reloads them (re-bucketed by route, so the
//!   shard count may change between runs).
//! * **Micro-batching worker pools** — per shard, `max(1, workers /
//!   shards)` solver threads over a bounded MPSC queue; each wake-up
//!   drains up to B queued requests into one
//!   [`Solver::solve_batch`](bisched_core::Solver::solve_batch) call.
//! * **Backpressure** — a full shard queue yields a typed `busy`
//!   response instead of unbounded buffering.
//! * **Stats** — the `stats` verb (and shutdown log) reports cross-shard
//!   totals plus a per-shard breakdown: requests, hit rates, p50/p99.
//! * **Graceful shutdown** — the `shutdown` verb stops intake, drains
//!   every shard's accepted requests, and joins all threads. No
//!   connect-to-self tricks: the accept loop is a non-blocking poll.
//!
//! ## Scaling the service
//!
//! One shard is a classic single-cache daemon. Raising `--shards N`
//! splits the keyspace N ways: because the router hashes the *canonical*
//! fingerprint, each shard sees a disjoint slice of instances and its
//! cache stays as effective as the single global one — there is no
//! cross-shard duplication for relabeled resubmissions, and no lock is
//! shared between shards on the solve path. On cache-hit traffic,
//! aggregate throughput therefore scales near-linearly until clients or
//! the accept loop saturate; the `service_scaling` lab suite measures
//! exactly this (1→8 shards) and the bench gate holds the ratio. Use
//! `bisched_cli submit --clients K` to drive a sharded daemon from K
//! concurrent connections and print per-shard hit rates.
//!
//! ```no_run
//! use bisched_service::{Client, Request, ServeOptions, Service};
//! use bisched_model::{Instance, InstanceData};
//! use bisched_graph::Graph;
//!
//! let service = Service::start(ServeOptions {
//!     shards: 4,
//!     ..ServeOptions::default()
//! })
//! .unwrap();
//! let mut client = Client::connect(service.local_addr()).unwrap();
//!
//! let inst = Instance::identical(2, vec![3, 2, 4], Graph::path(3)).unwrap();
//! let resp = client.solve(InstanceData::from_instance(&inst)).unwrap();
//! assert_eq!(resp.status, "ok");
//!
//! client.shutdown_server().unwrap();
//! service.join();
//! ```

#![warn(missing_docs)]
// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
pub mod cache;
pub mod client;
pub mod exemplar;
pub mod frame;
pub mod metrics;
pub mod protocol;
pub mod server;
mod snapshot;
mod worker;

pub use cache::{CacheCounters, LruCache};
pub use client::{Client, ClientError};
pub use exemplar::{ExemplarData, SpanData, TraceData};
pub use metrics::{LatencyHist, Metrics};
pub use protocol::{AttemptData, Request, Response, ShardStats, StatsData};
pub use server::{serve, ServeOptions, Service};
