//! # bisched-service
//!
//! The high-throughput solve daemon: a long-running TCP service (plain
//! `std::net`, JSON-lines protocol — see `PROTOCOL.md`) in front of the
//! [`bisched_core::Solver`] engine, built for bulk workloads:
//!
//! * **Canonicalization cache** — every instance is reduced to the
//!   normal form of [`bisched_model::canonical`] and memoized in a
//!   bounded LRU keyed by its 128-bit fingerprint, so repeated *and
//!   relabeled/isomorphic* submissions are answered without re-solving
//!   (the cached schedule is translated back through the request's
//!   labeling).
//! * **Micro-batching worker pool** — N solver threads over a bounded
//!   MPSC queue; each wake-up drains up to B queued requests into one
//!   [`Solver::solve_batch`](bisched_core::Solver::solve_batch) call.
//! * **Backpressure** — a full queue yields a typed `busy` response
//!   instead of unbounded buffering.
//! * **Stats** — the `stats` verb (and shutdown log) reports requests
//!   served, cache hit rate, p50/p99 latency, and per-engine win counts.
//! * **Graceful shutdown** — the `shutdown` verb stops intake, drains
//!   every accepted request, and joins all threads.
//!
//! ```no_run
//! use bisched_service::{Client, Request, ServeOptions, Service};
//! use bisched_model::{Instance, InstanceData};
//! use bisched_graph::Graph;
//!
//! let service = Service::start(ServeOptions::default()).unwrap();
//! let mut client = Client::connect(service.local_addr()).unwrap();
//!
//! let inst = Instance::identical(2, vec![3, 2, 4], Graph::path(3)).unwrap();
//! let resp = client.solve(InstanceData::from_instance(&inst)).unwrap();
//! assert_eq!(resp.status, "ok");
//!
//! client.shutdown_server().unwrap();
//! service.join();
//! ```

#![warn(missing_docs)]
// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
pub mod cache;
pub mod client;
pub mod exemplar;
pub mod metrics;
pub mod protocol;
pub mod server;
mod worker;

pub use cache::{CacheCounters, LruCache};
pub use client::{Client, ClientError};
pub use exemplar::{ExemplarData, SpanData, TraceData};
pub use metrics::{LatencyHist, Metrics};
pub use protocol::{AttemptData, Request, Response, StatsData};
pub use server::{serve, ServeOptions, Service};
