//! Cache snapshot persistence: a versioned binary file holding every
//! live cache entry at drain time, reloaded (and re-bucketed by route)
//! at the next boot so a restarted daemon answers its working set from
//! cache without re-solving anything.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic   5 bytes  b"BSNAP"
//! version 1 byte   currently 1
//! count   u64      number of entries
//! entry*  route u128 · key u128 · cert (u32 len + bytes)
//!         · method (u32 len + UTF-8 name) · guarantee (tag byte + data)
//!         · makespan num/den u64 · lower_bound num/den u64 · seed u64
//!         · assignment (u32 count + u32 per job)
//! ```
//!
//! Guarantee tags: `0` Optimal, `1` Ratio(num u64, den u64), `2`
//! SqrtSumP, `3` OnePlusEps(f64 bits), `4` Heuristic.
//!
//! Only the fields a cache hit can serve travel: `attempts`,
//! `total_time`, and `race_time` describe the *original* solve's work
//! and are already withheld from cache-hit responses, so a reloaded
//! entry carries them empty/zero. A version bump is required for any
//! layout change; an unknown version is refused (the caller falls back
//! to a cold start).

use bisched_core::{Guarantee, SolveReport};
use bisched_model::{Rat, Schedule};
use std::io::{Error, ErrorKind, Result};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 5] = b"BSNAP";
const VERSION: u8 = 1;

/// Upper bound on per-entry variable-length fields (certificate bytes,
/// assignment length): rejects corrupt length prefixes before they turn
/// into huge allocations.
const MAX_FIELD_LEN: u32 = 64 * 1024 * 1024;

/// One cache entry as persisted: the routing fingerprint, the full cache
/// key (route ⊕ config bytes), the collision-proof certificate, and the
/// report itself.
pub(crate) struct SnapshotEntry {
    /// Raw canonical fingerprint — re-bucketing key on reload.
    pub route: u128,
    /// The shard cache's lookup key.
    pub key: u128,
    /// Certificate bytes compared on every hit.
    pub certificate: Vec<u8>,
    /// The cached report.
    pub report: Arc<SolveReport>,
}

/// Serializes `entries` to `path` (atomically: temp file + rename).
pub(crate) fn save(path: &Path, entries: &[SnapshotEntry]) -> Result<()> {
    let mut out: Vec<u8> = Vec::with_capacity(64 + entries.len() * 128);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&e.route.to_le_bytes());
        out.extend_from_slice(&e.key.to_le_bytes());
        write_bytes(&mut out, &e.certificate);
        let r = &e.report;
        write_bytes(&mut out, r.method.name().as_bytes());
        match &r.guarantee {
            Guarantee::Optimal => out.push(0),
            Guarantee::Ratio(rat) => {
                out.push(1);
                out.extend_from_slice(&rat.num().to_le_bytes());
                out.extend_from_slice(&rat.den().to_le_bytes());
            }
            Guarantee::SqrtSumP => out.push(2),
            Guarantee::OnePlusEps(eps) => {
                out.push(3);
                out.extend_from_slice(&eps.to_bits().to_le_bytes());
            }
            Guarantee::Heuristic => out.push(4),
        }
        out.extend_from_slice(&r.makespan.num().to_le_bytes());
        out.extend_from_slice(&r.makespan.den().to_le_bytes());
        out.extend_from_slice(&r.lower_bound.num().to_le_bytes());
        out.extend_from_slice(&r.lower_bound.den().to_le_bytes());
        out.extend_from_slice(&r.seed.to_le_bytes());
        let assignment = r.schedule.assignment();
        out.extend_from_slice(&(assignment.len() as u32).to_le_bytes());
        for &m in assignment {
            out.extend_from_slice(&m.to_le_bytes());
        }
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &out)?;
    std::fs::rename(&tmp, path)
}

/// Reads a snapshot back. Every structural problem — bad magic, unknown
/// version, truncation, an unknown method name — is an
/// [`ErrorKind::InvalidData`] error; the caller treats it as a cold
/// start.
pub(crate) fn load(path: &Path) -> Result<Vec<SnapshotEntry>> {
    let buf = std::fs::read(path)?;
    let mut pos = 0usize;
    if take(&buf, &mut pos, MAGIC.len())? != MAGIC {
        return Err(bad("not a BSNAP snapshot"));
    }
    let version = read_u8(&buf, &mut pos)?;
    if version != VERSION {
        return Err(bad(&format!(
            "snapshot version {version} unsupported (expected {VERSION})"
        )));
    }
    let count = read_u64(&buf, &mut pos)?;
    let mut entries = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let route = read_u128(&buf, &mut pos)?;
        let key = read_u128(&buf, &mut pos)?;
        let certificate = read_bytes(&buf, &mut pos)?;
        let method_name = String::from_utf8(read_bytes(&buf, &mut pos)?)
            .map_err(|_| bad("method name is not UTF-8"))?;
        let method = method_name
            .parse()
            .map_err(|e: String| bad(&format!("snapshot method: {e}")))?;
        let guarantee = match read_u8(&buf, &mut pos)? {
            0 => Guarantee::Optimal,
            1 => {
                let num = read_u64(&buf, &mut pos)?;
                let den = read_u64(&buf, &mut pos)?;
                Guarantee::Ratio(rat(num, den)?)
            }
            2 => Guarantee::SqrtSumP,
            3 => Guarantee::OnePlusEps(f64::from_bits(read_u64(&buf, &mut pos)?)),
            4 => Guarantee::Heuristic,
            other => return Err(bad(&format!("unknown guarantee tag {other}"))),
        };
        let makespan = rat(read_u64(&buf, &mut pos)?, read_u64(&buf, &mut pos)?)?;
        let lower_bound = rat(read_u64(&buf, &mut pos)?, read_u64(&buf, &mut pos)?)?;
        let seed = read_u64(&buf, &mut pos)?;
        let jobs = read_u32(&buf, &mut pos)?;
        if jobs > MAX_FIELD_LEN {
            return Err(bad("assignment length over limit"));
        }
        let mut assignment = Vec::with_capacity(jobs as usize);
        for _ in 0..jobs {
            assignment.push(read_u32(&buf, &mut pos)?);
        }
        entries.push(SnapshotEntry {
            route,
            key,
            certificate,
            report: Arc::new(SolveReport {
                schedule: Schedule::new(assignment),
                makespan,
                method,
                guarantee,
                lower_bound,
                attempts: Vec::new(),
                total_time: std::time::Duration::ZERO,
                race_time: None,
                seed,
            }),
        });
    }
    if pos != buf.len() {
        return Err(bad("trailing bytes after the last entry"));
    }
    Ok(entries)
}

fn bad(msg: &str) -> Error {
    Error::new(ErrorKind::InvalidData, msg.to_string())
}

fn rat(num: u64, den: u64) -> Result<Rat> {
    if den == 0 {
        return Err(bad("rational with zero denominator"));
    }
    Ok(Rat::new(num, den))
}

fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    let slice = buf
        .get(*pos..*pos + n)
        .ok_or_else(|| bad("truncated snapshot"))?;
    *pos += n;
    Ok(slice)
}

fn read_u8(buf: &[u8], pos: &mut usize) -> Result<u8> {
    Ok(take(buf, pos, 1)?[0])
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    Ok(u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()))
}

fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    Ok(u64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap()))
}

fn read_u128(buf: &[u8], pos: &mut usize) -> Result<u128> {
    Ok(u128::from_le_bytes(take(buf, pos, 16)?.try_into().unwrap()))
}

fn read_bytes(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>> {
    let len = read_u32(buf, pos)?;
    if len > MAX_FIELD_LEN {
        return Err(bad("field length over limit"));
    }
    Ok(take(buf, pos, len as usize)?.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_core::Solver;
    use bisched_graph::Graph;
    use bisched_model::Instance;

    fn sample_report(p: u64) -> Arc<SolveReport> {
        let inst = Instance::identical(2, vec![p, p + 1, 1], Graph::empty(3)).unwrap();
        Arc::new(Solver::new().solve(&inst).unwrap())
    }

    #[test]
    fn snapshot_round_trips_entries_in_order() {
        let dir = std::env::temp_dir().join(format!("bsnap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.bsnap");
        let entries = vec![
            SnapshotEntry {
                route: 0xDEAD_BEEF,
                key: 42,
                certificate: vec![1, 2, 3],
                report: sample_report(5),
            },
            SnapshotEntry {
                route: u128::MAX,
                key: u128::MAX - 7,
                certificate: vec![],
                report: sample_report(9),
            },
        ];
        save(&path, &entries).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in entries.iter().zip(&back) {
            assert_eq!(a.route, b.route);
            assert_eq!(a.key, b.key);
            assert_eq!(a.certificate, b.certificate);
            assert_eq!(a.report.method, b.report.method);
            assert_eq!(a.report.makespan, b.report.makespan);
            assert_eq!(a.report.lower_bound, b.report.lower_bound);
            assert_eq!(a.report.seed, b.report.seed);
            assert_eq!(
                a.report.schedule.assignment(),
                b.report.schedule.assignment()
            );
            // The fields a cache hit never serves come back empty.
            assert!(b.report.attempts.is_empty());
            assert_eq!(b.report.total_time, std::time::Duration::ZERO);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_snapshots_are_refused_not_misread() {
        let dir = std::env::temp_dir().join(format!("bsnap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.bsnap");
        let entries = vec![SnapshotEntry {
            route: 7,
            key: 7,
            certificate: vec![9],
            report: sample_report(3),
        }];
        save(&path, &entries).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Wrong magic.
        std::fs::write(&path, b"NOPE!").unwrap();
        assert!(load(&path).is_err());
        // Future version byte.
        let mut v2 = good.clone();
        v2[5] = 99;
        std::fs::write(&path, &v2).unwrap();
        assert!(load(&path).is_err());
        // Truncated mid-entry.
        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(load(&path).is_err());
        // Trailing garbage after the declared entries.
        let mut long = good.clone();
        long.push(0);
        std::fs::write(&path, &long).unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
