//! Service metrics: counters, a log-bucketed latency histogram for
//! p50/p99, and per-engine win counts. Everything is cheap enough to
//! update on the request hot path.

use crate::protocol::{ShardStats, StatsData};
use bisched_core::Method;
use std::collections::HashMap;
// Workspace concurrency facade: std passthroughs in normal builds,
// model-checked shims under `--cfg bisched_model`.
use bisched_obs::sync::{AtomicU64, Mutex, Ordering};
use std::time::Instant;

/// Power-of-two latency buckets over microseconds: bucket `b ≥ 1` holds
/// samples in `[2^(b-1), 2^b)` µs and bucket 0 holds only 0 µs samples
/// (sub-microsecond measurements truncated by the caller), so 64 buckets
/// span nanoseconds to hours. Quantiles report the bucket's *geometric
/// midpoint* `2^(b-½)` µs — the unbiased point estimate for a bucket
/// whose samples are spread across a power-of-two range. (The earlier
/// upper-bound convention overstated every quantile by up to 2×, which
/// compounds when dashboards difference p99 − p50.)
///
/// Edge cases (regression-tested below): an empty histogram reports 0.0
/// for every quantile rather than a phantom first bucket, and 0 µs
/// samples neither underflow the bucket index (`64 - leading_zeros` is 0,
/// not `-1`) nor inflate quantiles past 1 µs.
#[derive(Debug)]
pub struct LatencyHist {
    buckets: [u64; 64],
    count: u64,
    sum_us: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            buckets: [0; 64],
            count: 0,
            sum_us: 0,
        }
    }
}

impl LatencyHist {
    /// Records one sample.
    pub fn record(&mut self, micros: u64) {
        let b = (64 - micros.leading_zeros()) as usize; // 0 µs -> bucket 0
        self.buckets[b.min(63)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(micros);
    }

    /// Geometric midpoint of the bucket containing quantile `q ∈ [0, 1]`,
    /// in milliseconds; 0 when empty (and for 0 µs samples, whose bucket
    /// is the degenerate `[0, 1)`).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if b == 0 {
                    return 0.0;
                }
                // √(2^(b-1) · 2^b) = 2^b / √2.
                return (1u64 << b) as f64 / std::f64::consts::SQRT_2 / 1000.0;
            }
        }
        f64::INFINITY
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples, microseconds (saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// The raw bucket counts; bucket `b ≥ 1` covers `[2^(b-1), 2^b)` µs.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Folds another histogram into this one (bucket-wise sum) — how the
    /// sharded service renders cross-shard totals without sharing one
    /// histogram lock on the hot path.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (b, n) in other.buckets.iter().enumerate() {
            self.buckets[b] += n;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }
}

/// The single declared registry of every Prometheus series name the
/// service exposes. [`Metrics::prometheus`] draws exclusively from this
/// list (histogram names additionally emit the standard `_bucket`,
/// `_sum`, and `_count` sub-series), and the `bisched-analyze`
/// `metric-registry` lint fails the build when a `bisched_*` name
/// appears in the source without being declared here — add the name and
/// its emission together.
pub const METRIC_NAMES: &[&str] = &[
    "bisched_requests_total",
    "bisched_solved_total",
    "bisched_errors_total",
    "bisched_busy_total",
    "bisched_batches_total",
    "bisched_batched_jobs_total",
    "bisched_cache_hits_total",
    "bisched_cache_misses_total",
    "bisched_cache_evictions_total",
    "bisched_cache_entries",
    "bisched_uptime_seconds",
    "bisched_method_wins_total",
    "bisched_method_cancelled_total",
    "bisched_request_latency_seconds",
    "bisched_queue_wait_seconds",
    "bisched_solve_time_seconds",
    "bisched_shard_requests_total",
    "bisched_shard_cache_hit_ratio",
];

/// Aggregate service metrics; one instance shared by every handler and
/// worker thread.
#[derive(Debug)]
pub struct Metrics {
    /// All requests received, any verb.
    pub requests: AtomicU64,
    /// Solve requests answered `ok`.
    pub solved: AtomicU64,
    /// Solve requests answered `error`.
    pub errors: AtomicU64,
    /// Solve requests rejected with `busy`.
    pub busy: AtomicU64,
    /// Micro-batches executed by the worker pool.
    pub batches: AtomicU64,
    /// Jobs carried by those batches.
    pub batched_jobs: AtomicU64,
    started: Instant,
    hist: Mutex<LatencyHist>,
    /// Time solve jobs spent waiting in the bounded queue before a worker
    /// drained them (cache hits never enqueue, so never appear here).
    queue_hist: Mutex<LatencyHist>,
    /// Wall time of the micro-batch `solve_batch` call that carried each
    /// job — the latency the job actually experienced while solving,
    /// batch-mates included.
    solve_hist: Mutex<LatencyHist>,
    wins: Mutex<HashMap<Method, u64>>,
    /// Race-cancelled engine attempts, per method. Kept apart from the
    /// win counters: a cancelled attempt is neither a win nor a loss
    /// (the engine was stopped because a racing engine already proved
    /// optimality), so dispatch-tuning data must not mix the two.
    cancelled: Mutex<HashMap<Method, u64>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            solved: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
            started: Instant::now(),
            hist: Mutex::new(LatencyHist::default()),
            queue_hist: Mutex::new(LatencyHist::default()),
            solve_hist: Mutex::new(LatencyHist::default()),
            wins: Mutex::new(HashMap::new()),
            cancelled: Mutex::new(HashMap::new()),
        }
    }
}

impl Metrics {
    /// Records one served solve's latency.
    pub fn record_latency(&self, micros: u64) {
        self.hist.lock().unwrap().record(micros);
    }

    /// Records how long one job sat queued before a worker drained it.
    pub fn record_queue_wait(&self, micros: u64) {
        self.queue_hist.lock().unwrap().record(micros);
    }

    /// Records the solve-phase wall time one job experienced (its whole
    /// micro-batch's `solve_batch` duration).
    pub fn record_solve_time(&self, micros: u64) {
        self.solve_hist.lock().unwrap().record(micros);
    }

    /// Credits `method` with a win (it produced a freshly solved
    /// schedule).
    pub fn record_win(&self, method: Method) {
        *self.wins.lock().unwrap().entry(method).or_insert(0) += 1;
    }

    /// Records that a portfolio race cancelled one of `method`'s
    /// attempts (counted separately from wins and losses).
    pub fn record_cancelled(&self, method: Method) {
        *self.cancelled.lock().unwrap().entry(method).or_insert(0) += 1;
    }

    /// Snapshot of everything, merged with the cache's counters, as the
    /// `stats` verb's payload (the one-shard view of
    /// [`snapshot_sharded`]).
    pub fn snapshot(&self, cache: crate::cache::CacheCounters, cache_len: usize) -> StatsData {
        snapshot_sharded(&[ShardView {
            metrics: self,
            cache,
            cache_len,
        }])
    }

    /// Renders everything as Prometheus text exposition (version 0.0.4):
    /// the `metrics` verb's payload (the one-shard view of
    /// [`prometheus_sharded`]).
    pub fn prometheus(&self, cache: crate::cache::CacheCounters, cache_len: usize) -> String {
        prometheus_sharded(&[ShardView {
            metrics: self,
            cache,
            cache_len,
        }])
    }
}

/// One shard's metrics plus its cache state, borrowed for the
/// cross-shard aggregations below. The aggregators never touch a shard's
/// solve hot path — they take each shard's locks briefly, read, and
/// merge locally.
pub struct ShardView<'a> {
    /// The shard's own [`Metrics`].
    pub metrics: &'a Metrics,
    /// The shard cache's counters.
    pub cache: crate::cache::CacheCounters,
    /// Entries currently in the shard's cache.
    pub cache_len: usize,
}

/// Sums of the scalar counters across shards, shared by the two
/// aggregate renderers.
struct Totals {
    requests: u64,
    solved: u64,
    errors: u64,
    busy: u64,
    batches: u64,
    batched_jobs: u64,
    cache: crate::cache::CacheCounters,
    cache_len: usize,
    hist: LatencyHist,
    queue_hist: LatencyHist,
    solve_hist: LatencyHist,
    wins: HashMap<Method, u64>,
    cancelled: HashMap<Method, u64>,
    uptime_s: f64,
}

impl Totals {
    fn of(shards: &[ShardView]) -> Totals {
        let mut t = Totals {
            requests: 0,
            solved: 0,
            errors: 0,
            busy: 0,
            batches: 0,
            batched_jobs: 0,
            cache: crate::cache::CacheCounters::default(),
            cache_len: 0,
            hist: LatencyHist::default(),
            queue_hist: LatencyHist::default(),
            solve_hist: LatencyHist::default(),
            wins: HashMap::new(),
            cancelled: HashMap::new(),
            uptime_s: 0.0,
        };
        for v in shards {
            let m = v.metrics;
            t.requests += m.requests.load(Ordering::Relaxed);
            t.solved += m.solved.load(Ordering::Relaxed);
            t.errors += m.errors.load(Ordering::Relaxed);
            t.busy += m.busy.load(Ordering::Relaxed);
            t.batches += m.batches.load(Ordering::Relaxed);
            t.batched_jobs += m.batched_jobs.load(Ordering::Relaxed);
            t.cache.hits += v.cache.hits;
            t.cache.misses += v.cache.misses;
            t.cache.evictions += v.cache.evictions;
            t.cache.insertions += v.cache.insertions;
            t.cache_len += v.cache_len;
            t.hist.merge(&m.hist.lock().unwrap());
            t.queue_hist.merge(&m.queue_hist.lock().unwrap());
            t.solve_hist.merge(&m.solve_hist.lock().unwrap());
            for (&method, &n) in m.wins.lock().unwrap().iter() {
                *t.wins.entry(method).or_insert(0) += n;
            }
            for (&method, &n) in m.cancelled.lock().unwrap().iter() {
                *t.cancelled.entry(method).or_insert(0) += n;
            }
            // Shards are created together at startup; report the oldest.
            t.uptime_s = t.uptime_s.max(m.started.elapsed().as_secs_f64());
        }
        t
    }
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    let lookups = hits + misses;
    if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    }
}

/// The `stats` verb's payload for a sharded service: cross-shard totals
/// in the scalar fields plus one [`ShardStats`] per shard.
pub fn snapshot_sharded(shards: &[ShardView]) -> StatsData {
    let t = Totals::of(shards);
    let mut method_wins: Vec<(String, u64)> = t
        .wins
        .iter()
        .map(|(m, &n)| (m.name().to_string(), n))
        .collect();
    method_wins.sort();
    let mut method_cancelled: Vec<(String, u64)> = t
        .cancelled
        .iter()
        .map(|(m, &n)| (m.name().to_string(), n))
        .collect();
    method_cancelled.sort();
    let per_shard = shards
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let m = v.metrics;
            let hist = m.hist.lock().unwrap();
            ShardStats {
                shard: i as u64,
                requests: m.requests.load(Ordering::Relaxed),
                solved: m.solved.load(Ordering::Relaxed),
                errors: m.errors.load(Ordering::Relaxed),
                busy: m.busy.load(Ordering::Relaxed),
                cache_hits: v.cache.hits,
                cache_misses: v.cache.misses,
                cache_len: v.cache_len as u64,
                hit_rate: hit_rate(v.cache.hits, v.cache.misses),
                p50_ms: hist.quantile_ms(0.50),
                p99_ms: hist.quantile_ms(0.99),
            }
        })
        .collect();
    StatsData {
        requests: t.requests,
        solved: t.solved,
        errors: t.errors,
        busy: t.busy,
        cache_hits: t.cache.hits,
        cache_misses: t.cache.misses,
        cache_evictions: t.cache.evictions,
        cache_len: t.cache_len as u64,
        hit_rate: hit_rate(t.cache.hits, t.cache.misses),
        batches: t.batches,
        batched_jobs: t.batched_jobs,
        p50_ms: t.hist.quantile_ms(0.50),
        p99_ms: t.hist.quantile_ms(0.99),
        queue_p50_ms: t.queue_hist.quantile_ms(0.50),
        queue_p99_ms: t.queue_hist.quantile_ms(0.99),
        solve_p50_ms: t.solve_hist.quantile_ms(0.50),
        solve_p99_ms: t.solve_hist.quantile_ms(0.99),
        cancelled: method_cancelled.iter().map(|(_, n)| n).sum(),
        method_wins,
        method_cancelled,
        uptime_s: t.uptime_s,
        shards: per_shard,
    }
}

/// The `metrics` verb's payload for a sharded service: every series from
/// [`METRIC_NAMES`], totals first, then the per-shard
/// `bisched_shard_requests_total` / `bisched_shard_cache_hit_ratio`
/// breakdowns. Counters use `_total` suffixes, the three latency
/// histograms emit cumulative `le` buckets in seconds (empty buckets
/// skipped — cumulative counts stay correct), and per-engine tables
/// become labeled series.
pub fn prometheus_sharded(shards: &[ShardView]) -> String {
    let t = Totals::of(shards);
    let mut out = String::with_capacity(4096);
    let counter = |out: &mut String, name: &str, help: &str, v: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
        ));
    };
    counter(
        &mut out,
        "bisched_requests_total",
        "Requests received, any verb.",
        t.requests,
    );
    counter(
        &mut out,
        "bisched_solved_total",
        "Solve requests answered ok.",
        t.solved,
    );
    counter(
        &mut out,
        "bisched_errors_total",
        "Solve requests answered error.",
        t.errors,
    );
    counter(
        &mut out,
        "bisched_busy_total",
        "Solve requests rejected busy (backpressure).",
        t.busy,
    );
    counter(
        &mut out,
        "bisched_batches_total",
        "Micro-batches executed by the worker pools.",
        t.batches,
    );
    counter(
        &mut out,
        "bisched_batched_jobs_total",
        "Solve jobs carried by those micro-batches.",
        t.batched_jobs,
    );
    counter(
        &mut out,
        "bisched_cache_hits_total",
        "Canonicalization-cache hits.",
        t.cache.hits,
    );
    counter(
        &mut out,
        "bisched_cache_misses_total",
        "Canonicalization-cache misses.",
        t.cache.misses,
    );
    counter(
        &mut out,
        "bisched_cache_evictions_total",
        "Entries evicted from the canonicalization caches.",
        t.cache.evictions,
    );
    out.push_str(&format!(
        "# HELP bisched_cache_entries Entries currently cached.\n\
         # TYPE bisched_cache_entries gauge\n\
         bisched_cache_entries {}\n",
        t.cache_len
    ));
    out.push_str(&format!(
        "# HELP bisched_uptime_seconds Seconds since the service started.\n\
         # TYPE bisched_uptime_seconds gauge\n\
         bisched_uptime_seconds {}\n",
        t.uptime_s
    ));
    labeled_counter_table(
        &mut out,
        "bisched_method_wins_total",
        "Freshly solved schedules credited to each engine.",
        &t.wins,
    );
    labeled_counter_table(
        &mut out,
        "bisched_method_cancelled_total",
        "Engine attempts a portfolio race cancelled.",
        &t.cancelled,
    );
    prometheus_histogram(
        &mut out,
        "bisched_request_latency_seconds",
        "End-to-end latency of ok solves, cache hits included.",
        &t.hist,
    );
    prometheus_histogram(
        &mut out,
        "bisched_queue_wait_seconds",
        "Time solve jobs waited in the bounded queues.",
        &t.queue_hist,
    );
    prometheus_histogram(
        &mut out,
        "bisched_solve_time_seconds",
        "Solve-phase wall time jobs experienced (whole micro-batch).",
        &t.solve_hist,
    );
    out.push_str(
        "# HELP bisched_shard_requests_total Requests handled by each shard's loop.\n\
         # TYPE bisched_shard_requests_total counter\n",
    );
    for (i, v) in shards.iter().enumerate() {
        out.push_str(&format!(
            "bisched_shard_requests_total{{shard=\"{i}\"}} {}\n",
            v.metrics.requests.load(Ordering::Relaxed)
        ));
    }
    out.push_str(
        "# HELP bisched_shard_cache_hit_ratio Cache hit ratio within each shard's LRU.\n\
         # TYPE bisched_shard_cache_hit_ratio gauge\n",
    );
    for (i, v) in shards.iter().enumerate() {
        out.push_str(&format!(
            "bisched_shard_cache_hit_ratio{{shard=\"{i}\"}} {}\n",
            hit_rate(v.cache.hits, v.cache.misses)
        ));
    }
    out
}

/// One `name{method="..."} n` line per engine, sorted by name for stable
/// scrape diffs.
fn labeled_counter_table(out: &mut String, name: &str, help: &str, table: &HashMap<Method, u64>) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
    let mut rows: Vec<(&'static str, u64)> = table.iter().map(|(m, &n)| (m.name(), n)).collect();
    rows.sort();
    for (method, n) in rows {
        out.push_str(&format!("{name}{{method=\"{method}\"}} {n}\n"));
    }
}

/// A [`LatencyHist`] as a Prometheus histogram: cumulative `le` buckets
/// in seconds (the power-of-two upper bounds), `_sum`, `_count`.
fn prometheus_histogram(out: &mut String, name: &str, help: &str, h: &LatencyHist) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (b, &n) in h.buckets().iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        let le = (1u64 << b) as f64 / 1e6;
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    out.push_str(&format!(
        "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
        h.count(),
        h.sum_us() as f64 / 1e6,
        h.count()
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = LatencyHist::default();
        for us in [10, 20, 30, 40, 50, 1000, 2000, 100_000, 100_000, 100_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_ms(0.5);
        // Median sample is 50 µs, in bucket [32, 64); the reported
        // geometric midpoint must stay inside that bucket.
        assert!((0.032..=0.064).contains(&p50), "p50 = {p50}");
        assert!((p50 - 0.0452).abs() < 1e-3, "p50 = {p50} not 2^5.5 µs");
        let p99 = h.quantile_ms(0.99);
        assert!(p99 >= 0.065, "p99 = {p99}");
        assert!(h.quantile_ms(1.0) >= p99);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        // No recorded samples: every quantile (including the extremes)
        // must be exactly 0.0, never the first bucket's upper bound.
        let h = LatencyHist::default();
        assert_eq!(h.count(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ms(q), 0.0, "q = {q}");
        }
    }

    #[test]
    fn zero_microsecond_samples_do_not_underflow_or_inflate() {
        // 0 µs (sub-microsecond solves truncated by the caller) lands in
        // bucket 0; the reported quantile is that bucket's 1 µs upper
        // bound at most — not a panic, not an underflowed index, not a
        // later bucket.
        let mut h = LatencyHist::default();
        for _ in 0..5 {
            h.record(0);
        }
        assert_eq!(h.count(), 5);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile_ms(q);
            assert!((0.0..=0.001).contains(&v), "q = {q}: {v}");
        }
        // Mixing in one large sample moves only the top quantiles: 1 s
        // lands in bucket [2^19, 2^20) µs, whose midpoint is ≈ 741 ms.
        h.record(1_000_000);
        assert!(h.quantile_ms(0.5) <= 0.001);
        assert!(h.quantile_ms(1.0) >= 500.0);
    }

    #[test]
    fn single_sample_quantiles_bracket_it() {
        let mut h = LatencyHist::default();
        h.record(700); // bucket [512, 1024) µs, midpoint 2^9.5 ≈ 724 µs
        for q in [0.0, 0.5, 1.0] {
            let v = h.quantile_ms(q);
            assert!((0.512..=1.024).contains(&v), "q = {q}: {v}");
            assert!((v - 0.7241).abs() < 1e-3, "q = {q}: {v} not the midpoint");
        }
    }

    #[test]
    fn midpoint_is_within_sqrt2_of_any_sample_in_the_bucket() {
        // The estimator's worst-case multiplicative error is √2 in either
        // direction — the property the upper-bound convention lacked (it
        // could overstate by 2×).
        for sample in [1u64, 3, 33, 700, 5_000, 1_000_000] {
            let mut h = LatencyHist::default();
            h.record(sample);
            let v_us = h.quantile_ms(0.5) * 1000.0;
            let ratio = v_us / sample as f64;
            assert!(
                ((std::f64::consts::SQRT_2).recip()..=std::f64::consts::SQRT_2).contains(&ratio),
                "sample {sample} µs reported as {v_us} µs (ratio {ratio})"
            );
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = LatencyHist::default();
        for us in [0, 0, 3, 9, 80, 700, 6_000, 50_000] {
            h.record(us);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            assert!(
                h.quantile_ms(w[0]) <= h.quantile_ms(w[1]),
                "quantile not monotone between {} and {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn snapshot_merges_cache_counters() {
        let m = Metrics::default();
        m.requests.store(5, Ordering::Relaxed);
        m.record_win(Method::Alg1);
        m.record_win(Method::Alg1);
        m.record_latency(500);
        let s = m.snapshot(
            crate::cache::CacheCounters {
                hits: 3,
                misses: 1,
                evictions: 0,
                insertions: 1,
            },
            1,
        );
        assert_eq!(s.requests, 5);
        assert_eq!(s.cache_hits, 3);
        assert!((s.hit_rate - 0.75).abs() < 1e-12);
        assert_eq!(s.method_wins, vec![("alg1".to_string(), 2)]);
        assert!(s.p50_ms > 0.0);
    }

    #[test]
    fn snapshot_splits_queue_and_solve_latency() {
        let m = Metrics::default();
        m.record_latency(1_000);
        m.record_queue_wait(10); // bucket [8, 16): midpoint ≈ 11 µs
        m.record_solve_time(900); // bucket [512, 1024): midpoint ≈ 724 µs
        let s = m.snapshot(crate::cache::CacheCounters::default(), 0);
        assert!(s.queue_p50_ms > 0.0 && s.queue_p50_ms < 0.016);
        assert!(s.solve_p50_ms > 0.5 && s.solve_p50_ms < 1.024);
        assert!(
            s.queue_p50_ms < s.solve_p50_ms,
            "the split must keep the components apart"
        );
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let m = Metrics::default();
        m.requests.store(7, Ordering::Relaxed);
        m.solved.store(5, Ordering::Relaxed);
        m.record_win(Method::Cp);
        m.record_cancelled(Method::BranchAndBound);
        m.record_latency(700);
        m.record_latency(90_000);
        m.record_queue_wait(40);
        m.record_solve_time(650);
        let text = m.prometheus(
            crate::cache::CacheCounters {
                hits: 2,
                misses: 3,
                evictions: 1,
                insertions: 3,
            },
            3,
        );
        assert!(text.contains("# TYPE bisched_requests_total counter"));
        assert!(text.contains("bisched_requests_total 7"));
        assert!(text.contains("bisched_cache_hits_total 2"));
        assert!(text.contains("bisched_cache_entries 3"));
        assert!(text.contains("bisched_method_wins_total{method=\"cp\"} 1"));
        assert!(text.contains("bisched_method_cancelled_total{method=\"branch-and-bound\"} 1"));
        // Histogram shape: cumulative buckets ending at +Inf == _count,
        // and _sum carries the exact microsecond total in seconds.
        assert!(text.contains("bisched_request_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("bisched_request_latency_seconds_count 2"));
        assert!(text.contains("bisched_request_latency_seconds_sum 0.0907"));
        assert!(text.contains("bisched_queue_wait_seconds_count 1"));
        assert!(text.contains("bisched_solve_time_seconds_count 1"));
        // The declared registry is live: every name in METRIC_NAMES is
        // emitted by a populated exposition, and every emitted series
        // name is declared (the registry and the code move together).
        for name in METRIC_NAMES {
            assert!(
                text.contains(name),
                "registered metric {name} never emitted"
            );
        }
        for line in text.lines() {
            let name = match line
                .strip_prefix("# HELP ")
                .or(line.strip_prefix("# TYPE "))
            {
                Some(rest) => rest.split_whitespace().next().unwrap_or(""),
                None => line.split(['{', ' ']).next().unwrap_or(""),
            };
            let base = name
                .strip_suffix("_bucket")
                .or(name.strip_suffix("_sum"))
                .or(name.strip_suffix("_count"))
                .unwrap_or(name);
            assert!(
                METRIC_NAMES.contains(&base),
                "emitted series {name} is not in METRIC_NAMES"
            );
        }
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(!name.is_empty());
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "unparseable value in {line:?}"
            );
        }
        // Cumulative bucket counts are monotone within each histogram.
        let mut last: Option<(String, u64)> = None;
        for line in text.lines() {
            if let Some((head, v)) = line.split_once("_bucket{le=\"") {
                if v.starts_with("+Inf") {
                    continue;
                }
                let n: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
                if let Some((prev_head, prev_n)) = &last {
                    if prev_head == head {
                        assert!(n >= *prev_n, "non-monotone buckets: {line}");
                    }
                }
                last = Some((head.to_string(), n));
            }
        }
    }

    #[test]
    fn sharded_aggregation_sums_counters_and_merges_histograms() {
        let (a, b) = (Metrics::default(), Metrics::default());
        a.requests.store(4, Ordering::Relaxed);
        b.requests.store(6, Ordering::Relaxed);
        a.solved.store(3, Ordering::Relaxed);
        b.solved.store(5, Ordering::Relaxed);
        a.record_win(Method::Cp);
        b.record_win(Method::Cp);
        b.record_win(Method::Bjw);
        a.record_latency(700);
        b.record_latency(700);
        b.record_latency(90_000);
        let views = [
            ShardView {
                metrics: &a,
                cache: crate::cache::CacheCounters {
                    hits: 2,
                    misses: 2,
                    evictions: 0,
                    insertions: 2,
                },
                cache_len: 2,
            },
            ShardView {
                metrics: &b,
                cache: crate::cache::CacheCounters {
                    hits: 3,
                    misses: 1,
                    evictions: 1,
                    insertions: 1,
                },
                cache_len: 1,
            },
        ];
        let s = snapshot_sharded(&views);
        assert_eq!(s.requests, 10);
        assert_eq!(s.solved, 8);
        assert_eq!(s.cache_hits, 5);
        assert_eq!(s.cache_len, 3);
        assert!((s.hit_rate - 5.0 / 8.0).abs() < 1e-12);
        assert_eq!(
            s.method_wins,
            vec![("bjw".to_string(), 1), ("cp".to_string(), 2)]
        );
        assert_eq!(s.shards.len(), 2);
        assert_eq!(s.shards[0].shard, 0);
        assert_eq!(s.shards[0].requests, 4);
        assert!((s.shards[0].hit_rate - 0.5).abs() < 1e-12);
        assert_eq!(s.shards[1].cache_hits, 3);
        assert!(s.shards[1].p99_ms > s.shards[0].p99_ms);

        let text = prometheus_sharded(&views);
        assert!(text.contains("bisched_requests_total 10"));
        assert!(text.contains("bisched_shard_requests_total{shard=\"0\"} 4"));
        assert!(text.contains("bisched_shard_requests_total{shard=\"1\"} 6"));
        assert!(text.contains("bisched_shard_cache_hit_ratio{shard=\"0\"} 0.5"));
        assert!(text.contains("bisched_shard_cache_hit_ratio{shard=\"1\"} 0.75"));
        // The merged request-latency histogram carries all three samples.
        assert!(text.contains("bisched_request_latency_seconds_count 3"));
    }

    #[test]
    fn cancelled_attempts_are_counted_apart_from_wins() {
        let m = Metrics::default();
        m.record_win(Method::Cp);
        m.record_cancelled(Method::BranchAndBound);
        m.record_cancelled(Method::BranchAndBound);
        m.record_cancelled(Method::Cp);
        let s = m.snapshot(crate::cache::CacheCounters::default(), 0);
        // A cancelled attempt is neither a win nor a loss; the win table
        // must be untouched by the cancellations.
        assert_eq!(s.method_wins, vec![("cp".to_string(), 1)]);
        assert_eq!(s.cancelled, 3);
        assert_eq!(
            s.method_cancelled,
            vec![("branch-and-bound".to_string(), 2), ("cp".to_string(), 1),]
        );
    }
}
