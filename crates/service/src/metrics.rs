//! Service metrics: counters, a log-bucketed latency histogram for
//! p50/p99, and per-engine win counts. Everything is cheap enough to
//! update on the request hot path.

use crate::protocol::StatsData;
use bisched_core::Method;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Power-of-two latency buckets over microseconds: bucket `b ≥ 1` holds
/// samples in `[2^(b-1), 2^b)` µs and bucket 0 holds only 0 µs samples
/// (sub-microsecond measurements truncated by the caller), so 64 buckets
/// span nanoseconds to hours. Quantiles report the bucket's upper bound —
/// within 2× of the true value, which is plenty for service dashboards.
///
/// Edge cases (regression-tested below): an empty histogram reports 0.0
/// for every quantile rather than a phantom first bucket, and 0 µs
/// samples neither underflow the bucket index (`64 - leading_zeros` is 0,
/// not `-1`) nor inflate quantiles past 1 µs.
#[derive(Debug)]
pub struct LatencyHist {
    buckets: [u64; 64],
    count: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            buckets: [0; 64],
            count: 0,
        }
    }
}

impl LatencyHist {
    /// Records one sample.
    pub fn record(&mut self, micros: u64) {
        let b = (64 - micros.leading_zeros()) as usize; // 0 µs -> bucket 0
        self.buckets[b.min(63)] += 1;
        self.count += 1;
    }

    /// Upper bound of the bucket containing quantile `q ∈ [0, 1]`, in
    /// milliseconds; 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return (1u64 << b) as f64 / 1000.0;
            }
        }
        f64::INFINITY
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Aggregate service metrics; one instance shared by every handler and
/// worker thread.
#[derive(Debug)]
pub struct Metrics {
    /// All requests received, any verb.
    pub requests: AtomicU64,
    /// Solve requests answered `ok`.
    pub solved: AtomicU64,
    /// Solve requests answered `error`.
    pub errors: AtomicU64,
    /// Solve requests rejected with `busy`.
    pub busy: AtomicU64,
    /// Micro-batches executed by the worker pool.
    pub batches: AtomicU64,
    /// Jobs carried by those batches.
    pub batched_jobs: AtomicU64,
    started: Instant,
    hist: Mutex<LatencyHist>,
    wins: Mutex<HashMap<Method, u64>>,
    /// Race-cancelled engine attempts, per method. Kept apart from the
    /// win counters: a cancelled attempt is neither a win nor a loss
    /// (the engine was stopped because a racing engine already proved
    /// optimality), so dispatch-tuning data must not mix the two.
    cancelled: Mutex<HashMap<Method, u64>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            solved: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
            started: Instant::now(),
            hist: Mutex::new(LatencyHist::default()),
            wins: Mutex::new(HashMap::new()),
            cancelled: Mutex::new(HashMap::new()),
        }
    }
}

impl Metrics {
    /// Records one served solve's latency.
    pub fn record_latency(&self, micros: u64) {
        self.hist.lock().unwrap().record(micros);
    }

    /// Credits `method` with a win (it produced a freshly solved
    /// schedule).
    pub fn record_win(&self, method: Method) {
        *self.wins.lock().unwrap().entry(method).or_insert(0) += 1;
    }

    /// Records that a portfolio race cancelled one of `method`'s
    /// attempts (counted separately from wins and losses).
    pub fn record_cancelled(&self, method: Method) {
        *self.cancelled.lock().unwrap().entry(method).or_insert(0) += 1;
    }

    /// Snapshot of everything, merged with the cache's counters, as the
    /// `stats` verb's payload.
    pub fn snapshot(&self, cache: crate::cache::CacheCounters, cache_len: usize) -> StatsData {
        let hist = self.hist.lock().unwrap();
        let mut method_wins: Vec<(String, u64)> = self
            .wins
            .lock()
            .unwrap()
            .iter()
            .map(|(m, &n)| (m.name().to_string(), n))
            .collect();
        method_wins.sort();
        let mut method_cancelled: Vec<(String, u64)> = self
            .cancelled
            .lock()
            .unwrap()
            .iter()
            .map(|(m, &n)| (m.name().to_string(), n))
            .collect();
        method_cancelled.sort();
        let lookups = cache.hits + cache.misses;
        StatsData {
            requests: self.requests.load(Ordering::Relaxed),
            solved: self.solved.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_len: cache_len as u64,
            hit_rate: if lookups == 0 {
                0.0
            } else {
                cache.hits as f64 / lookups as f64
            },
            batches: self.batches.load(Ordering::Relaxed),
            batched_jobs: self.batched_jobs.load(Ordering::Relaxed),
            p50_ms: hist.quantile_ms(0.50),
            p99_ms: hist.quantile_ms(0.99),
            cancelled: method_cancelled.iter().map(|(_, n)| n).sum(),
            method_wins,
            method_cancelled,
            uptime_s: self.started.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = LatencyHist::default();
        for us in [10, 20, 30, 40, 50, 1000, 2000, 100_000, 100_000, 100_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_ms(0.5);
        // Median sample is 50 µs; its bucket's upper bound is 64 µs.
        assert!((0.05..=0.128).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_ms(0.99);
        assert!(p99 >= 0.1, "p99 = {p99}");
        assert!(h.quantile_ms(1.0) >= p99);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        // No recorded samples: every quantile (including the extremes)
        // must be exactly 0.0, never the first bucket's upper bound.
        let h = LatencyHist::default();
        assert_eq!(h.count(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ms(q), 0.0, "q = {q}");
        }
    }

    #[test]
    fn zero_microsecond_samples_do_not_underflow_or_inflate() {
        // 0 µs (sub-microsecond solves truncated by the caller) lands in
        // bucket 0; the reported quantile is that bucket's 1 µs upper
        // bound at most — not a panic, not an underflowed index, not a
        // later bucket.
        let mut h = LatencyHist::default();
        for _ in 0..5 {
            h.record(0);
        }
        assert_eq!(h.count(), 5);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile_ms(q);
            assert!((0.0..=0.001).contains(&v), "q = {q}: {v}");
        }
        // Mixing in one large sample moves only the top quantiles.
        h.record(1_000_000);
        assert!(h.quantile_ms(0.5) <= 0.001);
        assert!(h.quantile_ms(1.0) >= 1000.0);
    }

    #[test]
    fn single_sample_quantiles_bracket_it() {
        let mut h = LatencyHist::default();
        h.record(700); // bucket upper bound: 1024 µs
        for q in [0.0, 0.5, 1.0] {
            let v = h.quantile_ms(q);
            assert!((0.7..=1.024).contains(&v), "q = {q}: {v}");
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = LatencyHist::default();
        for us in [0, 0, 3, 9, 80, 700, 6_000, 50_000] {
            h.record(us);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            assert!(
                h.quantile_ms(w[0]) <= h.quantile_ms(w[1]),
                "quantile not monotone between {} and {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn snapshot_merges_cache_counters() {
        let m = Metrics::default();
        m.requests.store(5, Ordering::Relaxed);
        m.record_win(Method::Alg1);
        m.record_win(Method::Alg1);
        m.record_latency(500);
        let s = m.snapshot(
            crate::cache::CacheCounters {
                hits: 3,
                misses: 1,
                evictions: 0,
                insertions: 1,
            },
            1,
        );
        assert_eq!(s.requests, 5);
        assert_eq!(s.cache_hits, 3);
        assert!((s.hit_rate - 0.75).abs() < 1e-12);
        assert_eq!(s.method_wins, vec![("alg1".to_string(), 2)]);
        assert!(s.p50_ms > 0.0);
    }

    #[test]
    fn cancelled_attempts_are_counted_apart_from_wins() {
        let m = Metrics::default();
        m.record_win(Method::Cp);
        m.record_cancelled(Method::BranchAndBound);
        m.record_cancelled(Method::BranchAndBound);
        m.record_cancelled(Method::Cp);
        let s = m.snapshot(crate::cache::CacheCounters::default(), 0);
        // A cancelled attempt is neither a win nor a loss; the win table
        // must be untouched by the cancellations.
        assert_eq!(s.method_wins, vec![("cp".to_string(), 1)]);
        assert_eq!(s.cancelled, 3);
        assert_eq!(
            s.method_cancelled,
            vec![("branch-and-bound".to_string(), 2), ("cp".to_string(), 1),]
        );
    }
}
