//! The JSON-lines wire protocol: one request object per line in, one
//! response object per line out. See `PROTOCOL.md` for the full schema
//! and examples.

use crate::exemplar::TraceData;
use bisched_core::{EngineOutcome, EngineRun, Method, MethodPolicy, SolveError, SolverConfig};
use bisched_model::InstanceData;
use serde::{Deserialize, Serialize};

/// A client request. `verb` selects the action; the remaining fields are
/// verb-specific and optional on the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Request {
    /// `"solve"`, `"stats"`, `"metrics"`, `"trace"`, `"ping"`, or
    /// `"shutdown"`.
    pub verb: String,
    /// Client correlation id, echoed verbatim in the response.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub id: Option<u64>,
    /// The instance to solve (`solve` only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub instance: Option<InstanceData>,
    /// Per-request FPTAS accuracy override.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub eps: Option<f64>,
    /// Per-request forced method (engine name, e.g. `"fptas"`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub method: Option<String>,
    /// Per-request portfolio (engine names; wins over `method`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub portfolio: Option<Vec<String>>,
    /// Per-request CP decision-node budget override (`"cp"` method and
    /// portfolio members).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cp_node_limit: Option<u64>,
    /// Per-request wall-clock budget, in milliseconds, for a whole
    /// portfolio race.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub race_deadline_ms: Option<u64>,
    /// Skip the cache lookup (the result is still stored).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub no_cache: Option<bool>,
    /// Restrict a `trace` request to one shard's exemplar ring (the
    /// merged all-shard view is returned when absent).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub shard: Option<u64>,
    /// Frame encoding requested by an `upgrade` verb (`"binary"` is the
    /// only non-default; see `PROTOCOL.md` §v2).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub frame: Option<String>,
    /// Benchmark aid (`solve` only): hold the request on its shard loop
    /// for this many microseconds before answering, emulating a heavier
    /// per-request cost. Like `no_cache`, a load-generation knob — never
    /// set by production clients.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stall_us: Option<u64>,
}

impl Request {
    /// A bare request with just a verb.
    pub fn verb(verb: &str) -> Self {
        Request {
            verb: verb.to_string(),
            id: None,
            instance: None,
            eps: None,
            method: None,
            portfolio: None,
            cp_node_limit: None,
            race_deadline_ms: None,
            no_cache: None,
            shard: None,
            frame: None,
            stall_us: None,
        }
    }

    /// A solve request for `instance`.
    pub fn solve(instance: InstanceData) -> Self {
        let mut r = Request::verb("solve");
        r.instance = Some(instance);
        r
    }

    /// Resolves the per-request overrides against the server's base
    /// configuration.
    pub fn solver_config(&self, base: &SolverConfig) -> Result<SolverConfig, String> {
        let mut config = base.clone();
        if let Some(eps) = self.eps {
            config = config.eps(eps);
        }
        if let Some(nodes) = self.cp_node_limit {
            config = config.cp_node_limit(nodes);
        }
        if let Some(ms) = self.race_deadline_ms {
            config = config.race_deadline(Some(std::time::Duration::from_millis(ms)));
        }
        if let Some(names) = &self.portfolio {
            let methods: Vec<Method> = names
                .iter()
                .map(|n| n.parse())
                .collect::<Result<_, String>>()?;
            config = config.portfolio(methods);
        } else if let Some(name) = &self.method {
            if name == "auto" {
                // Explicitly requested Auto dispatch, whatever policy the
                // server was started with.
                config = config.policy(MethodPolicy::Auto);
            } else {
                config = config.method(name.parse()?);
            }
        }
        // Validate eagerly so the worker never sees a bad config.
        config.clone().build().map_err(|e| e.to_string())?;
        Ok(config)
    }
}

/// A server response. `status` is `"ok"`, `"busy"`, or `"error"`; solve
/// results carry the schedule and provenance, `stats` responses carry a
/// [`StatsData`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Response {
    /// `"ok"`, `"busy"`, or `"error"`.
    pub status: String,
    /// Echo of the request's correlation id.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub id: Option<u64>,
    /// Winning engine name (solve).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub method: Option<String>,
    /// Human-readable guarantee of the returned schedule (solve).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub guarantee: Option<String>,
    /// Makespan numerator (solve; exact rational).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub makespan_num: Option<u64>,
    /// Makespan denominator (solve).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub makespan_den: Option<u64>,
    /// Graph-blind lower bound numerator (solve).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub lower_bound_num: Option<u64>,
    /// Graph-blind lower bound denominator (solve).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub lower_bound_den: Option<u64>,
    /// `assignment[j]` = machine of job `j`, in the **request's** job
    /// numbering (solve).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub assignment: Option<Vec<u32>>,
    /// Whether the result came from the canonicalization cache (solve).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cached: Option<bool>,
    /// Server-side wall time for this request, milliseconds (solve).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub time_ms: Option<f64>,
    /// Every engine attempt behind this result with its runtime
    /// counters (solve; absent on cache hits — the counters would
    /// describe the *original* solve, not this request).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub attempts: Option<Vec<AttemptData>>,
    /// Error detail (`status != "ok"`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
    /// Metrics snapshot (`stats`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stats: Option<StatsData>,
    /// Prometheus text exposition (`metrics`): the same counters as
    /// `stats` plus full latency histograms, ready for a scrape
    /// endpoint to relay verbatim.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<String>,
    /// Slow-request exemplars (`trace`): the K worst requests of the
    /// current and previous windows, each with its full span tree and
    /// engine counters.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub exemplars: Option<TraceData>,
}

impl Response {
    fn bare(status: &str, id: Option<u64>) -> Self {
        Response {
            status: status.to_string(),
            id,
            method: None,
            guarantee: None,
            makespan_num: None,
            makespan_den: None,
            lower_bound_num: None,
            lower_bound_den: None,
            assignment: None,
            cached: None,
            time_ms: None,
            attempts: None,
            error: None,
            stats: None,
            metrics: None,
            exemplars: None,
        }
    }

    /// A plain `ok` (ping, shutdown acks).
    pub fn ok(id: Option<u64>) -> Self {
        Response::bare("ok", id)
    }

    /// A typed backpressure rejection: the bounded queue is full.
    pub fn busy(id: Option<u64>) -> Self {
        let mut r = Response::bare("busy", id);
        r.error = Some("request queue is full, retry later".into());
        r
    }

    /// An error response.
    pub fn error(id: Option<u64>, message: impl Into<String>) -> Self {
        let mut r = Response::bare("error", id);
        r.error = Some(message.into());
        r
    }

    /// An error response from a typed [`SolveError`].
    pub fn solve_error(id: Option<u64>, e: &SolveError) -> Self {
        Response::error(id, e.to_string())
    }
}

/// One engine attempt behind a solve response — the wire form of
/// [`EngineRun`], counters included (previously dropped at the protocol
/// boundary).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AttemptData {
    /// Engine name (`"branch-and-bound"`, `"cp"`, `"fptas"`, ...).
    pub method: String,
    /// `"solved"`, `"not_applicable"`, or `"failed"`.
    pub outcome: String,
    /// Why, for non-solved outcomes.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub reason: Option<String>,
    /// Whether a portfolio race cancelled this attempt.
    pub cancelled: bool,
    /// Wall time inside this engine alone, milliseconds.
    pub wall_ms: f64,
    /// The engine's runtime counters (`EngineStats` pairs, in the
    /// engine's own emission order; empty when it reports none).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub stats: Vec<(String, u64)>,
}

impl AttemptData {
    /// Converts one in-process engine run to its wire form.
    pub fn from_run(run: &EngineRun) -> AttemptData {
        let (outcome, reason) = match &run.outcome {
            EngineOutcome::Solved { .. } => ("solved", None),
            EngineOutcome::NotApplicable { reason } => ("not_applicable", Some(reason.clone())),
            EngineOutcome::Failed { reason } => ("failed", Some(reason.clone())),
        };
        AttemptData {
            method: run.method.name().to_string(),
            outcome: outcome.to_string(),
            reason,
            cancelled: run.cancelled,
            wall_ms: run.wall_time.as_secs_f64() * 1e3,
            stats: run.stats.iter().map(|(n, v)| (n.to_string(), v)).collect(),
        }
    }
}

/// The `stats` verb's payload: the service's aggregate counters since
/// start.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StatsData {
    /// Requests received (all verbs).
    pub requests: u64,
    /// Solve requests answered `ok`.
    pub solved: u64,
    /// Solve requests answered `error`.
    pub errors: u64,
    /// Solve requests rejected `busy` (backpressure).
    pub busy: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Entries evicted from the cache.
    pub cache_evictions: u64,
    /// Entries currently cached.
    pub cache_len: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when empty.
    pub hit_rate: f64,
    /// Micro-batches the worker pool executed.
    pub batches: u64,
    /// Solve jobs that went through those batches.
    pub batched_jobs: u64,
    /// Median request latency over all `ok` solves, cache hits included,
    /// in milliseconds (log-bucketed; geometric-midpoint estimate).
    pub p50_ms: f64,
    /// 99th-percentile request latency (same population as
    /// [`p50_ms`](Self::p50_ms)), milliseconds.
    pub p99_ms: f64,
    /// Median time solve jobs waited in the bounded queue before a
    /// worker drained them, milliseconds (cache hits never enqueue).
    #[serde(default)]
    pub queue_p50_ms: f64,
    /// 99th-percentile queue wait, milliseconds.
    #[serde(default)]
    pub queue_p99_ms: f64,
    /// Median solve-phase wall time jobs experienced (their whole
    /// micro-batch's `solve_batch` duration), milliseconds.
    #[serde(default)]
    pub solve_p50_ms: f64,
    /// 99th-percentile solve-phase wall time, milliseconds.
    #[serde(default)]
    pub solve_p99_ms: f64,
    /// Engine attempts a portfolio race cancelled (neither wins nor
    /// losses), total across methods.
    #[serde(default)]
    pub cancelled: u64,
    /// Per-engine win counts as `[name, wins]` pairs, sorted by name.
    pub method_wins: Vec<(String, u64)>,
    /// Per-engine race-cancelled attempt counts as `[name, count]`
    /// pairs, sorted by name.
    #[serde(default)]
    pub method_cancelled: Vec<(String, u64)>,
    /// Seconds since the service started.
    pub uptime_s: f64,
    /// Per-shard breakdown (empty on pre-sharding servers; the scalar
    /// fields above are always the cross-shard totals).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub shards: Vec<ShardStats>,
}

/// One shard's slice of the [`StatsData`] totals: the counters that vary
/// meaningfully per shard under fingerprint routing.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index (`fingerprint % shard_count`).
    pub shard: u64,
    /// Requests this shard's loop handled (all verbs).
    pub requests: u64,
    /// Solve requests answered `ok` on this shard.
    pub solved: u64,
    /// Solve requests answered `error` on this shard.
    pub errors: u64,
    /// Solve requests this shard's bounded queue bounced.
    pub busy: u64,
    /// Cache hits in this shard's LRU.
    pub cache_hits: u64,
    /// Cache misses in this shard's LRU.
    pub cache_misses: u64,
    /// Entries currently in this shard's LRU.
    pub cache_len: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when empty.
    pub hit_rate: f64,
    /// Median request latency on this shard, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency on this shard, milliseconds.
    pub p99_ms: f64,
}
