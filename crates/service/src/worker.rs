//! The solver worker pools: each shard owns N threads over its own MPSC
//! queue, each draining up to `batch_max` queued jobs per wake-up into a
//! single [`Solver::solve_batch`] call (the micro-batching collector).
//! Workers never touch another shard's state, so the solve path is free
//! of cross-shard locks.
//!
//! Workers solve **canonical** instances and publish the reports into
//! their shard's cache before replying. There is no single-flight
//! deduplication: k *concurrent* identical misses may each be solved
//! before the first insert lands; every submission after that is a cache
//! hit. When the server drops a shard queue's sender during shutdown,
//! each of that shard's workers finishes draining whatever was already
//! accepted and exits — no accepted job is dropped.

use crate::server::Shared;
use bisched_core::{SolveError, SolveReport, Solver, SolverConfig};
use bisched_model::Instance;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One queued solve: the canonicalized request plus its reply channel.
/// The handler keeps the label permutations; the worker only needs the
/// canonical instance and its cache key.
pub(crate) struct Job {
    /// The server-minted request id, for span/log attribution.
    pub request_id: u64,
    /// The instance in canonical form.
    pub instance: Instance,
    /// The raw canonical fingerprint (the shard routing key), recorded
    /// with the cache entry so snapshots can re-bucket it under a
    /// different shard count.
    pub route: u128,
    /// Cache key of the canonical form (fingerprint ⊕ config bytes).
    pub fingerprint: u128,
    /// Canonical certificate bytes (stored with the cache entry).
    pub certificate: Vec<u8>,
    /// Fully resolved solver configuration for this request.
    pub config: SolverConfig,
    /// Oneshot reply channel back to the connection handler.
    pub reply: Sender<JobReply>,
    /// When the handler enqueued the job — a worker draining it records
    /// the elapsed time as the job's queue-wait component.
    pub enqueued: std::time::Instant,
}

/// What a worker sends back (in **canonical** labeling; the handler maps
/// it through its [`Canonical`] perms).
pub(crate) enum JobReply {
    /// The canonical instance's solve report, with the job's measured
    /// phase timings (the handler folds them into its slow-request
    /// exemplar span tree).
    Solved {
        /// The report, shared with the cache.
        report: Arc<SolveReport>,
        /// Time the job waited in the bounded queue, microseconds.
        queue_us: u64,
        /// Wall time of the job's whole micro-batch `solve_batch` call,
        /// microseconds (every job in a batch waits for all of it).
        solve_us: u64,
    },
    /// The solve failed.
    Failed(SolveError),
}

/// Spawns `n` workers over `rx`, all serving shard `shard_idx`.
pub(crate) fn spawn_shard_workers(
    n: usize,
    batch_max: usize,
    rx: Receiver<Job>,
    shared: Arc<Shared>,
    shard_idx: usize,
) -> Vec<JoinHandle<()>> {
    let rx = Arc::new(Mutex::new(rx));
    (0..n)
        .map(|i| {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("bisched-worker-{shard_idx}-{i}"))
                .spawn(move || worker_loop(&rx, &shared, shard_idx, batch_max))
                .expect("spawn worker thread")
        })
        .collect()
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, shared: &Shared, shard_idx: usize, batch_max: usize) {
    loop {
        let mut batch = Vec::new();
        {
            // Hold the receiver only while collecting; solving happens
            // unlocked so the shard's other workers keep draining.
            let guard = rx.lock().unwrap();
            match guard.recv() {
                Ok(job) => batch.push(job),
                Err(_) => return, // queue closed and drained: shutdown
            }
            while batch.len() < batch_max.max(1) {
                match guard.try_recv() {
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            }
        }
        process_batch(batch, shared, shard_idx);
    }
}

/// Solves one collected batch: jobs are grouped by configuration (each
/// group shares one `Solver` and one `solve_batch` call), results are
/// cached in the owning shard and replied per job.
fn process_batch(batch: Vec<Job>, shared: &Shared, shard_idx: usize) {
    let shard = &shared.shards[shard_idx];
    let _batch_span = bisched_obs::span_arg("batch", "service", "jobs", batch.len() as u64);
    shard.metrics.batches.fetch_add(1, Ordering::Relaxed);
    shard
        .metrics
        .batched_jobs
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    // Queue wait ends the moment the batch is collected; the solve phase
    // is measured separately below. The per-job wait is kept (via
    // `drained_at`) so the reply can carry it back to the handler.
    let drained_at = std::time::Instant::now();
    for job in &batch {
        shard
            .metrics
            .record_queue_wait(drained_at.duration_since(job.enqueued).as_micros() as u64);
    }
    let mut groups: Vec<(SolverConfig, Vec<Job>)> = Vec::new();
    for job in batch {
        match groups.iter_mut().find(|(c, _)| *c == job.config) {
            Some((_, jobs)) => jobs.push(job),
            None => {
                let config = job.config.clone();
                groups.push((config, vec![job]));
            }
        }
    }
    for (config, jobs) in groups {
        let solver: Solver = match config.build() {
            Ok(s) => s,
            Err(e) => {
                for job in jobs {
                    let _ = job.reply.send(JobReply::Failed(e.clone()));
                }
                continue;
            }
        };
        let instances: Vec<Instance> = jobs.iter().map(|j| j.instance.clone()).collect();
        let solve_t0 = std::time::Instant::now();
        let reports = solver.solve_batch(&instances);
        // Every job in the group waited for the whole `solve_batch` call
        // before its reply could be sent, so the group's wall time *is*
        // each job's solve-phase latency.
        let solve_us = solve_t0.elapsed().as_micros() as u64;
        for (job, result) in jobs.into_iter().zip(reports) {
            // Log lines emitted while settling this job carry its rid.
            let _rid = bisched_obs::log::request_scope(job.request_id);
            shard.metrics.record_solve_time(solve_us);
            let queue_us = drained_at.duration_since(job.enqueued).as_micros() as u64;
            match result {
                Ok(report) => {
                    let report = Arc::new(report);
                    shard.metrics.record_win(report.method);
                    for run in &report.attempts {
                        if run.cancelled {
                            shard.metrics.record_cancelled(run.method);
                        }
                    }
                    {
                        let mut cache = shard.cache.lock().unwrap();
                        let evictions_before = cache.counters().evictions;
                        cache.insert_routed(
                            job.route,
                            job.fingerprint,
                            job.certificate,
                            Arc::clone(&report),
                        );
                        if cache.counters().evictions > evictions_before {
                            bisched_obs::instant("cache_evict", "service", "", 0);
                        }
                    }
                    bisched_obs::instant("job_done", "service", "request_id", job.request_id);
                    let _ = job.reply.send(JobReply::Solved {
                        report,
                        queue_us,
                        solve_us,
                    });
                }
                Err(e) => {
                    let _ = job.reply.send(JobReply::Failed(e));
                }
            }
        }
    }
}
