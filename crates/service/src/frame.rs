//! Compact binary framing for the v2 wire protocol.
//!
//! After a client negotiates `{"verb": "upgrade", "frame": "binary"}` on
//! a JSON-lines connection (see `PROTOCOL.md`), both directions switch to
//! length-prefixed frames: a little-endian `u32` payload length followed
//! by that many bytes of the tagged binary encoding below. The payload
//! encodes exactly one JSON value (a request or a response), so the two
//! framings carry identical information — binary skips the text
//! parse/escape cost and the newline-delimiter restriction.
//!
//! Encoding (one tag byte, then tag-specific data; all integers
//! little-endian):
//!
//! | tag | value |
//! |-----|-------|
//! | `0` | `null` |
//! | `1` | `false` |
//! | `2` | `true` |
//! | `3` | non-negative integer: `u64` |
//! | `4` | negative integer: `i64` |
//! | `5` | float: `f64` bits |
//! | `6` | string: `u32` byte length + UTF-8 bytes |
//! | `7` | array: `u32` count + that many encoded values |
//! | `8` | object: `u32` count + that many (string, value) pairs |

use serde_json::{Map, Number, Value};

/// Maximum accepted frame payload (16 MiB): large enough for any real
/// instance or response, small enough that a corrupt length prefix
/// cannot make the server allocate unboundedly.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Encodes one value into the tagged binary form, appending to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(false) => out.push(1),
        Value::Bool(true) => out.push(2),
        Value::Number(n) => match (n.as_u64(), n.as_i64()) {
            (Some(u), _) => {
                out.push(3);
                out.extend_from_slice(&u.to_le_bytes());
            }
            (None, Some(i)) => {
                out.push(4);
                out.extend_from_slice(&i.to_le_bytes());
            }
            (None, None) => {
                out.push(5);
                out.extend_from_slice(&n.as_f64().to_le_bytes());
            }
        },
        Value::String(s) => {
            out.push(6);
            encode_str(s, out);
        }
        Value::Array(items) => {
            out.push(7);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(map) => {
            out.push(8);
            out.extend_from_slice(&(map.len() as u32).to_le_bytes());
            for (k, item) in map.iter() {
                encode_str(k, out);
                encode_value(item, out);
            }
        }
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Decodes one value from `buf`, which must contain exactly one encoded
/// value (the frame layer has already stripped the length prefix).
pub fn decode_value(buf: &[u8]) -> Result<Value, String> {
    let mut pos = 0;
    let v = decode(buf, &mut pos)?;
    if pos != buf.len() {
        return Err(format!("trailing bytes in frame at offset {pos}"));
    }
    Ok(v)
}

fn decode(buf: &[u8], pos: &mut usize) -> Result<Value, String> {
    let tag = *buf.get(*pos).ok_or("truncated frame: missing tag")?;
    *pos += 1;
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Bool(false),
        2 => Value::Bool(true),
        3 => Value::Number(Number::from_u64(u64::from_le_bytes(take(buf, pos)?))),
        4 => Value::Number(Number::from_i64(i64::from_le_bytes(take(buf, pos)?))),
        5 => Value::Number(Number::from_f64(f64::from_le_bytes(take(buf, pos)?))),
        6 => Value::String(decode_str(buf, pos)?),
        7 => {
            let count = decode_len(buf, pos)?;
            let mut items = Vec::new();
            for _ in 0..count {
                items.push(decode(buf, pos)?);
            }
            Value::Array(items)
        }
        8 => {
            let count = decode_len(buf, pos)?;
            let mut map = Map::new();
            for _ in 0..count {
                let k = decode_str(buf, pos)?;
                let v = decode(buf, pos)?;
                map.insert(k, v);
            }
            Value::Object(map)
        }
        other => return Err(format!("unknown frame tag {other}")),
    })
}

fn take<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N], String> {
    let bytes = buf
        .get(*pos..*pos + N)
        .ok_or("truncated frame: short fixed field")?;
    *pos += N;
    Ok(bytes.try_into().expect("slice length checked above"))
}

fn decode_len(buf: &[u8], pos: &mut usize) -> Result<usize, String> {
    let n = u32::from_le_bytes(take(buf, pos)?);
    if n > MAX_FRAME_LEN {
        return Err(format!("frame element count/length {n} over limit"));
    }
    Ok(n as usize)
}

fn decode_str(buf: &[u8], pos: &mut usize) -> Result<String, String> {
    let len = decode_len(buf, pos)?;
    let bytes = buf
        .get(*pos..*pos + len)
        .ok_or("truncated frame: short string")?;
    *pos += len;
    String::from_utf8(bytes.to_vec()).map_err(|_| "frame string is not UTF-8".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let mut buf = Vec::new();
        encode_value(v, &mut buf);
        decode_value(&buf).expect("round trip")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Number(Number::from_u64(u64::MAX)),
            Value::Number(Number::from_i64(-42)),
            Value::Number(Number::from_f64(1.5)),
            Value::String("héllo\nworld".into()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let mut inner = Map::new();
        inner.insert("verb".to_string(), Value::String("solve".into()));
        inner.insert(
            "edges".to_string(),
            Value::Array(vec![
                Value::Array(vec![
                    Value::Number(Number::from_u64(0)),
                    Value::Number(Number::from_u64(1)),
                ]),
                Value::Array(vec![]),
            ]),
        );
        inner.insert("eps".to_string(), Value::Number(Number::from_f64(0.25)));
        let v = Value::Object(inner);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn binary_is_smaller_than_json_for_numeric_payloads() {
        // The whole point of the frame: instance submissions are mostly
        // numbers, where tagged binary beats decimal text + delimiters.
        let big = Value::Array(
            (0..512u64)
                .map(|i| Value::Number(Number::from_u64(i * 1_000_003)))
                .collect(),
        );
        let mut bin = Vec::new();
        encode_value(&big, &mut bin);
        let json = serde_json::to_string(&big).unwrap();
        assert!(bin.len() < json.len());
    }

    #[test]
    fn truncated_and_garbage_frames_are_rejected() {
        let mut buf = Vec::new();
        encode_value(&Value::String("abcdef".into()), &mut buf);
        assert!(decode_value(&buf[..buf.len() - 1]).is_err());
        assert!(decode_value(&[9, 9, 9]).is_err());
        assert!(decode_value(&[]).is_err());
        // Trailing bytes after a complete value are an error too.
        buf.push(0);
        assert!(decode_value(&buf).is_err());
    }
}
