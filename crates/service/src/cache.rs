//! Bounded LRU memo cache keyed by canonical fingerprints.
//!
//! The cache stores [`SolveReport`]s for **canonical** instances (see
//! [`bisched_model::canonical`]), so any job/machine relabeling of a
//! previously solved instance hits. Lookups compare the full canonical
//! certificate, not just the 128-bit fingerprint — a hash collision
//! degrades to a miss, never to a wrong schedule.
//!
//! Implementation: a slab of entries threaded on an intrusive doubly
//! linked list (most-recent at the head) plus a `HashMap` from
//! fingerprint to slab slot. `get`, `insert`, and eviction are all
//! `O(1)` (amortized).

use bisched_core::SolveReport;
use std::collections::HashMap;
use std::sync::Arc;

const NIL: usize = usize::MAX;

struct Slot {
    key: u128,
    /// The raw canonical instance fingerprint (the shard routing key).
    /// Distinct from `key`, which mixes in the solver-config bytes, and
    /// not recoverable from it — stored so snapshots can re-bucket
    /// entries when a restarted daemon runs a different shard count.
    route: u128,
    certificate: Vec<u8>,
    value: Arc<SolveReport>,
    prev: usize,
    next: usize,
}

/// Counters the cache keeps about itself (snapshot via
/// [`LruCache::counters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that returned a report.
    pub hits: u64,
    /// Lookups that found nothing (or a certificate mismatch).
    pub misses: u64,
    /// Entries displaced by capacity.
    pub evictions: u64,
    /// Successful `insert`s.
    pub insertions: u64,
}

/// A bounded least-recently-used map from canonical fingerprint to solve
/// report.
pub struct LruCache {
    cap: usize,
    map: HashMap<u128, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    counters: CacheCounters,
}

impl LruCache {
    /// An empty cache holding at most `cap` reports (`cap == 0` disables
    /// caching: every lookup misses, inserts are dropped).
    pub fn new(cap: usize) -> Self {
        LruCache {
            cap,
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            counters: CacheCounters::default(),
        }
    }

    /// Number of cached reports.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The cache's own counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Looks up `key`, verifying the stored certificate matches; a hit
    /// refreshes the entry's recency.
    pub fn get(&mut self, key: u128, certificate: &[u8]) -> Option<Arc<SolveReport>> {
        match self.map.get(&key).copied() {
            Some(slot) if self.slots[slot].certificate == certificate => {
                self.unlink(slot);
                self.push_front(slot);
                self.counters.hits += 1;
                Some(Arc::clone(&self.slots[slot].value))
            }
            _ => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) the report for `key`, evicting the least
    /// recently used entry when at capacity. The routing fingerprint is
    /// recorded as the key itself — use [`LruCache::insert_routed`] when
    /// the two differ (the service mixes config bytes into `key`).
    pub fn insert(&mut self, key: u128, certificate: Vec<u8>, value: Arc<SolveReport>) {
        self.insert_routed(key, key, certificate, value);
    }

    /// Inserts (or replaces) the report for `key`, remembering `route`
    /// (the raw canonical instance fingerprint) so snapshots can
    /// re-bucket the entry under a different shard count.
    pub fn insert_routed(
        &mut self,
        route: u128,
        key: u128,
        certificate: Vec<u8>,
        value: Arc<SolveReport>,
    ) {
        if self.cap == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            // Replace in place (covers certificate-collision overwrites).
            self.slots[slot].route = route;
            self.slots[slot].certificate = certificate;
            self.slots[slot].value = value;
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        if self.map.len() == self.cap {
            let lru = self.tail;
            self.unlink(lru);
            self.map.remove(&self.slots[lru].key);
            self.free.push(lru);
            self.counters.evictions += 1;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Slot {
                    key,
                    route,
                    certificate,
                    value,
                    prev: NIL,
                    next: NIL,
                };
                s
            }
            None => {
                self.slots.push(Slot {
                    key,
                    route,
                    certificate,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        self.counters.insertions += 1;
    }

    /// Visits every live entry most-recent first as `(route, key,
    /// certificate, report)` — the snapshot writer's iteration order, so
    /// a reloaded cache replays inserts oldest-first and preserves
    /// recency.
    pub fn for_each_entry(&self, mut f: impl FnMut(u128, u128, &[u8], &Arc<SolveReport>)) {
        let mut at = self.head;
        while at != NIL {
            let s = &self.slots[at];
            f(s.route, s.key, &s.certificate, &s.value);
            at = s.next;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_core::Solver;
    use bisched_graph::Graph;
    use bisched_model::Instance;

    fn report(p: u64) -> Arc<SolveReport> {
        let inst = Instance::identical(2, vec![p, 1], Graph::empty(2)).unwrap();
        Arc::new(Solver::new().solve(&inst).unwrap())
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2);
        c.insert(1, vec![1], report(1));
        c.insert(2, vec![2], report(2));
        assert!(c.get(1, &[1]).is_some()); // 1 now most recent
        c.insert(3, vec![3], report(3)); // evicts 2
        assert!(c.get(2, &[2]).is_none());
        assert!(c.get(1, &[1]).is_some());
        assert!(c.get(3, &[3]).is_some());
        assert_eq!(c.len(), 2);
        assert_eq!(c.counters().evictions, 1);
    }

    #[test]
    fn certificate_mismatch_is_a_miss() {
        let mut c = LruCache::new(4);
        c.insert(7, vec![1, 2, 3], report(1));
        assert!(c.get(7, &[9, 9]).is_none());
        assert!(c.get(7, &[1, 2, 3]).is_some());
        let n = c.counters();
        assert_eq!((n.hits, n.misses), (1, 1));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert(1, vec![1], report(1));
        assert!(c.get(1, &[1]).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn replace_in_place_keeps_len() {
        let mut c = LruCache::new(2);
        c.insert(1, vec![1], report(1));
        c.insert(1, vec![1, 1], report(2));
        assert_eq!(c.len(), 1);
        assert!(c.get(1, &[1]).is_none());
        assert!(c.get(1, &[1, 1]).is_some());
    }

    #[test]
    fn routed_entries_round_trip_most_recent_first() {
        let mut c = LruCache::new(4);
        c.insert_routed(100, 1, vec![1], report(1));
        c.insert_routed(200, 2, vec![2], report(2));
        assert!(c.get(1, &[1]).is_some()); // key 1 back to most recent
        let mut seen = Vec::new();
        c.for_each_entry(|route, key, cert, _| seen.push((route, key, cert.to_vec())));
        assert_eq!(
            seen,
            vec![(100, 1, vec![1u8]), (200, 2, vec![2u8])],
            "iteration must be most-recent first with routes preserved"
        );
        // Plain insert records the key as its own route.
        c.insert(3, vec![3], report(3));
        let mut routes = Vec::new();
        c.for_each_entry(|route, key, _, _| routes.push((route, key)));
        assert_eq!(routes[0], (3, 3));
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        let mut c = LruCache::new(8);
        let r = report(3);
        for k in 0..1000u128 {
            c.insert(k, vec![k as u8], Arc::clone(&r));
            assert!(c.len() <= 8);
        }
        assert_eq!(c.counters().evictions, 992);
        // The last 8 keys survive, most-recent first.
        for k in 992..1000u128 {
            assert!(c.get(k, &[k as u8]).is_some());
        }
    }
}
