//! Experiment runners for Section 4.1: seed-parallel sweeps producing the
//! rows printed by the `exp_random_*` binaries (E5–E7 in DESIGN.md).

use crate::stats::{GraphStats, Summary};
use bisched_core::alg2_random_graph;
use bisched_graph::{gilbert_bipartite, EdgeProbability};
use bisched_model::{cstar_double_max, Instance, Rat, SpeedProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One row of the coloring/matching statistics table (E5/E6).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RandomGraphRow {
    /// Side size `n`.
    pub n: usize,
    /// Regime label.
    pub regime: String,
    /// Evaluated `p(n)`.
    pub p: f64,
    /// Seeds used.
    pub seeds: usize,
    /// `|V'_2|/n` summary.
    pub minor_fraction_mean: f64,
    /// Lemma 12's finite-`n` bound on the above (only meaningful in the
    /// critical regime).
    pub lemma12_bound: f64,
    /// `μ/n` summary.
    pub matching_fraction_mean: f64,
    /// Lemma 13's a.a.s. lower bound at `a = n·p`.
    pub lemma13_bound: f64,
    /// Mean of `|V'_2|/μ` (Lemma 14 ratio).
    pub ratio_mean: f64,
    /// Max of `|V'_2|/μ` over the seeds.
    pub ratio_max: f64,
}

/// Samples `seeds` realizations of `G_{n,n,p(n)}` and aggregates the
/// Section 4.1 statistics. Seed-parallel via rayon.
pub fn random_graph_statistics(
    n: usize,
    regime: EdgeProbability,
    seeds: usize,
    seed_base: u64,
) -> RandomGraphRow {
    let p = regime.eval(n);
    let stats: Vec<GraphStats> = (0..seeds)
        .into_par_iter()
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(seed_base + s as u64);
            let g = gilbert_bipartite(n, n, p, &mut rng);
            GraphStats::measure(&g, n)
        })
        .collect();
    let minor = Summary::of(stats.iter().map(|s| s.minor_fraction()));
    let matching = Summary::of(stats.iter().map(|s| s.matching_fraction()));
    let ratio = Summary::of(stats.iter().filter_map(|s| s.minor_to_matching()));
    let a = p * n as f64;
    RandomGraphRow {
        n,
        regime: regime.label(),
        p,
        seeds,
        minor_fraction_mean: minor.mean(),
        lemma12_bound: crate::stats::lemma12_bound(n, a),
        matching_fraction_mean: matching.mean(),
        lemma13_bound: crate::stats::lemma13_bound(a),
        ratio_mean: ratio.mean(),
        ratio_max: ratio.max,
    }
}

/// One row of the Algorithm 2 ratio table (E7, Theorem 19).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Alg2Row {
    /// Side size `n` (the instance has `2n` unit jobs).
    pub n: usize,
    /// Regime label.
    pub regime: String,
    /// Speed profile label.
    pub speeds: String,
    /// Machines.
    pub m: usize,
    /// Seeds used.
    pub seeds: usize,
    /// Mean of `C_max(Alg2) / LB`.
    pub ratio_mean: f64,
    /// Max of the ratio over seeds.
    pub ratio_max: f64,
    /// Mean chosen split point `k`.
    pub k_mean: f64,
}

/// Runs Algorithm 2 on `seeds` realizations and reports the ratio against
/// the *graph-aware* lower bound
/// `max(C**(2n on all machines), C**(μ on M_2..M_m))` — the quantity
/// Theorem 19's proof actually compares against.
pub fn alg2_ratio_experiment(
    n: usize,
    regime: EdgeProbability,
    profile: SpeedProfile,
    m: usize,
    seeds: usize,
    seed_base: u64,
) -> Alg2Row {
    let p = regime.eval(n);
    let speeds = profile.speeds(m);
    let results: Vec<(f64, usize)> = (0..seeds)
        .into_par_iter()
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(seed_base + s as u64);
            let g = gilbert_bipartite(n, n, p, &mut rng);
            let stats = GraphStats::measure(&g, n);
            let inst = Instance::uniform(speeds.clone(), vec![1; 2 * n], g).expect("unit instance");
            let r = alg2_random_graph(&inst).expect("bipartite");
            // Graph-aware LB: all 2n jobs covered by all machines AND the
            // μ jobs that must avoid M1 covered by M2..Mm; pmax = 1.
            let lb = cstar_double_max(&speeds, 2 * n as u64, stats.matching as u64, 1);
            let lb = lb.max(Rat::new(1, speeds[0]));
            (r.makespan.ratio_to(&lb), r.k)
        })
        .collect();
    let ratio = Summary::of(results.iter().map(|&(r, _)| r));
    let k = Summary::of(results.iter().map(|&(_, k)| k as f64));
    Alg2Row {
        n,
        regime: regime.label(),
        speeds: profile.label(),
        m,
        seeds,
        ratio_mean: ratio.mean(),
        ratio_max: ratio.max,
        k_mean: k.mean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_row_is_consistent() {
        let row = random_graph_statistics(64, EdgeProbability::Critical { a: 2.0 }, 8, 1000);
        assert_eq!(row.seeds, 8);
        assert!((row.p - 2.0 / 64.0).abs() < 1e-12);
        assert!(row.minor_fraction_mean >= 0.0 && row.minor_fraction_mean <= 1.0);
        assert!(row.matching_fraction_mean <= 1.0);
        // μ/n should not collapse below Lemma 13's bound by much at n=64.
        assert!(row.matching_fraction_mean >= row.lemma13_bound - 0.15);
    }

    #[test]
    fn alg2_row_ratio_sane() {
        let row = alg2_ratio_experiment(
            48,
            EdgeProbability::Critical { a: 1.0 },
            SpeedProfile::Geometric { ratio: 2 },
            4,
            6,
            2000,
        );
        assert!(
            row.ratio_mean >= 1.0 - 1e-9,
            "ratio below 1: {}",
            row.ratio_mean
        );
        assert!(row.ratio_max < 4.0, "wildly bad ratio {}", row.ratio_max);
        assert!(row.k_mean >= 2.0);
    }

    #[test]
    fn deterministic_given_seed_base() {
        let a = random_graph_statistics(32, EdgeProbability::Constant { p: 0.1 }, 4, 7);
        let b = random_graph_statistics(32, EdgeProbability::Constant { p: 0.1 }, 4, 7);
        assert_eq!(a.minor_fraction_mean, b.minor_fraction_mean);
        assert_eq!(a.ratio_max, b.ratio_max);
    }
}
