//! Per-realization statistics for `G_{n,n,p(n)}` and the paper's
//! theoretical curves (Corollary 11, Lemmas 12–14, Theorems 15/17).
//!
//! One notation fix (documented in DESIGN.md §2.3): Lemma 14's denominator
//! `n − α(G)` is, by König on the `2n`-vertex graph, the maximum matching
//! size `μ(G)` — the minimum number of jobs that cannot ride on `M_1`
//! together. We therefore measure `|V'_2| / μ(G)` against the paper's
//! `e/(e−1) < 1.6` limit.

use bisched_graph::{bipartition, inequitable_coloring, maximum_matching, Graph};

/// Everything Section 4.1 measures on one sampled graph.
#[derive(Clone, Copy, Debug)]
pub struct GraphStats {
    /// Vertices per side (`n`).
    pub n: usize,
    /// Edges in the realization.
    pub edges: usize,
    /// Size of the minor class `|V'_2|` of an inequitable coloring.
    pub minor_size: usize,
    /// Maximum matching size `μ(G)`.
    pub matching: usize,
    /// Isolated vertices in the whole graph.
    pub isolated: usize,
}

impl GraphStats {
    /// Computes all statistics for a bipartite realization with `n`
    /// vertices per side.
    pub fn measure(g: &Graph, n: usize) -> GraphStats {
        debug_assert_eq!(g.num_vertices(), 2 * n);
        let coloring = inequitable_coloring(g).expect("realizations are bipartite");
        let bp = bipartition(g).expect("realizations are bipartite");
        let matching = maximum_matching(g, &bp).size();
        let isolated = g.vertices().filter(|&v| g.degree(v) == 0).count();
        GraphStats {
            n,
            edges: g.num_edges(),
            minor_size: coloring.class_sizes().1,
            matching,
            isolated,
        }
    }

    /// `|V'_2| / n` — Corollary 11 says `o(1)` for sub-critical `p`.
    pub fn minor_fraction(&self) -> f64 {
        self.minor_size as f64 / self.n as f64
    }

    /// `μ / n` — Lemma 13's lower bound is `1 − e^{e^{−a} − 1}` at
    /// `p = a/n`; Theorems 15/17 push it to `1 − o(1)` beyond.
    pub fn matching_fraction(&self) -> f64 {
        self.matching as f64 / self.n as f64
    }

    /// `|V'_2| / μ` — Lemma 14's ratio, a.a.s. `≤ e/(e−1) < 1.6` at
    /// `p = a/n`. Undefined (`None`) when the graph has no edges.
    pub fn minor_to_matching(&self) -> Option<f64> {
        (self.matching > 0).then(|| self.minor_size as f64 / self.matching as f64)
    }
}

/// Lemma 12's upper bound on `|V'_2|/n`: `1 − (1 − a/n)^n` (the non-isolated
/// fraction of one side), evaluated at finite `n`.
pub fn lemma12_bound(n: usize, a: f64) -> f64 {
    1.0 - (1.0 - a / n as f64).powi(n as i32)
}

/// Lemma 13's a.a.s. lower bound on `μ/n` at `p = a/n`:
/// `1 − e^{e^{−a} − 1}` (Mastin–Jaillet [21]).
pub fn lemma13_bound(a: f64) -> f64 {
    1.0 - ((-a).exp() - 1.0).exp()
}

/// The limiting ratio of Lemma 14's proof:
/// `(1 − e^{−a}) / (1 − e^{e^{−a} − 1})`, increasing in `a` with limit
/// `e/(e−1) ≈ 1.582 < 1.6`.
pub fn lemma14_ratio_curve(a: f64) -> f64 {
    (1.0 - (-a).exp()) / (1.0 - ((-a).exp() - 1.0).exp())
}

/// The supremum of [`lemma14_ratio_curve`]: `e/(e−1)`.
pub fn lemma14_limit() -> f64 {
    std::f64::consts::E / (std::f64::consts::E - 1.0)
}

/// Streaming summary (mean/min/max) for experiment tables.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    /// Number of samples folded in.
    pub count: usize,
    /// Running sum.
    pub sum: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Folds one sample.
    pub fn add(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.sum += x;
        self.count += 1;
    }

    /// Mean of the folded samples (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Folds an iterator of samples.
    pub fn of(samples: impl IntoIterator<Item = f64>) -> Summary {
        let mut s = Summary::default();
        for x in samples {
            s.add(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_graph::gilbert_bipartite;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stats_on_fixed_graphs() {
        // K_{3,3}: minor class 3, perfect matching 3, no isolated.
        let g = Graph::complete_bipartite(3, 3);
        let s = GraphStats::measure(&g, 3);
        assert_eq!(s.minor_size, 3);
        assert_eq!(s.matching, 3);
        assert_eq!(s.isolated, 0);
        assert_eq!(s.minor_to_matching(), Some(1.0));
        // Empty graph: everything major, no matching.
        let e = Graph::empty(8);
        let se = GraphStats::measure(&e, 4);
        assert_eq!(se.minor_size, 0);
        assert_eq!(se.matching, 0);
        assert_eq!(se.isolated, 8);
        assert_eq!(se.minor_to_matching(), None);
    }

    #[test]
    fn minor_at_least_matching_shortfall() {
        // |V'_2| >= |V| - α = μ always (V'_1 is an independent set).
        let mut rng = StdRng::seed_from_u64(97);
        for &p in &[0.02, 0.05, 0.2] {
            let g = gilbert_bipartite(50, 50, p, &mut rng);
            let s = GraphStats::measure(&g, 50);
            assert!(
                s.minor_size >= s.matching,
                "|V'2|={} < mu={}",
                s.minor_size,
                s.matching
            );
        }
    }

    #[test]
    fn theoretical_curves_sane() {
        // Lemma 13 bound increases with a and stays in (0, 1).
        assert!(lemma13_bound(0.5) < lemma13_bound(2.0));
        assert!(lemma13_bound(8.0) < 1.0);
        // Lemma 14 curve increasing toward e/(e-1) < 1.6.
        assert!(lemma14_ratio_curve(1.0) < lemma14_ratio_curve(4.0));
        assert!(lemma14_ratio_curve(50.0) <= lemma14_limit() + 1e-9);
        assert!(lemma14_limit() < 1.6);
        // Lemma 12 bound at finite n close to 1 - e^{-a}.
        let b = lemma12_bound(10_000, 2.0);
        assert!((b - (1.0 - (-2.0f64).exp())).abs() < 1e-3);
    }

    #[test]
    fn summary_folds() {
        let s = Summary::of([1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }
}
