//! # bisched-random
//!
//! Section 4.1 of the paper — random bipartite graphs in Gilbert's model —
//! as an executable analysis: per-realization statistics with the paper's
//! theoretical curves ([`stats`]) and seed-parallel experiment runners
//! behind the E5–E7 binaries ([`experiments`]).

#![warn(missing_docs)]
// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
pub mod experiments;
pub mod stats;

pub use experiments::{alg2_ratio_experiment, random_graph_statistics, Alg2Row, RandomGraphRow};
pub use stats::{
    lemma12_bound, lemma13_bound, lemma14_limit, lemma14_ratio_curve, GraphStats, Summary,
};
