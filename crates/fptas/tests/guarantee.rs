//! Deep property tests of the `Rm||C_max` FPTAS: the `(1+ε)` contract on
//! arbitrary matrices, machine counts 1–3, and the full ε grid.

use bisched_fptas::{makespan_of, rm_cmax_exact, rm_cmax_fptas};
use proptest::prelude::*;

fn matrix(max_m: usize, max_n: usize, max_p: u64) -> impl Strategy<Value = Vec<Vec<u64>>> {
    (1..=max_m, 0..=max_n).prop_flat_map(move |(m, n)| {
        proptest::collection::vec(proptest::collection::vec(1..=max_p, n), m)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    #[allow(clippy::needless_range_loop)] // j addresses column j across machine rows
    fn exact_mode_is_optimal_vs_enumeration(times in matrix(3, 6, 20)) {
        let m = times.len();
        let n = times[0].len();
        let r = rm_cmax_exact(&times);
        // The reported makespan is the true makespan of the schedule.
        prop_assert_eq!(makespan_of(&times, r.schedule.assignment()), r.makespan);
        // Enumerate.
        let total = (m as u64).pow(n as u32);
        prop_assume!(total <= 1 << 16);
        let mut best = u64::MAX;
        for code in 0..total {
            let mut c = code;
            let mut loads = vec![0u64; m];
            for j in 0..n {
                let i = (c % m as u64) as usize;
                c /= m as u64;
                loads[i] += times[i][j];
            }
            best = best.min(loads.iter().copied().max().unwrap_or(0));
        }
        if n == 0 { best = 0; }
        prop_assert_eq!(r.makespan, best);
    }

    #[test]
    fn fptas_contract_over_grid(times in matrix(3, 7, 50), eps_pct in 1u32..=200) {
        let eps = eps_pct as f64 / 100.0;
        let exact = rm_cmax_exact(&times).makespan;
        let approx = rm_cmax_fptas(&times, eps);
        prop_assert_eq!(
            makespan_of(&times, approx.schedule.assignment()),
            approx.makespan
        );
        prop_assert!(
            approx.makespan as f64 <= (1.0 + eps) * exact as f64 + 1e-9,
            "eps={eps}: {} vs exact {}",
            approx.makespan,
            exact
        );
        // Trimming can only keep fewer or equal states.
        prop_assert!(approx.peak_states <= rm_cmax_exact(&times).peak_states);
    }

    #[test]
    fn schedule_assigns_every_job(times in matrix(3, 8, 30)) {
        let n = times[0].len();
        let m = times.len() as u32;
        let r = rm_cmax_fptas(&times, 0.3);
        prop_assert_eq!(r.schedule.num_jobs(), n);
        prop_assert!(r.schedule.assignment().iter().all(|&i| i < m));
    }
}
