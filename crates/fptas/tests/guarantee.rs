//! Deep property tests of the `Rm||C_max` FPTAS: the `(1+ε)` contract on
//! arbitrary matrices, machine counts 1–3, the full ε grid, and the
//! pruned/packed/streaming DP core's invariants (pruning parity, width
//! monotonicity, bucket-grid monotonicity).

use bisched_fptas::{
    makespan_of, rm_cmax_exact, rm_cmax_fptas, rm_cmax_fptas_with, BucketGrid, FptasParams,
};
use proptest::prelude::*;

fn matrix(max_m: usize, max_n: usize, max_p: u64) -> impl Strategy<Value = Vec<Vec<u64>>> {
    (1..=max_m, 0..=max_n).prop_flat_map(move |(m, n)| {
        proptest::collection::vec(proptest::collection::vec(1..=max_p, n), m)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    #[allow(clippy::needless_range_loop)] // j addresses column j across machine rows
    fn exact_mode_is_optimal_vs_enumeration(times in matrix(3, 6, 20)) {
        let m = times.len();
        let n = times[0].len();
        let r = rm_cmax_exact(&times);
        // The reported makespan is the true makespan of the schedule.
        prop_assert_eq!(makespan_of(&times, r.schedule.assignment()), r.makespan);
        // Enumerate.
        let total = (m as u64).pow(n as u32);
        prop_assume!(total <= 1 << 16);
        let mut best = u64::MAX;
        for code in 0..total {
            let mut c = code;
            let mut loads = vec![0u64; m];
            for j in 0..n {
                let i = (c % m as u64) as usize;
                c /= m as u64;
                loads[i] += times[i][j];
            }
            best = best.min(loads.iter().copied().max().unwrap_or(0));
        }
        if n == 0 { best = 0; }
        prop_assert_eq!(r.makespan, best);
    }

    #[test]
    fn fptas_contract_over_grid(times in matrix(3, 7, 50), eps_pct in 1u32..=200) {
        let eps = eps_pct as f64 / 100.0;
        let exact = rm_cmax_exact(&times).makespan;
        let approx = rm_cmax_fptas(&times, eps);
        prop_assert_eq!(
            makespan_of(&times, approx.schedule.assignment()),
            approx.makespan
        );
        prop_assert!(
            approx.makespan as f64 <= (1.0 + eps) * exact as f64 + 1e-9,
            "eps={eps}: {} vs exact {}",
            approx.makespan,
            exact
        );
        // Trimming can only keep fewer or equal states.
        prop_assert!(approx.peak_states <= rm_cmax_exact(&times).peak_states);
    }

    #[test]
    fn schedule_assigns_every_job(times in matrix(3, 8, 30)) {
        let n = times[0].len();
        let m = times.len() as u32;
        let r = rm_cmax_fptas(&times, 0.3);
        prop_assert_eq!(r.schedule.num_jobs(), n);
        prop_assert!(r.schedule.assignment().iter().all(|&i| i < m));
    }

    #[test]
    fn exact_mode_pruning_parity(times in matrix(3, 9, 5_000)) {
        // With ε = 0 the bucket key is the exact coordinate prefix, so a
        // pruned state can never have been a bucket representative a
        // surviving state needed: pruned and unpruned sweeps are makespan-
        // identical (both are the optimum).
        let pruned = rm_cmax_exact(&times);
        let mut p = FptasParams::new(0.0);
        p.prune = false;
        let unpruned = rm_cmax_fptas_with(&times, &p).unwrap();
        prop_assert_eq!(pruned.makespan, unpruned.makespan);
        prop_assert!(pruned.peak_states <= unpruned.peak_states);
        prop_assert!(pruned.pruned >= unpruned.pruned);
    }

    #[test]
    fn trimmed_pruning_keeps_the_contract(times in matrix(3, 9, 50_000), eps_pct in 1u32..=200) {
        // Under trimming the two sweeps may pick different bucket
        // representatives, so bit-identity is not a theorem; what *is* a
        // theorem — and what this property pins on arbitrary inputs — is
        // that both carry the (1+ε) contract. (The empirical "pruned is
        // never the worse of the two" observation lives in the fixed-seed
        // `pruned_never_worse_on_pinned_grid` test below, where it cannot
        // turn flaky if the proptest strategy or its RNG ever changes.)
        let eps = eps_pct as f64 / 100.0;
        let pruned = rm_cmax_fptas(&times, eps);
        let mut p = FptasParams::new(eps);
        p.prune = false;
        let unpruned = rm_cmax_fptas_with(&times, &p).unwrap();
        let opt = rm_cmax_exact(&times).makespan;
        prop_assert!(pruned.makespan as f64 <= (1.0 + eps) * opt as f64 + 1e-9);
        prop_assert!(unpruned.makespan as f64 <= (1.0 + eps) * opt as f64 + 1e-9);
    }

    #[test]
    fn peak_width_is_non_increasing_in_eps(times in matrix(3, 10, 100_000)) {
        // Coarser grids keep fewer states. Adjacent ε grids are not
        // *nested* (a 2δ boundary need not be a δ boundary), so the width
        // may jitter by a state or two between neighbouring ε — the pin
        // allows that slack but rejects any real growth, and demands
        // strict end-to-end shrinkage whenever there is room to shrink.
        // Pruning is disabled so the property is about the grid alone
        // (the incumbent bound is ε-independent anyway).
        let run = |eps: f64| {
            let mut p = FptasParams::new(eps);
            p.prune = false;
            rm_cmax_fptas_with(&times, &p).unwrap().peak_states
        };
        let mut prev = usize::MAX;
        for eps in [0.05f64, 0.1, 0.2, 0.4, 0.8, 1.6] {
            let peak = run(eps);
            prop_assert!(
                peak <= prev.saturating_add(prev / 8 + 1),
                "peak grew from {} to {} at eps={}", prev, peak, eps
            );
            prev = prev.min(peak);
        }
        let fine = run(0.05);
        let coarse = run(1.6);
        prop_assert!(coarse <= fine);
        if fine > 64 {
            prop_assert!(coarse < fine, "wide sweep ({fine}) did not shrink at eps=1.6");
        }
    }

    #[test]
    fn bucket_grid_is_monotone(
        delta_m in 1u32..=4000,
        probes in proptest::collection::vec(1u64..=1_000_000, 16)
    ) {
        // The satellite property: bucketing must be monotone in the load
        // — the seed's `(l.ln() * inv_log) as u64` could invert order
        // near bucket edges under f64 rounding.
        let delta = delta_m as f64 / 1000.0;
        let grid = BucketGrid::new(delta, 1_000_000);
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            prop_assert!(
                grid.bucket(pair[0]) <= grid.bucket(pair[1]),
                "delta={}: bucket({}) > bucket({})", delta, pair[0], pair[1]
            );
        }
        // And adjacent loads never invert either (the exact failure mode
        // of the ln-based grid).
        for &l in &sorted {
            prop_assert!(grid.bucket(l) <= grid.bucket(l + 1));
        }
    }
}

/// The empirical half of the pruning comparison, on a grid pinned by
/// explicit seeds (independent of any proptest internals): across 200
/// deterministic instances × the ε ladder, the pruned sweep — which also
/// folds in the greedy incumbent — never returns a worse makespan than
/// the unpruned one, and is identical in exact mode.
#[test]
fn pruned_never_worse_on_pinned_grid() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = rng.gen_range(2..=3);
        let n = rng.gen_range(2..=10);
        let hi = [20u64, 500, 100_000][(seed % 3) as usize];
        let times: Vec<Vec<u64>> = (0..m)
            .map(|_| (0..n).map(|_| rng.gen_range(1..=hi)).collect())
            .collect();
        for eps in [0.0f64, 0.1, 0.5, 1.0, 2.0] {
            let pruned = rm_cmax_fptas(&times, eps);
            let mut p = FptasParams::new(eps);
            p.prune = false;
            let unpruned = rm_cmax_fptas_with(&times, &p).unwrap();
            assert!(
                pruned.makespan <= unpruned.makespan,
                "seed={seed} eps={eps}: pruned {} vs unpruned {}",
                pruned.makespan,
                unpruned.makespan
            );
            if eps == 0.0 {
                assert_eq!(
                    pruned.makespan, unpruned.makespan,
                    "seed={seed}: exact parity"
                );
            }
        }
    }
}
