//! The `(1+δ)` log-grid the trimming step buckets loads on.
//!
//! The seed implementation computed `⌊ln l / ln(1+δ)⌋` per coordinate per
//! expanded state. That is two `f64::ln` calls on the hottest path, and —
//! worse — the float rounding of `ln` near a bucket boundary can map
//! `l` and `l+1` to *decreasing* bucket indices, silently merging loads
//! that sit `(1+δ)` apart (a correctness hazard for the trimming
//! analysis, which needs every bucket to span at most a `(1+δ)` factor).
//!
//! [`BucketGrid`] fixes both: the integer bucket edges are materialised
//! once per sweep (`edges[k] = max(edges[k-1]+1, ⌈(1+δ)^k⌉)`, strictly
//! increasing **by construction**, so `bucket` is monotone in the load no
//! matter how `powi` rounds), and the per-load lookup is a branch-free
//! binary search over a cache-resident table — no transcendentals in the
//! inner loop. The `max(edges[k-1]+1, ·)` clamp can only *narrow* buckets
//! below the exact geometric grid, so the `(1+δ)`-per-trim error bound of
//! the FPTAS analysis is preserved (never loosened).

/// Monotone integer log-grid: bucket `0` holds load `0`, bucket `k ≥ 1`
/// holds the integer loads in `[edges[k-1], edges[k])`.
#[derive(Clone, Debug)]
pub struct BucketGrid {
    /// `edges[k]` = smallest load belonging to bucket `k + 1`; strictly
    /// increasing, `edges[0] = 1`.
    edges: Vec<u64>,
}

impl BucketGrid {
    /// Builds the grid for growth factor `1 + delta` covering loads up to
    /// `max_load` (larger loads saturate into the last bucket — callers
    /// prune loads above their incumbent bound before bucketing, so the
    /// saturation range is never consulted in a guarantee-carrying run).
    ///
    /// Requires `delta > 0`.
    pub fn new(delta: f64, max_load: u64) -> Self {
        debug_assert!(delta > 0.0, "a trimming grid needs δ > 0");
        let growth = 1.0 + delta;
        let mut edges: Vec<u64> = vec![1];
        let mut k = 0i32;
        loop {
            let last = *edges.last().expect("edges is non-empty");
            if last > max_load {
                break;
            }
            k += 1;
            // `powi` per edge (not cumulative multiplication) keeps the
            // drift at ~1 ulp; the strict-increase clamp makes the grid
            // monotone regardless.
            let geometric = growth.powi(k).ceil();
            let next = if geometric >= u64::MAX as f64 {
                u64::MAX
            } else {
                (geometric as u64).max(last + 1)
            };
            edges.push(next);
            if next == u64::MAX {
                break;
            }
        }
        BucketGrid { edges }
    }

    /// How many edges would cover loads up to `max_load` — used to decide
    /// whether materialising the grid is sane before paying for it
    /// (δ → 0 makes the grid approach one bucket per integer).
    pub fn projected_edges(delta: f64, max_load: u64) -> f64 {
        if max_load <= 1 {
            return 1.0;
        }
        (max_load as f64).ln() / (1.0 + delta).ln()
    }

    /// The bucket index of `load`: `0` for `0`, else the number of edges
    /// `≤ load`. Monotone non-decreasing in `load` by construction.
    #[inline]
    pub fn bucket(&self, load: u64) -> u64 {
        if load == 0 {
            return 0;
        }
        self.edges.partition_point(|&e| e <= load) as u64
    }

    /// Largest bucket index this grid can produce.
    pub fn max_bucket(&self) -> u64 {
        self.edges.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_are_distinct_buckets() {
        let g = BucketGrid::new(0.5, 100);
        assert_eq!(g.bucket(0), 0);
        assert_eq!(g.bucket(1), 1);
    }

    #[test]
    fn small_loads_get_singleton_buckets() {
        // Below ~1/δ the geometric spacing is under 1, so the strict-
        // increase clamp gives every integer its own bucket — the grid is
        // *finer* than the ⌊ln l / ln(1+δ)⌋ formula there, never coarser.
        for &delta in &[0.1f64, 0.25, 0.5] {
            let g = BucketGrid::new(delta, 10_000);
            let horizon = (1.0 / delta) as u64;
            for l in 1..=horizon {
                assert_eq!(
                    g.bucket(l + 1),
                    g.bucket(l) + 1,
                    "δ={delta}: loads {l} and {} must not share a bucket",
                    l + 1
                );
            }
        }
    }

    #[test]
    fn monotone_over_exhaustive_small_range() {
        for &delta in &[1e-3, 0.01, 0.1, 0.5, 1.0] {
            let g = BucketGrid::new(delta, 5_000);
            let mut prev = 0;
            for l in 0..=5_000u64 {
                let b = g.bucket(l);
                assert!(b >= prev, "δ={delta}: bucket({l})={b} < {prev}");
                prev = b;
            }
        }
    }

    #[test]
    fn bucket_width_stays_within_growth_factor() {
        // Any two integer loads sharing a bucket are within (1+δ): the
        // property the FPTAS error analysis stands on.
        for &delta in &[0.01f64, 0.1, 0.7] {
            let g = BucketGrid::new(delta, 200_000);
            let mut start = 1u64;
            for l in 2..=200_000u64 {
                if g.bucket(l) != g.bucket(start) {
                    start = l;
                } else {
                    assert!(
                        l as f64 <= start as f64 * (1.0 + delta),
                        "δ={delta}: {start} and {l} share a bucket"
                    );
                }
            }
        }
    }

    #[test]
    fn saturates_instead_of_panicking_past_max_load() {
        let g = BucketGrid::new(0.5, 1_000);
        assert_eq!(g.bucket(u64::MAX), g.max_bucket());
    }

    #[test]
    fn projected_edges_tracks_actual_size() {
        let delta = 0.05;
        let g = BucketGrid::new(delta, 1 << 30);
        let projected = BucketGrid::projected_edges(delta, 1 << 30);
        let actual = g.max_bucket() as f64;
        assert!(
            (actual - projected).abs() <= 0.1 * projected + 8.0,
            "projected {projected} vs actual {actual}"
        );
    }
}
