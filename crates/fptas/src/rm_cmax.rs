//! FPTAS for `Rm || C_max` (fixed number of unrelated machines).
//!
//! The paper uses the Jansen–Porkolab FPTAS [15] as a black box inside
//! Algorithm 5 and Theorem 4. Any `(1+ε)` scheme preserves every claim, so
//! we implement the classical Horowitz–Sahni approach instead (documented
//! as a substitution in DESIGN.md): sweep jobs, maintain the set of
//! reachable machine-load vectors, and *trim* after every job by bucketing
//! the first `m−1` coordinates on a `(1+δ)` log-grid (δ = ε/2n) while
//! keeping the exact minimum of the last coordinate per bucket.
//!
//! Error analysis: each of the `n` trims perturbs coordinates by at most a
//! `(1+δ)` factor, so the surviving vector nearest the optimum is within
//! `(1+δ)^n ≤ e^{ε/2} ≤ 1+ε` (for `ε ≤ 2`). With `ε = 0` no trimming
//! happens and the sweep degenerates to the exact pseudo-polynomial Pareto
//! DP — the mode Theorem 4 exploits with `ε = 1/(n+1)`-style parameters.

use bisched_model::Schedule;
use std::collections::HashMap;

/// Result of one FPTAS run.
#[derive(Clone, Debug)]
pub struct FptasResult {
    /// The produced schedule (assignment of all jobs).
    pub schedule: Schedule,
    /// Its true makespan (computed from the real loads, not the trimmed
    /// surrogates — the guarantee is `makespan ≤ (1+ε)·OPT`).
    pub makespan: u64,
    /// Peak number of states kept in any layer (the DP's live width).
    pub peak_states: usize,
}

/// Layered state arena: loads flattened with stride `m`.
struct Layer {
    loads: Vec<u64>,
    parent: Vec<u32>,
    machine: Vec<u8>,
    m: usize,
}

impl Layer {
    fn new(m: usize) -> Self {
        Layer {
            loads: Vec::new(),
            parent: Vec::new(),
            machine: Vec::new(),
            m,
        }
    }

    fn len(&self) -> usize {
        self.parent.len()
    }

    fn loads_of(&self, idx: usize) -> &[u64] {
        &self.loads[idx * self.m..(idx + 1) * self.m]
    }

    fn push(&mut self, loads: &[u64], parent: u32, machine: u8) -> usize {
        self.loads.extend_from_slice(loads);
        self.parent.push(parent);
        self.machine.push(machine);
        self.parent.len() - 1
    }
}

/// Log-grid bucket of a load value: `0 → 0`, else `⌊ln l / ln(1+δ)⌋ + 1`.
fn bucket(load: u64, inv_log: f64) -> u64 {
    if load == 0 {
        0
    } else {
        ((load as f64).ln() * inv_log) as u64 + 1
    }
}

/// Runs the FPTAS on an `m × n` unrelated-times matrix, `ε ∈ [0, 2]`.
///
/// `ε = 0` disables trimming: the result is exactly optimal (pseudo-
/// polynomial time/space — caller's responsibility to keep sums small).
#[allow(clippy::needless_range_loop)] // index j addresses column j across all machine rows
pub fn rm_cmax_fptas(times: &[Vec<u64>], eps: f64) -> FptasResult {
    let m = times.len();
    assert!(m >= 1, "at least one machine");
    assert!((0.0..=2.0).contains(&eps), "ε must be in [0, 2], got {eps}");
    let n = times[0].len();
    assert!(times.iter().all(|row| row.len() == n), "ragged matrix");

    let delta = if n == 0 { 0.0 } else { eps / (2.0 * n as f64) };
    let trimming = delta > 0.0;
    let inv_log = if trimming {
        1.0 / (1.0 + delta).ln()
    } else {
        0.0
    };

    // Layer 0: the all-zero vector.
    let mut layers: Vec<Layer> = Vec::with_capacity(n + 1);
    let mut root = Layer::new(m);
    root.push(&vec![0u64; m], u32::MAX, u8::MAX);
    layers.push(root);
    let mut peak_states = 1usize;

    for j in 0..n {
        let prev = layers.last().expect("layer 0 exists");
        let mut next = Layer::new(m);
        // Bucket key: gridded (or exact) first m-1 coordinates; value: index
        // of the state with minimum last coordinate seen so far.
        let mut seen: HashMap<Vec<u64>, u32> = HashMap::new();
        let mut scratch = vec![0u64; m];
        for s in 0..prev.len() {
            let base = prev.loads_of(s);
            for i in 0..m {
                scratch.copy_from_slice(base);
                scratch[i] += times[i][j];
                let key: Vec<u64> = if trimming {
                    scratch[..m - 1]
                        .iter()
                        .map(|&l| bucket(l, inv_log))
                        .collect()
                } else {
                    scratch[..m - 1].to_vec()
                };
                match seen.entry(key) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let idx = next.push(&scratch, s as u32, i as u8);
                        e.insert(idx as u32);
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let idx = *e.get() as usize;
                        if scratch[m - 1] < next.loads_of(idx)[m - 1] {
                            // Replace the representative in place.
                            next.loads[idx * m..(idx + 1) * m].copy_from_slice(&scratch);
                            next.parent[idx] = s as u32;
                            next.machine[idx] = i as u8;
                        }
                    }
                }
            }
        }
        peak_states = peak_states.max(next.len());
        layers.push(next);
    }

    // Pick the final state minimizing the max coordinate.
    let last = layers.last().expect("n+1 layers");
    let mut best_idx = 0usize;
    let mut best_val = u64::MAX;
    for s in 0..last.len() {
        let mx = *last.loads_of(s).iter().max().expect("m >= 1");
        if mx < best_val {
            best_val = mx;
            best_idx = s;
        }
    }
    if n == 0 {
        best_val = 0;
    }

    // Walk parents to recover the assignment.
    let mut assignment = vec![0u32; n];
    let mut idx = best_idx;
    for j in (0..n).rev() {
        let layer = &layers[j + 1];
        assignment[j] = layer.machine[idx] as u32;
        idx = layer.parent[idx] as usize;
    }
    FptasResult {
        schedule: Schedule::new(assignment),
        makespan: best_val,
        peak_states,
    }
}

/// Exact `Rm || C_max` via the untrimmed Pareto sweep (`ε = 0`).
pub fn rm_cmax_exact(times: &[Vec<u64>]) -> FptasResult {
    rm_cmax_fptas(times, 0.0)
}

/// True makespan of an assignment under a times matrix.
pub fn makespan_of(times: &[Vec<u64>], assignment: &[u32]) -> u64 {
    let mut loads = vec![0u64; times.len()];
    for (j, &i) in assignment.iter().enumerate() {
        loads[i as usize] += times[i as usize][j];
    }
    loads.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Brute force over all m^n assignments.
    #[allow(clippy::needless_range_loop)]
    fn brute(times: &[Vec<u64>]) -> u64 {
        let m = times.len();
        let n = times[0].len();
        let mut best = u64::MAX;
        let total = (m as u64).pow(n as u32);
        for code in 0..total {
            let mut c = code;
            let mut loads = vec![0u64; m];
            for j in 0..n {
                let i = (c % m as u64) as usize;
                c /= m as u64;
                loads[i] += times[i][j];
            }
            best = best.min(loads.iter().copied().max().unwrap());
        }
        best
    }

    #[test]
    fn empty_and_trivial() {
        let r = rm_cmax_fptas(&[vec![], vec![]], 0.5);
        assert_eq!(r.makespan, 0);
        let r1 = rm_cmax_exact(&[vec![7]]);
        assert_eq!(r1.makespan, 7);
    }

    #[test]
    fn single_machine_sums_everything() {
        let r = rm_cmax_exact(&[vec![3, 4, 5]]);
        assert_eq!(r.makespan, 12);
        assert_eq!(r.schedule.assignment(), &[0, 0, 0]);
    }

    #[test]
    fn exact_mode_matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..30 {
            let m = rng.gen_range(2..=3);
            let n = rng.gen_range(1..=8);
            let times: Vec<Vec<u64>> = (0..m)
                .map(|_| (0..n).map(|_| rng.gen_range(1..=15)).collect())
                .collect();
            let r = rm_cmax_exact(&times);
            assert_eq!(r.makespan, brute(&times), "times={times:?}");
            assert_eq!(makespan_of(&times, r.schedule.assignment()), r.makespan);
        }
    }

    #[test]
    fn fptas_respects_guarantee() {
        let mut rng = StdRng::seed_from_u64(31);
        for &eps in &[0.05, 0.1, 0.3, 0.5, 1.0, 2.0] {
            for _ in 0..10 {
                let m = rng.gen_range(2..=3);
                let n = rng.gen_range(2..=8);
                let times: Vec<Vec<u64>> = (0..m)
                    .map(|_| (0..n).map(|_| rng.gen_range(1..=100)).collect())
                    .collect();
                let opt = brute(&times);
                let r = rm_cmax_fptas(&times, eps);
                assert_eq!(
                    makespan_of(&times, r.schedule.assignment()),
                    r.makespan,
                    "reported makespan must be the schedule's true makespan"
                );
                assert!(
                    r.makespan as f64 <= (1.0 + eps) * opt as f64 + 1e-9,
                    "ε={eps}: got {} vs opt {opt}",
                    r.makespan
                );
            }
        }
    }

    #[test]
    fn trimming_reduces_states() {
        let mut rng = StdRng::seed_from_u64(37);
        // Large spread so the exact Pareto set is wide.
        let times: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..14).map(|_| rng.gen_range(1000..=100_000)).collect())
            .collect();
        let exact = rm_cmax_exact(&times);
        let coarse = rm_cmax_fptas(&times, 1.0);
        assert!(
            coarse.peak_states < exact.peak_states,
            "trimming should shrink the state set: {} vs {}",
            coarse.peak_states,
            exact.peak_states
        );
        assert!(coarse.makespan as f64 <= 2.0 * exact.makespan as f64);
    }

    #[test]
    fn forced_assignment_via_huge_penalty() {
        // Algorithm 5's guard jobs: absurd cost on the wrong machine pins
        // a job. Verify the DP never pays the penalty when avoidable.
        let big = 1_000_000u64;
        let times = vec![vec![5, big, 3], vec![big, 4, 3]];
        let r = rm_cmax_exact(&times);
        assert_eq!(r.schedule.machine_of(0), 0);
        assert_eq!(r.schedule.machine_of(1), 1);
        assert!(r.makespan < big);
    }

    #[test]
    fn eps_one_is_paper_s1_mode() {
        // Algorithm 1 uses Algorithm 5 with ε = 1 (a 2-approximation).
        let times = vec![vec![10, 10, 10, 10], vec![10, 10, 10, 10]];
        let r = rm_cmax_fptas(&times, 1.0);
        assert!(r.makespan <= 40); // trivially feasible
        assert!(r.makespan <= 2 * 20); // 2 * OPT
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_rejected() {
        rm_cmax_fptas(&[vec![1, 2], vec![1]], 0.1);
    }
}
