//! FPTAS for `Rm || C_max` (fixed number of unrelated machines).
//!
//! The paper uses the Jansen–Porkolab FPTAS [15] as a black box inside
//! Algorithm 5 and Theorem 4. Any `(1+ε)` scheme preserves every claim, so
//! we implement the classical Horowitz–Sahni approach instead (documented
//! as a substitution in DESIGN.md): sweep jobs, maintain the set of
//! reachable machine-load vectors, and *trim* after every job by bucketing
//! the first `m−1` coordinates on a `(1+δ)` log-grid (δ = ε/2n) while
//! keeping the exact minimum of the last coordinate per bucket.
//!
//! Error analysis: each of the `n` trims perturbs coordinates by at most a
//! `(1+δ)` factor, so the surviving vector nearest the optimum is within
//! `(1+δ)^n ≤ e^{ε/2} ≤ 1+ε` (for `ε ≤ 2`). With `ε = 0` no trimming
//! happens and the sweep degenerates to the exact pseudo-polynomial Pareto
//! DP — the mode Theorem 4 exploits with `ε = 1/(n+1)`-style parameters.
//!
//! ## The engine (rewritten as a packed-key, pruned, streaming DP)
//!
//! This is the hot path under nearly every `Auto` solve (Algorithm 1's
//! √-approximation, the Theorem 4 `Q2 | p_j = 1` route, and Algorithm 5
//! all funnel into it), so the sweep is engineered accordingly:
//!
//! * **Packed keys** — the `m−1` bucketed coordinates are packed into one
//!   `u128` whenever they fit (always for `m ≤ 3`; for the lab's `m ≤ 8`
//!   whenever the per-coordinate bucket count fits its bit budget), hashed
//!   by a small in-crate multiply-xor hasher; a transparent tuple-key
//!   fallback covers the rest. No per-state key allocation on the packed
//!   path.
//! * **Monotone integer grid** — bucketing goes through
//!   [`BucketGrid`](crate::bucket::BucketGrid): no `f64::ln` in the inner
//!   loop, and boundary rounding can never destroy monotonicity.
//! * **Incumbent pruning** — a greedy schedule (LPT on the per-job row
//!   minima, min-resulting-load machine) seeds an upper bound; any state
//!   whose max coordinate, or fractional-average completion bound
//!   (`(Σ loads + Σ remaining row minima) / m`, the suffix analogue of
//!   `exact::lower_bounds`), exceeds it is dead — guarantee-preserving
//!   because loads only grow and the result is never worse than the
//!   incumbent itself (see [`rm_cmax_fptas_with`]).
//! * **Pareto dominance** (`m ≤ 3`) — a coordinate-wise dominated state
//!   can be dropped outright: any completion of the dominated vector is
//!   available, no worse, from the dominating one.
//! * **Streaming memory** — only compact `(parent, machine)` backpointers
//!   are retained per layer; the load arenas ping-pong between two
//!   buffers, and the bucket map and scratch buffers are reused across
//!   layers. Peak RSS drops from `O(n · width · m)` to
//!   `O(width · m + n · width)`.
//! * **Optional parallel expansion** — [`FptasParams::parallel`] expands
//!   the previous layer in fixed chunks over rayon and merges them in
//!   chunk order with the same replace-iff-strictly-smaller rule, which
//!   reproduces the sequential insertion order state for state (pinned by
//!   test). With the vendored sequential rayon this is a no-op shim; real
//!   rayon restores the parallelism with identical results.

use crate::bucket::BucketGrid;
use bisched_model::Schedule;
use rayon::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Past this many grid edges, materialising the trimming table stops
/// paying for itself (δ so small that buckets are near-singletons); the
/// sweep falls back to the exact Pareto DP, which is strictly more
/// accurate.
const MAX_GRID_EDGES: f64 = 4e6;

/// States expanded per parallel chunk (see [`FptasParams::parallel`]).
const PARALLEL_CHUNK: usize = 1024;

/// A small multiply-xor hasher for the packed DP keys: one `wrapping_mul`
/// per written word plus an avalanche on `finish`. Quality is plenty for
/// log-grid bucket tuples and it beats SipHash by a wide margin on this
/// workload.
#[derive(Default)]
pub struct MulXorHasher(u64);

impl Hasher for MulXorHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let mut h = self.0;
        h ^= h >> 32;
        h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        h ^= h >> 32;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.write_u64(v as u64);
        self.write_u64((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<MulXorHasher>>;

/// What to do when a layer's live width exceeds [`FptasParams::state_cap`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CapRelief {
    /// Re-run the sweep with a doubled `ε` (coarser grid, fewer states)
    /// until the width fits or `ε` would exceed `max_eps`; then fail.
    Coarsen {
        /// Ceiling for the coarsened `ε` (callers that must keep a
        /// specific guarantee regime — Algorithm 5 needs `ε ≤ 1` — set it
        /// accordingly).
        max_eps: f64,
    },
    /// Fail immediately with [`FptasError::StateCapExceeded`].
    Fail,
}

/// Tuning knobs for one [`rm_cmax_fptas_with`] run.
#[derive(Clone, Copy, Debug)]
pub struct FptasParams {
    /// Accuracy `ε ∈ [0, 2]`; `0` disables trimming (exact sweep).
    pub eps: f64,
    /// Optional bound on any layer's live width (measured after
    /// dominance filtering — the width that persists as backpointers and
    /// feeds the next layer; the transient mid-layer buffer is bounded by
    /// `cap · m` states). The DP's memory is `O(width · m)` plus
    /// backpointers, so this caps peak RSS. `None` leaves the width
    /// unbounded.
    pub state_cap: Option<usize>,
    /// Behaviour when `state_cap` is hit; irrelevant without a cap.
    pub on_cap: CapRelief,
    /// Incumbent + suffix-bound pruning (and `m ≤ 3` Pareto dominance).
    /// On by default; disable only for A/B measurements.
    pub prune: bool,
    /// Expand layers in parallel chunks with a deterministic merge.
    /// Results are state-for-state identical to the sequential sweep.
    pub parallel: bool,
}

impl FptasParams {
    /// Defaults for accuracy `eps`: no cap, coarsening up to the scheme's
    /// `ε = 2` limit, pruning on, sequential expansion.
    pub fn new(eps: f64) -> Self {
        assert!((0.0..=2.0).contains(&eps), "ε must be in [0, 2], got {eps}");
        FptasParams {
            eps,
            state_cap: None,
            on_cap: CapRelief::Coarsen { max_eps: 2.0 },
            prune: true,
            parallel: false,
        }
    }
}

/// Why an FPTAS run produced no schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FptasError {
    /// A layer outgrew [`FptasParams::state_cap`] and the configured
    /// relief ([`CapRelief`]) was exhausted.
    StateCapExceeded {
        /// The configured cap.
        cap: usize,
        /// The width the layer had reached when the sweep aborted.
        width: usize,
        /// The coarsest `ε` that was attempted.
        eps_reached: f64,
    },
}

impl std::fmt::Display for FptasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FptasError::StateCapExceeded {
                cap,
                width,
                eps_reached,
            } => write!(
                f,
                "FPTAS state cap {cap} exceeded (layer reached {width} states at ε={eps_reached})"
            ),
        }
    }
}

impl std::error::Error for FptasError {}

/// Result of one FPTAS run.
#[derive(Clone, Debug)]
pub struct FptasResult {
    /// The produced schedule (assignment of all jobs).
    pub schedule: Schedule,
    /// Its true makespan (computed from the real loads, not the trimmed
    /// surrogates — the guarantee is `makespan ≤ (1+ε)·OPT`).
    pub makespan: u64,
    /// Peak number of states kept in any layer (the DP's live width,
    /// measured after dominance filtering).
    pub peak_states: usize,
    /// Candidate states generated across the sweep (before dedup).
    pub expanded: u64,
    /// Candidates discarded by the incumbent bound or Pareto dominance.
    pub pruned: u64,
    /// The `ε` the caller asked for.
    pub eps_requested: f64,
    /// The `ε` the returned guarantee actually carries — larger than
    /// `eps_requested` only when a state cap forced coarsening.
    pub eps_effective: f64,
}

/// Runs the FPTAS on an `m × n` unrelated-times matrix, `ε ∈ [0, 2]`.
///
/// `ε = 0` disables trimming: the result is exactly optimal (pseudo-
/// polynomial time/space — caller's responsibility to keep sums small).
pub fn rm_cmax_fptas(times: &[Vec<u64>], eps: f64) -> FptasResult {
    rm_cmax_fptas_with(times, &FptasParams::new(eps)).expect("infallible without a state cap")
}

/// Exact `Rm || C_max` via the untrimmed Pareto sweep (`ε = 0`).
pub fn rm_cmax_exact(times: &[Vec<u64>]) -> FptasResult {
    rm_cmax_fptas(times, 0.0)
}

/// The fully-parameterised FPTAS entry point.
///
/// The returned makespan is the better of the DP's best surviving final
/// state and the greedy incumbent, which keeps the pruning guarantee-
/// preserving: when the incumbent `UB ≥ (1+ε)·OPT`, the trimming
/// analysis's witness path has every prefix bound `≤ (1+ε)·OPT ≤ UB` and
/// is never pruned; when `UB < (1+ε)·OPT`, the incumbent itself already
/// beats the promise.
pub fn rm_cmax_fptas_with(
    times: &[Vec<u64>],
    params: &FptasParams,
) -> Result<FptasResult, FptasError> {
    let m = times.len();
    assert!(m >= 1, "at least one machine");
    assert!(
        (0.0..=2.0).contains(&params.eps),
        "ε must be in [0, 2], got {}",
        params.eps
    );
    let n = times[0].len();
    assert!(times.iter().all(|row| row.len() == n), "ragged matrix");

    if n == 0 {
        return Ok(FptasResult {
            schedule: Schedule::new(Vec::new()),
            makespan: 0,
            peak_states: 1,
            expanded: 0,
            pruned: 0,
            eps_requested: params.eps,
            eps_effective: params.eps,
        });
    }

    let incumbent = greedy_incumbent(times, m, n);
    let suffix_min = suffix_min_sums(times, m, n);

    let mut eps_eff = params.eps;
    loop {
        match sweep(times, m, n, eps_eff, params, &incumbent, &suffix_min) {
            Ok(mut result) => {
                result.eps_requested = params.eps;
                result.eps_effective = eps_eff;
                return Ok(result);
            }
            Err(width) => {
                let cap = params.state_cap.expect("only a cap aborts the sweep");
                let next = match params.on_cap {
                    CapRelief::Fail => None,
                    CapRelief::Coarsen { max_eps } => {
                        let doubled = if eps_eff <= 0.0 {
                            0.0625
                        } else {
                            eps_eff * 2.0
                        };
                        (doubled.min(max_eps) > eps_eff).then(|| doubled.min(max_eps))
                    }
                };
                match next {
                    Some(e) => eps_eff = e,
                    None => {
                        return Err(FptasError::StateCapExceeded {
                            cap,
                            width,
                            eps_reached: eps_eff,
                        })
                    }
                }
            }
        }
    }
}

/// True makespan of an assignment under a times matrix.
pub fn makespan_of(times: &[Vec<u64>], assignment: &[u32]) -> u64 {
    let mut loads = vec![0u64; times.len()];
    for (j, &i) in assignment.iter().enumerate() {
        loads[i as usize] += times[i as usize][j];
    }
    loads.into_iter().max().unwrap_or(0)
}

/// The greedy upper bound seeding the pruning threshold: jobs in LPT
/// order of their row minima, each to the machine minimising its
/// resulting load. Any feasible assignment is a valid bound; this one is
/// cheap (`O(n(m + log n))`) and usually tight enough to matter.
struct Incumbent {
    assignment: Vec<u32>,
    makespan: u64,
}

fn greedy_incumbent(times: &[Vec<u64>], m: usize, n: usize) -> Incumbent {
    let row_min = |j: usize| (0..m).map(|i| times[i][j]).min().expect("m >= 1");
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        row_min(b as usize)
            .cmp(&row_min(a as usize))
            .then(a.cmp(&b))
    });
    let mut loads = vec![0u64; m];
    let mut assignment = vec![0u32; n];
    for &j in &order {
        let best = (0..m)
            .min_by_key(|&i| (loads[i] + times[i][j as usize], i))
            .expect("m >= 1");
        loads[best] += times[best][j as usize];
        assignment[j as usize] = best as u32;
    }
    Incumbent {
        assignment,
        makespan: loads.into_iter().max().expect("m >= 1"),
    }
}

/// `suffix_min[j] = Σ_{k ≥ j} min_i times[i][k]` — every yet-unassigned
/// job adds at least its row minimum to *some* machine, so
/// `(Σ loads + suffix_min[j]) / m` lower-bounds any completion's max.
fn suffix_min_sums(times: &[Vec<u64>], m: usize, n: usize) -> Vec<u64> {
    let mut suffix = vec![0u64; n + 1];
    for j in (0..n).rev() {
        let mn = (0..m).map(|i| times[i][j]).min().expect("m >= 1");
        suffix[j] = suffix[j + 1] + mn;
    }
    suffix
}

/// How the first `m−1` coordinates become a dedup key.
trait Keyer: Sync {
    /// The key type (packed word or boxed tuple).
    type Key: Eq + Hash + Clone + Send;
    /// Builds the key from the raw (untrimmed) prefix coordinates.
    fn key(&self, prefix: &[u64]) -> Self::Key;
}

/// Grid-or-identity view shared by both key schemes.
enum Coords<'a> {
    Grid(&'a BucketGrid),
    Exact,
}

impl Coords<'_> {
    #[inline]
    fn map(&self, load: u64) -> u64 {
        match self {
            Coords::Grid(g) => g.bucket(load),
            Coords::Exact => load,
        }
    }
}

/// Packs the (bucketed) prefix into a single `u128`, `bits` bits per
/// coordinate — the no-allocation fast path.
struct PackedKeyer<'a> {
    coords: Coords<'a>,
    bits: u32,
}

impl Keyer for PackedKeyer<'_> {
    type Key = u128;
    #[inline]
    fn key(&self, prefix: &[u64]) -> u128 {
        let mut k: u128 = 0;
        for &l in prefix {
            k = (k << self.bits) | self.coords.map(l) as u128;
        }
        k
    }
}

/// Tuple fallback for the (rare) shapes whose packed key would not fit
/// 128 bits; allocates one boxed slice per surviving candidate.
struct TupleKeyer<'a> {
    coords: Coords<'a>,
}

impl Keyer for TupleKeyer<'_> {
    type Key = Box<[u64]>;
    #[inline]
    fn key(&self, prefix: &[u64]) -> Box<[u64]> {
        prefix.iter().map(|&l| self.coords.map(l)).collect()
    }
}

/// Compact per-layer backpointers — all that survives a layer once the
/// next one is expanded.
struct Back {
    parent: Vec<u32>,
    machine: Vec<u8>,
}

/// One candidate accepted into a layer under construction.
struct LayerBufs {
    loads: Vec<u64>,
    parent: Vec<u32>,
    machine: Vec<u8>,
}

impl LayerBufs {
    fn clear(&mut self) {
        self.loads.clear();
        self.parent.clear();
        self.machine.clear();
    }

    fn len(&self) -> usize {
        self.parent.len()
    }

    fn push(&mut self, loads: &[u64], parent: u32, machine: u8) {
        self.loads.extend_from_slice(loads);
        self.parent.push(parent);
        self.machine.push(machine);
    }
}

/// One full sweep at a fixed effective `ε`. `Err(width)` reports a state-
/// cap abort (the caller decides whether to coarsen or fail).
#[allow(clippy::too_many_arguments)]
fn sweep(
    times: &[Vec<u64>],
    m: usize,
    n: usize,
    eps: f64,
    params: &FptasParams,
    incumbent: &Incumbent,
    suffix_min: &[u64],
) -> Result<FptasResult, usize> {
    let delta = eps / (2.0 * n as f64);
    let ub = incumbent.makespan;
    // Loads above the largest value the sweep can keep never need a
    // bucket: with pruning everything past `ub` dies first; without it
    // the worst reachable coordinate is the heaviest row sum.
    let max_kept_load = if params.prune {
        ub
    } else {
        (0..m)
            .map(|i| times[i].iter().sum::<u64>())
            .max()
            .expect("m >= 1")
    };
    let grid = if delta > 0.0 && BucketGrid::projected_edges(delta, max_kept_load) <= MAX_GRID_EDGES
    {
        Some(BucketGrid::new(delta, max_kept_load))
    } else {
        // δ = 0 (exact mode) — or a grid so fine it would be pointless to
        // materialise; the exact sweep is strictly more accurate.
        None
    };

    // Key packing: with `b` bits per (bucketed) coordinate the m−1 prefix
    // coordinates need (m−1)·b ≤ 128 bits; always true for m ≤ 3.
    let coord_bound = grid
        .as_ref()
        .map(|g| g.max_bucket())
        .unwrap_or(max_kept_load)
        .max(1);
    let bits = 64 - coord_bound.leading_zeros();
    if (m as u32 - 1) * bits <= 128 {
        let keyer = PackedKeyer {
            coords: grid.as_ref().map(Coords::Grid).unwrap_or(Coords::Exact),
            bits,
        };
        sweep_keyed(times, m, n, params, incumbent, suffix_min, &keyer)
    } else {
        let keyer = TupleKeyer {
            coords: grid.as_ref().map(Coords::Grid).unwrap_or(Coords::Exact),
        };
        sweep_keyed(times, m, n, params, incumbent, suffix_min, &keyer)
    }
}

#[allow(clippy::too_many_arguments)]
fn sweep_keyed<K: Keyer>(
    times: &[Vec<u64>],
    m: usize,
    n: usize,
    params: &FptasParams,
    incumbent: &Incumbent,
    suffix_min: &[u64],
    keyer: &K,
) -> Result<FptasResult, usize> {
    let cap = params.state_cap.unwrap_or(usize::MAX);
    // A layer under construction may transiently exceed the cap before
    // dominance filtering shrinks it; expansion only aborts past this
    // hard ceiling (each of the ≤ cap parent states spawns ≤ m children).
    let transient_cap = cap.saturating_mul(m);
    let ub = incumbent.makespan;
    let mut expanded = 0u64;
    let mut pruned = 0u64;
    let mut peak_states = 1usize;

    // Ping-pong load arenas; `backs` holds the compact traceback chain.
    let mut prev_loads: Vec<u64> = vec![0u64; m];
    let mut prev_width = 1usize;
    let mut cur = LayerBufs {
        loads: Vec::new(),
        parent: Vec::new(),
        machine: Vec::new(),
    };
    let mut backs: Vec<Back> = Vec::with_capacity(n);
    let mut seen: FastMap<K::Key, u32> = FastMap::default();
    let mut scratch = vec![0u64; m];
    let mut pareto_ws = ParetoScratch::default();

    for j in 0..n {
        seen.clear();
        cur.clear();
        let filled = if params.parallel && prev_width > 1 {
            expand_parallel(
                times,
                m,
                j,
                params,
                ub,
                suffix_min,
                keyer,
                (&prev_loads, prev_width),
                &mut cur,
                &mut seen,
                transient_cap,
                &mut expanded,
                &mut pruned,
            )
        } else {
            expand_sequential(
                times,
                m,
                j,
                params,
                ub,
                suffix_min,
                keyer,
                (&prev_loads, prev_width),
                &mut cur,
                &mut seen,
                &mut scratch,
                transient_cap,
                &mut expanded,
                &mut pruned,
            )
        };
        if !filled {
            return Err(cur.len());
        }
        if params.prune && m <= 3 && cur.len() > 1 {
            pruned += pareto_filter(&mut cur, m, &mut pareto_ws) as u64;
        }
        if cur.len() > cap {
            return Err(cur.len());
        }
        if cur.len() == 0 {
            // Everything died against the incumbent: the greedy schedule
            // is the answer (and within the guarantee — see
            // `rm_cmax_fptas_with`).
            return Ok(incumbent_result(incumbent, peak_states, expanded, pruned));
        }
        peak_states = peak_states.max(cur.len());
        // One counter sample per layer (~n per sweep): the DP's live
        // width over time, the flight recorder's view of state growth.
        bisched_obs::counter("fptas_layer_width", "fptas", cur.len() as u64);
        prev_width = cur.len();
        backs.push(Back {
            parent: std::mem::take(&mut cur.parent),
            machine: std::mem::take(&mut cur.machine),
        });
        std::mem::swap(&mut prev_loads, &mut cur.loads);
    }

    // Pick the final state minimising the max coordinate.
    let mut best_idx = 0usize;
    let mut best_val = u64::MAX;
    for s in 0..prev_width {
        let mx = *prev_loads[s * m..(s + 1) * m].iter().max().expect("m >= 1");
        if mx < best_val {
            best_val = mx;
            best_idx = s;
        }
    }

    if incumbent.makespan < best_val {
        return Ok(incumbent_result(incumbent, peak_states, expanded, pruned));
    }

    // Walk parents to recover the assignment.
    let mut assignment = vec![0u32; n];
    let mut idx = best_idx;
    for j in (0..n).rev() {
        let back = &backs[j];
        assignment[j] = back.machine[idx] as u32;
        idx = back.parent[idx] as usize;
    }
    Ok(FptasResult {
        schedule: Schedule::new(assignment),
        makespan: best_val,
        peak_states,
        expanded,
        pruned,
        eps_requested: 0.0,
        eps_effective: 0.0,
    })
}

fn incumbent_result(
    incumbent: &Incumbent,
    peak_states: usize,
    expanded: u64,
    pruned: u64,
) -> FptasResult {
    FptasResult {
        schedule: Schedule::new(incumbent.assignment.clone()),
        makespan: incumbent.makespan,
        peak_states,
        expanded,
        pruned,
        eps_requested: 0.0,
        eps_effective: 0.0,
    }
}

/// Incumbent + suffix pruning test for the candidate in `scratch`.
/// Returns `true` when the candidate can still beat `ub`.
#[inline]
fn candidate_alive(scratch: &[u64], m: usize, ub: u64, remaining_min: u64) -> bool {
    let mut mx = 0u64;
    let mut sum = 0u64;
    for &l in scratch {
        mx = mx.max(l);
        sum += l;
    }
    if mx > ub {
        return false;
    }
    // Fractional completion bound: the remaining jobs add at least their
    // row minima somewhere, and the final max is at least the average.
    let bound = (sum + remaining_min).div_ceil(m as u64);
    bound <= ub
}

/// The one dedup rule every expansion path shares: the first occupant of
/// a bucket wins; a later candidate replaces it iff its last coordinate
/// is strictly smaller. Sequential expansion, the parallel chunks' local
/// dedup, and the chunk merge all go through this single function — the
/// parallel path's state-for-state identity with the sequential sweep
/// (and hence `fptas_parallel`'s exclusion from the service cache key)
/// rests on there being exactly one copy of the rule.
///
/// `keys_out`, when given, records the key of every *newly inserted*
/// state in insertion order (what the chunk merge replays).
#[inline]
#[allow(clippy::too_many_arguments)]
fn insert_candidate<Key: Eq + Hash + Clone>(
    key: Key,
    seen: &mut FastMap<Key, u32>,
    cur: &mut LayerBufs,
    loads: &[u64],
    m: usize,
    parent: u32,
    machine: u8,
    keys_out: Option<&mut Vec<Key>>,
) {
    match seen.entry(key) {
        std::collections::hash_map::Entry::Vacant(e) => {
            let idx = cur.len();
            debug_assert!(idx < u32::MAX as usize, "layer width must fit u32");
            cur.push(loads, parent, machine);
            if let Some(keys) = keys_out {
                keys.push(e.key().clone());
            }
            e.insert(idx as u32);
        }
        std::collections::hash_map::Entry::Occupied(e) => {
            let idx = *e.get() as usize;
            if loads[m - 1] < cur.loads[idx * m + (m - 1)] {
                cur.loads[idx * m..(idx + 1) * m].copy_from_slice(loads);
                cur.parent[idx] = parent;
                cur.machine[idx] = machine;
            }
        }
    }
}

/// Sequential layer expansion; returns `false` on a cap abort.
#[allow(clippy::too_many_arguments)]
fn expand_sequential<K: Keyer>(
    times: &[Vec<u64>],
    m: usize,
    j: usize,
    params: &FptasParams,
    ub: u64,
    suffix_min: &[u64],
    keyer: &K,
    (prev_loads, prev_width): (&[u64], usize),
    cur: &mut LayerBufs,
    seen: &mut FastMap<K::Key, u32>,
    scratch: &mut [u64],
    cap: usize,
    expanded: &mut u64,
    pruned: &mut u64,
) -> bool {
    let remaining_min = suffix_min[j + 1];
    for s in 0..prev_width {
        let base = &prev_loads[s * m..(s + 1) * m];
        for i in 0..m {
            *expanded += 1;
            scratch.copy_from_slice(base);
            scratch[i] += times[i][j];
            if params.prune && !candidate_alive(scratch, m, ub, remaining_min) {
                *pruned += 1;
                continue;
            }
            let key = keyer.key(&scratch[..m - 1]);
            insert_candidate(key, seen, cur, scratch, m, s as u32, i as u8, None);
            if cur.len() > cap {
                return false;
            }
        }
    }
    true
}

/// Chunked expansion with a deterministic, order-preserving merge: chunk
/// `c` covers previous-layer states `[c·CHUNK, (c+1)·CHUNK)`, each chunk
/// dedups locally, and chunks merge in index order under the same
/// replace-iff-strictly-smaller rule — so the final layer (contents *and*
/// insertion order) is identical to the sequential expansion.
#[allow(clippy::too_many_arguments)]
fn expand_parallel<K: Keyer>(
    times: &[Vec<u64>],
    m: usize,
    j: usize,
    params: &FptasParams,
    ub: u64,
    suffix_min: &[u64],
    keyer: &K,
    (prev_loads, prev_width): (&[u64], usize),
    cur: &mut LayerBufs,
    seen: &mut FastMap<K::Key, u32>,
    cap: usize,
    expanded: &mut u64,
    pruned: &mut u64,
) -> bool {
    struct Piece<Key> {
        keys: Vec<Key>,
        bufs: LayerBufs,
        expanded: u64,
        pruned: u64,
    }

    let remaining_min = suffix_min[j + 1];
    let starts: Vec<usize> = (0..prev_width).step_by(PARALLEL_CHUNK).collect();
    let pieces: Vec<Piece<K::Key>> = starts
        .into_par_iter()
        .map(|start| {
            let end = (start + PARALLEL_CHUNK).min(prev_width);
            let mut piece = Piece {
                keys: Vec::new(),
                bufs: LayerBufs {
                    loads: Vec::new(),
                    parent: Vec::new(),
                    machine: Vec::new(),
                },
                expanded: 0,
                pruned: 0,
            };
            let mut local: FastMap<K::Key, u32> = FastMap::default();
            let mut scratch = vec![0u64; m];
            for s in start..end {
                let base = &prev_loads[s * m..(s + 1) * m];
                for i in 0..m {
                    piece.expanded += 1;
                    scratch.copy_from_slice(base);
                    scratch[i] += times[i][j];
                    if params.prune && !candidate_alive(&scratch, m, ub, remaining_min) {
                        piece.pruned += 1;
                        continue;
                    }
                    let key = keyer.key(&scratch[..m - 1]);
                    insert_candidate(
                        key,
                        &mut local,
                        &mut piece.bufs,
                        &scratch,
                        m,
                        s as u32,
                        i as u8,
                        Some(&mut piece.keys),
                    );
                }
            }
            piece
        })
        .collect();

    for piece in pieces {
        *expanded += piece.expanded;
        *pruned += piece.pruned;
        for idx in 0..piece.bufs.len() {
            let loads = &piece.bufs.loads[idx * m..(idx + 1) * m];
            insert_candidate(
                piece.keys[idx].clone(),
                seen,
                cur,
                loads,
                m,
                piece.bufs.parent[idx],
                piece.bufs.machine[idx],
                None,
            );
            if cur.len() > cap {
                return false;
            }
        }
    }
    true
}

/// Reusable working memory for [`pareto_filter`] — allocated once per
/// sweep and cleared per layer, like the bucket map and load scratch.
#[derive(Default)]
struct ParetoScratch {
    order: Vec<u32>,
    keep: Vec<bool>,
    stair: BTreeMap<u64, u64>,
    evict: Vec<u64>,
}

/// Coordinate-wise Pareto dominance filter for `m ≤ 3`: drops every state
/// some other state dominates (all coordinates `≤`). Safe under trimming
/// — if the analysis's witness is dominated, the dominator is an at-
/// least-as-good witness. Returns how many states were dropped; survivors
/// keep their original relative order.
fn pareto_filter(cur: &mut LayerBufs, m: usize, ws: &mut ParetoScratch) -> usize {
    let len = cur.len();
    ws.order.clear();
    ws.order.extend(0..len as u32);
    let coord = |s: u32, c: usize| cur.loads[s as usize * m + c];
    ws.order.sort_unstable_by(|&a, &b| {
        (0..m)
            .map(|c| coord(a, c).cmp(&coord(b, c)))
            .fold(std::cmp::Ordering::Equal, |acc, o| acc.then(o))
            .then(a.cmp(&b))
    });

    ws.keep.clear();
    ws.keep.resize(len, true);
    match m {
        1 => {
            // Only the (unique) minimum survives.
            for &s in &ws.order[1..] {
                ws.keep[s as usize] = false;
            }
        }
        2 => {
            let mut best_l1 = u64::MAX;
            for &s in &ws.order {
                let l1 = coord(s, 1);
                if l1 < best_l1 {
                    best_l1 = l1;
                } else {
                    ws.keep[s as usize] = false;
                }
            }
        }
        3 => {
            // Staircase over (l1 → l2) among already-accepted states
            // (their l0 is ≤ by sort order): the candidate is dominated
            // iff the largest staircase key ≤ its l1 carries an l2 ≤ its
            // own. Values strictly decrease along keys, so one probe
            // suffices; dominated entries are evicted to keep it so.
            ws.stair.clear();
            for &s in &ws.order {
                let (l1, l2) = (coord(s, 1), coord(s, 2));
                if let Some((_, &v)) = ws.stair.range(..=l1).next_back() {
                    if v <= l2 {
                        ws.keep[s as usize] = false;
                        continue;
                    }
                }
                ws.evict.clear();
                ws.evict.extend(
                    ws.stair
                        .range(l1..)
                        .take_while(|&(_, &v)| v >= l2)
                        .map(|(&k, _)| k),
                );
                for k in &ws.evict {
                    ws.stair.remove(k);
                }
                ws.stair.insert(l1, l2);
            }
        }
        _ => return 0,
    }

    let mut write = 0usize;
    for (read, &kept) in ws.keep.iter().enumerate() {
        if kept {
            if write != read {
                cur.loads.copy_within(read * m..(read + 1) * m, write * m);
                cur.parent[write] = cur.parent[read];
                cur.machine[write] = cur.machine[read];
            }
            write += 1;
        }
    }
    cur.loads.truncate(write * m);
    cur.parent.truncate(write);
    cur.machine.truncate(write);
    len - write
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Brute force over all m^n assignments.
    #[allow(clippy::needless_range_loop)]
    fn brute(times: &[Vec<u64>]) -> u64 {
        let m = times.len();
        let n = times[0].len();
        let mut best = u64::MAX;
        let total = (m as u64).pow(n as u32);
        for code in 0..total {
            let mut c = code;
            let mut loads = vec![0u64; m];
            for j in 0..n {
                let i = (c % m as u64) as usize;
                c /= m as u64;
                loads[i] += times[i][j];
            }
            best = best.min(loads.iter().copied().max().unwrap());
        }
        best
    }

    #[test]
    fn empty_and_trivial() {
        let r = rm_cmax_fptas(&[vec![], vec![]], 0.5);
        assert_eq!(r.makespan, 0);
        let r1 = rm_cmax_exact(&[vec![7]]);
        assert_eq!(r1.makespan, 7);
    }

    #[test]
    fn single_machine_sums_everything() {
        let r = rm_cmax_exact(&[vec![3, 4, 5]]);
        assert_eq!(r.makespan, 12);
        assert_eq!(r.schedule.assignment(), &[0, 0, 0]);
    }

    #[test]
    fn exact_mode_matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..30 {
            let m = rng.gen_range(2..=3);
            let n = rng.gen_range(1..=8);
            let times: Vec<Vec<u64>> = (0..m)
                .map(|_| (0..n).map(|_| rng.gen_range(1..=15)).collect())
                .collect();
            let r = rm_cmax_exact(&times);
            assert_eq!(r.makespan, brute(&times), "times={times:?}");
            assert_eq!(makespan_of(&times, r.schedule.assignment()), r.makespan);
        }
    }

    #[test]
    fn fptas_respects_guarantee() {
        let mut rng = StdRng::seed_from_u64(31);
        for &eps in &[0.05, 0.1, 0.3, 0.5, 1.0, 2.0] {
            for _ in 0..10 {
                let m = rng.gen_range(2..=3);
                let n = rng.gen_range(2..=8);
                let times: Vec<Vec<u64>> = (0..m)
                    .map(|_| (0..n).map(|_| rng.gen_range(1..=100)).collect())
                    .collect();
                let opt = brute(&times);
                let r = rm_cmax_fptas(&times, eps);
                assert_eq!(
                    makespan_of(&times, r.schedule.assignment()),
                    r.makespan,
                    "reported makespan must be the schedule's true makespan"
                );
                assert!(
                    r.makespan as f64 <= (1.0 + eps) * opt as f64 + 1e-9,
                    "ε={eps}: got {} vs opt {opt}",
                    r.makespan
                );
            }
        }
    }

    #[test]
    fn trimming_reduces_states() {
        let mut rng = StdRng::seed_from_u64(37);
        // Large spread so the exact Pareto set is wide. Pruning is
        // disabled on both runs to isolate the trimming effect (the
        // incumbent bound alone already collapses this instance to a
        // handful of states).
        let times: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..14).map(|_| rng.gen_range(1000..=100_000)).collect())
            .collect();
        let mut exact_params = FptasParams::new(0.0);
        exact_params.prune = false;
        let mut coarse_params = FptasParams::new(1.0);
        coarse_params.prune = false;
        let exact = rm_cmax_fptas_with(&times, &exact_params).unwrap();
        let coarse = rm_cmax_fptas_with(&times, &coarse_params).unwrap();
        assert!(
            coarse.peak_states < exact.peak_states,
            "trimming should shrink the state set: {} vs {}",
            coarse.peak_states,
            exact.peak_states
        );
        assert!(coarse.makespan as f64 <= 2.0 * exact.makespan as f64);
        // And pruning shrinks it further still without hurting quality.
        let pruned = rm_cmax_fptas(&times, 1.0);
        assert!(pruned.peak_states <= coarse.peak_states);
        assert!(pruned.makespan as f64 <= 2.0 * exact.makespan as f64);
    }

    #[test]
    fn forced_assignment_via_huge_penalty() {
        // Algorithm 5's guard jobs: absurd cost on the wrong machine pins
        // a job. Verify the DP never pays the penalty when avoidable.
        let big = 1_000_000u64;
        let times = vec![vec![5, big, 3], vec![big, 4, 3]];
        let r = rm_cmax_exact(&times);
        assert_eq!(r.schedule.machine_of(0), 0);
        assert_eq!(r.schedule.machine_of(1), 1);
        assert!(r.makespan < big);
    }

    #[test]
    fn eps_one_is_paper_s1_mode() {
        // Algorithm 1 uses Algorithm 5 with ε = 1 (a 2-approximation).
        let times = vec![vec![10, 10, 10, 10], vec![10, 10, 10, 10]];
        let r = rm_cmax_fptas(&times, 1.0);
        assert!(r.makespan <= 40); // trivially feasible
        assert!(r.makespan <= 2 * 20); // 2 * OPT
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_rejected() {
        rm_cmax_fptas(&[vec![1, 2], vec![1]], 0.1);
    }

    #[test]
    fn counters_are_coherent() {
        let mut rng = StdRng::seed_from_u64(43);
        let times: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..12).map(|_| rng.gen_range(1..=500)).collect())
            .collect();
        let r = rm_cmax_fptas(&times, 0.25);
        assert!(r.expanded > 0);
        assert!(r.pruned <= r.expanded);
        assert_eq!(r.eps_requested, 0.25);
        assert_eq!(r.eps_effective, 0.25);
    }

    #[test]
    fn state_cap_fail_is_typed() {
        let mut rng = StdRng::seed_from_u64(47);
        let times: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..16).map(|_| rng.gen_range(1000..=100_000)).collect())
            .collect();
        let mut params = FptasParams::new(0.0);
        params.state_cap = Some(4);
        params.on_cap = CapRelief::Fail;
        match rm_cmax_fptas_with(&times, &params) {
            Err(FptasError::StateCapExceeded { cap, width, .. }) => {
                assert_eq!(cap, 4);
                assert!(width > 4);
            }
            other => panic!("expected a state-cap error, got {other:?}"),
        }
    }

    #[test]
    fn state_cap_coarsens_gracefully() {
        // Pruning alone collapses this instance, so it is disabled here:
        // the point is the cap → coarsen → retry loop, which needs the
        // width to actually scale with ε.
        let mut rng = StdRng::seed_from_u64(53);
        let times: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..16).map(|_| rng.gen_range(1000..=100_000)).collect())
            .collect();
        let unpruned = |eps: f64| {
            let mut p = FptasParams::new(eps);
            p.prune = false;
            p
        };
        let wide = rm_cmax_fptas_with(&times, &unpruned(0.05)).unwrap();
        let mut params = unpruned(0.05);
        // A cap the requested ε cannot meet but a coarsened one can.
        let cap = rm_cmax_fptas_with(&times, &unpruned(1.0))
            .unwrap()
            .peak_states;
        assert!(cap < wide.peak_states);
        params.state_cap = Some(cap);
        let r = rm_cmax_fptas_with(&times, &params).expect("coarsening relieves the cap");
        assert!(r.eps_effective > r.eps_requested);
        assert!(r.eps_effective <= 2.0);
        assert!(r.peak_states <= cap);
        // The coarser run still honours the *effective* guarantee.
        let exact = rm_cmax_exact(&times).makespan;
        assert!(r.makespan as f64 <= (1.0 + r.eps_effective) * exact as f64 + 1e-9);
    }

    #[test]
    fn parallel_expansion_is_identical() {
        // The identity claim justifies excluding `fptas_parallel` from
        // the service cache key, so the *multi-chunk* merge must really
        // run: pruning is disabled on the exact/fine rungs (the incumbent
        // bound would collapse layers below PARALLEL_CHUNK and leave only
        // the trivial single-chunk case), and the exact rung asserts the
        // width actually spans several chunks.
        let mut rng = StdRng::seed_from_u64(59);
        let times: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..18).map(|_| rng.gen_range(1..=1_000_000)).collect())
            .collect();
        for &(eps, prune) in &[(0.0, false), (0.05, false), (0.2, true), (1.0, true)] {
            let mut seq_params = FptasParams::new(eps);
            seq_params.prune = prune;
            let mut par_params = seq_params;
            par_params.parallel = true;
            let seq = rm_cmax_fptas_with(&times, &seq_params).unwrap();
            let par = rm_cmax_fptas_with(&times, &par_params).unwrap();
            assert_eq!(
                seq.schedule.assignment(),
                par.schedule.assignment(),
                "ε={eps} prune={prune}: parallel merge must reproduce the sequential sweep"
            );
            assert_eq!(seq.makespan, par.makespan);
            assert_eq!(seq.peak_states, par.peak_states);
            if eps == 0.0 {
                assert!(
                    seq.peak_states > PARALLEL_CHUNK,
                    "layer widths must span several chunks to exercise the merge, got {}",
                    seq.peak_states
                );
            }
        }
    }
}
