//! # bisched-fptas
//!
//! FPTAS substrate for `Rm || C_max` with a fixed number of unrelated
//! machines — the black box the paper borrows from Jansen–Porkolab [15]
//! inside Algorithm 5 (FPTAS for `R2 | G = bipartite | C_max`) and
//! Theorem 4 (`O(n³)` exact algorithm for `Q2 | G = bipartite, p_j=1`).
//!
//! Implemented as a Horowitz–Sahni Pareto sweep with `(1+ε/2n)` log-grid
//! trimming (see DESIGN.md §2.3 for the substitution rationale). `ε = 0`
//! yields the exact pseudo-polynomial Pareto DP.

#![warn(missing_docs)]

pub mod rm_cmax;

pub use rm_cmax::{makespan_of, rm_cmax_exact, rm_cmax_fptas, FptasResult};
