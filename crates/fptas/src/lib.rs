//! # bisched-fptas
//!
//! FPTAS substrate for `Rm || C_max` with a fixed number of unrelated
//! machines — the black box the paper borrows from Jansen–Porkolab [15]
//! inside Algorithm 5 (FPTAS for `R2 | G = bipartite | C_max`) and
//! Theorem 4 (`O(n³)` exact algorithm for `Q2 | G = bipartite, p_j=1`).
//!
//! Implemented as a Horowitz–Sahni Pareto sweep with `(1+ε/2n)` log-grid
//! trimming (see DESIGN.md §2.3 for the substitution rationale). `ε = 0`
//! yields the exact pseudo-polynomial Pareto DP.
//!
//! The sweep is the hot path under nearly every `Auto` solve, so it runs
//! as a packed-key, pruned, streaming DP: coordinates pack into one
//! `u128` hashed by an in-crate multiply-xor hasher, a greedy incumbent
//! plus suffix lower bounds kill hopeless states, `m ≤ 3` layers get a
//! Pareto-dominance filter, and load arenas stream (only compact
//! backpointers are retained per layer). [`rm_cmax_fptas_with`] exposes
//! the knobs: a [`state_cap`](FptasParams::state_cap) bounding any
//! layer's width (with graceful ε-coarsening or a typed
//! [`FptasError`]), pruning and parallel-expansion toggles. Bucketing is
//! the monotone integer grid of [`bucket::BucketGrid`].

#![warn(missing_docs)]
// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
pub mod bucket;
pub mod rm_cmax;

pub use bucket::BucketGrid;
pub use rm_cmax::{
    makespan_of, rm_cmax_exact, rm_cmax_fptas, rm_cmax_fptas_with, CapRelief, FptasError,
    FptasParams, FptasResult,
};
