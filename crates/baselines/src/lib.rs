//! # bisched-baselines
//!
//! Prior-art and naive baselines for the `bisched` experiments:
//!
//! * [`greedy::greedy_lpt`] — graph-aware LPT greedy with a 2-coloring
//!   fallback, for all three machine environments;
//! * [`greedy::coloring_split`] — the trivial "two classes, two machines"
//!   floor;
//! * [`bjw::bjw_two_approx`] — Bodlaender–Jansen–Woeginger-style
//!   2-approximation for `P | G = bipartite | C_max`, `m ≥ 3` (the prior
//!   result the paper's Algorithm 1 generalizes to uniform machines).

#![warn(missing_docs)]
// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
pub mod bjw;
pub mod greedy;

pub use bjw::bjw_two_approx;
pub use greedy::{coloring_split, greedy_lpt, BaselineError};
