//! Graph-aware greedy list scheduling — the "what a practitioner would try
//! first" baseline for all three machine environments.
//!
//! Jobs are taken in LPT order; each goes to the compatible machine that
//! finishes it earliest. On `P`/`Q` the LPT key is `p_j`; on `R`, where no
//! single processing time exists, it is the per-job **row minimum**
//! `min_i p_{i,j}` that [`Instance::processing`] already stores (the
//! graph-blind weight every lower bound in the workspace uses too).
//! Greedy can paint itself into a corner (every machine blocked by a
//! neighbor), so on bipartite graphs it falls back to the trivial
//! 2-coloring split over the two fastest machines, which is always
//! feasible for `m ≥ 2`.
//!
//! The compatibility test reuses [`bisched_exact::BitSet`]: one conflict
//! mask per job (its neighborhood) and one job-set per machine make "does
//! job `j` conflict with machine `i`" a few word ANDs, replacing the seed's
//! per-(job, machine) neighbor scan (`O(n·m·deg)` pointer chasing becomes
//! `O(n·m·⌈n/64⌉)` streaming words — the same trade the branch-and-bound
//! oracle made in PR 4).

use bisched_exact::BitSet;
use bisched_graph::{bipartition, Side};
use bisched_model::{Instance, MachineEnvironment, MachineId, Rat, Schedule};

/// Why a baseline could not produce a schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaselineError {
    /// The graph is not bipartite and greedy dead-ended.
    Stuck,
    /// Fewer machines than the baseline requires.
    TooFewMachines {
        /// Machines required.
        need: usize,
        /// Machines available.
        got: usize,
    },
    /// The incompatibility graph is not bipartite (needed for fallback).
    NotBipartite,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Stuck => write!(f, "greedy dead-ended with no fallback"),
            BaselineError::TooFewMachines { need, got } => {
                write!(f, "baseline needs {need} machines, instance has {got}")
            }
            BaselineError::NotBipartite => write!(f, "incompatibility graph is not bipartite"),
        }
    }
}

impl std::error::Error for BaselineError {}

fn job_cost(inst: &Instance, i: MachineId, j: u32) -> u64 {
    match inst.env() {
        MachineEnvironment::Unrelated { times } => times[i as usize][j as usize],
        _ => inst.processing(j),
    }
}

fn completion_if(inst: &Instance, loads: &[u64], i: MachineId, j: u32) -> Rat {
    let new_load = loads[i as usize] + job_cost(inst, i, j);
    match inst.env() {
        MachineEnvironment::Uniform { speeds } => Rat::new(new_load, speeds[i as usize]),
        _ => Rat::integer(new_load),
    }
}

/// Graph-aware LPT greedy with 2-coloring fallback. Works for `P`, `Q`,
/// and `R` environments (on `R` the LPT order is by the row minima that
/// [`Instance::processing`] stores).
pub fn greedy_lpt(inst: &Instance) -> Result<Schedule, BaselineError> {
    let n = inst.num_jobs();
    let m = inst.num_machines() as MachineId;
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| inst.processing(b).cmp(&inst.processing(a)).then(a.cmp(&b)));

    // Per-job conflict masks (neighborhoods) and per-machine job sets:
    // "some neighbor of j sits on machine i" is one bitset intersection.
    let mut conflict_mask: Vec<BitSet> = Vec::with_capacity(n);
    for j in 0..n as u32 {
        let mut mask = BitSet::new(n);
        for &u in inst.graph().neighbors(j) {
            mask.set(u as usize);
        }
        conflict_mask.push(mask);
    }
    let mut on_machine: Vec<BitSet> = vec![BitSet::new(n); m as usize];

    let mut assignment = vec![u32::MAX; n];
    let mut loads = vec![0u64; m as usize];
    for &j in &order {
        let mut best: Option<(Rat, MachineId)> = None;
        for i in 0..m {
            if conflict_mask[j as usize].intersects(&on_machine[i as usize]) {
                continue;
            }
            let c = completion_if(inst, &loads, i, j);
            if best.as_ref().is_none_or(|(bc, _)| c < *bc) {
                best = Some((c, i));
            }
        }
        match best {
            Some((_, i)) => {
                loads[i as usize] += job_cost(inst, i, j);
                assignment[j as usize] = i;
                on_machine[i as usize].set(j as usize);
            }
            None => return coloring_split(inst),
        }
    }
    Ok(Schedule::new(assignment))
}

/// The trivial feasible baseline: the 2-coloring classes go wholesale to the
/// two fastest machines. Always feasible for bipartite `G` and `m ≥ 2`;
/// usually terrible — it is the floor other methods are compared against.
pub fn coloring_split(inst: &Instance) -> Result<Schedule, BaselineError> {
    if inst.num_machines() < 2 {
        return Err(BaselineError::TooFewMachines {
            need: 2,
            got: inst.num_machines(),
        });
    }
    let bp = bipartition(inst.graph()).map_err(|_| BaselineError::NotBipartite)?;
    let assignment = (0..inst.num_jobs() as u32)
        .map(|j| match bp.side(j) {
            Side::Left => 0u32,
            Side::Right => 1u32,
        })
        .collect();
    Ok(Schedule::new(assignment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_graph::{gilbert_bipartite, Graph};
    use bisched_model::JobSizes;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn greedy_feasible_across_environments() {
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..30 {
            let n = rng.gen_range(2..=25);
            let m = rng.gen_range(2..=4);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.3, &mut rng);
            let p = JobSizes::Uniform { lo: 1, hi: 30 }.sample(n, &mut rng);
            let inst = match trial % 3 {
                0 => Instance::identical(m, p, g).unwrap(),
                1 => {
                    let speeds = (0..m).map(|_| rng.gen_range(1..=5)).collect();
                    Instance::uniform(speeds, p, g).unwrap()
                }
                _ => {
                    let times = (0..m)
                        .map(|_| (0..n).map(|_| rng.gen_range(1..=30)).collect())
                        .collect();
                    Instance::unrelated(times, g).unwrap()
                }
            };
            let s = greedy_lpt(&inst).expect("bipartite, m >= 2");
            assert!(s.validate(&inst).is_ok(), "trial {trial}");
        }
    }

    #[test]
    fn greedy_matches_lpt_without_graph() {
        // Classic LPT on {5,4,3,3,3} over 2 identical machines -> 9.
        let inst = Instance::identical(2, vec![5, 4, 3, 3, 3], Graph::empty(5)).unwrap();
        let s = greedy_lpt(&inst).unwrap();
        assert_eq!(s.makespan(&inst), Rat::integer(10));
        let mut l = s.loads(&inst);
        l.sort();
        assert_eq!(l, vec![8, 10]);
    }

    #[test]
    fn coloring_split_is_feasible_and_trivial() {
        let g = Graph::complete_bipartite(3, 4);
        let inst = Instance::uniform(vec![2, 1, 1], vec![1; 7], g).unwrap();
        let s = coloring_split(&inst).unwrap();
        assert!(s.validate(&inst).is_ok());
        // Only the first two machines are used.
        assert!(s.assignment().iter().all(|&i| i < 2));
    }

    #[test]
    fn coloring_split_needs_two_machines() {
        let inst = Instance::identical(1, vec![1, 1], Graph::from_edges(2, &[(0, 1)])).unwrap();
        assert_eq!(
            coloring_split(&inst).unwrap_err(),
            BaselineError::TooFewMachines { need: 2, got: 1 }
        );
    }

    #[test]
    fn coloring_split_rejects_odd_cycles() {
        let inst = Instance::identical(3, vec![1; 5], Graph::cycle(5)).unwrap();
        assert_eq!(
            coloring_split(&inst).unwrap_err(),
            BaselineError::NotBipartite
        );
    }

    /// The seed's per-(job, machine) neighbor scan, kept as a reference:
    /// the bitmask rewrite must be decision-for-decision identical.
    fn greedy_lpt_reference(inst: &Instance) -> Result<Schedule, BaselineError> {
        let n = inst.num_jobs();
        let m = inst.num_machines() as MachineId;
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| inst.processing(b).cmp(&inst.processing(a)).then(a.cmp(&b)));
        let mut assignment = vec![u32::MAX; n];
        let mut loads = vec![0u64; m as usize];
        for &j in &order {
            let mut best: Option<(Rat, MachineId)> = None;
            for i in 0..m {
                let conflict = inst
                    .graph()
                    .neighbors(j)
                    .iter()
                    .any(|&u| assignment[u as usize] == i);
                if conflict {
                    continue;
                }
                let c = completion_if(inst, &loads, i, j);
                if best.as_ref().is_none_or(|(bc, _)| c < *bc) {
                    best = Some((c, i));
                }
            }
            match best {
                Some((_, i)) => {
                    loads[i as usize] += job_cost(inst, i, j);
                    assignment[j as usize] = i;
                }
                None => return coloring_split(inst),
            }
        }
        Ok(Schedule::new(assignment))
    }

    #[test]
    fn bitmask_greedy_matches_reference_scan() {
        let mut rng = StdRng::seed_from_u64(83);
        for trial in 0..40 {
            let n = rng.gen_range(2..=60);
            let m = rng.gen_range(2..=6);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.35, &mut rng);
            let p = JobSizes::Uniform { lo: 1, hi: 40 }.sample(n, &mut rng);
            let inst = match trial % 3 {
                0 => Instance::identical(m, p, g).unwrap(),
                1 => {
                    let speeds = (0..m).map(|_| rng.gen_range(1..=6)).collect();
                    Instance::uniform(speeds, p, g).unwrap()
                }
                _ => {
                    let times = (0..m)
                        .map(|_| (0..n).map(|_| rng.gen_range(1..=40)).collect())
                        .collect();
                    Instance::unrelated(times, g).unwrap()
                }
            };
            let fast = greedy_lpt(&inst).unwrap();
            let slow = greedy_lpt_reference(&inst).unwrap();
            assert_eq!(
                fast.assignment(),
                slow.assignment(),
                "trial {trial}: bitmask greedy diverged from the scan"
            );
        }
    }

    #[test]
    fn greedy_on_complete_bipartite_forces_two_machines() {
        // K_{n,n}: each side must be monochromatic per machine.
        let g = Graph::complete_bipartite(4, 4);
        let inst = Instance::identical(4, vec![1; 8], g).unwrap();
        let s = greedy_lpt(&inst).unwrap();
        assert!(s.validate(&inst).is_ok());
    }
}
