//! Bodlaender–Jansen–Woeginger-style 2-approximation for
//! `P | G = bipartite | C_max` with `m ≥ 3` — the prior-art algorithm the
//! paper generalizes away from ([3] proved the ratio 2 is best possible on
//! identical machines).
//!
//! Shape of the algorithm: compute an inequitable 2-coloring
//! `(V'_1, V'_2)` weighted by processing requirements, split the `m`
//! machines into two disjoint groups with sizes proportional to the class
//! weights (each group non-empty), and LPT-list each class inside its
//! group. Classes never share a machine, so feasibility is structural.

use crate::greedy::BaselineError;
use bisched_graph::inequitable_coloring_weighted;
use bisched_model::{
    assign_min_completion_uniform, lpt_order, Instance, MachineEnvironment, Schedule,
};

/// BJW-style 2-approximation for identical machines, `m ≥ 3`.
///
/// Also accepts uniform speeds (groups are then chosen by aggregate speed
/// proportional to class weight), which is the natural generalization used
/// as a comparison point in the E11 experiment.
pub fn bjw_two_approx(inst: &Instance) -> Result<Schedule, BaselineError> {
    let m = inst.num_machines();
    if m < 3 {
        return Err(BaselineError::TooFewMachines { need: 3, got: m });
    }
    let speeds = match inst.env() {
        MachineEnvironment::Unrelated { .. } => {
            // BJW is defined for identical machines; no meaningful speeds.
            return Err(BaselineError::Stuck);
        }
        _ => inst.speeds(),
    };
    let coloring = inequitable_coloring_weighted(inst.graph(), inst.processing_all())
        .map_err(|_| BaselineError::NotBipartite)?;
    let w1 = coloring.major_weight();
    let w2 = coloring.minor_weight();
    let total_w = (w1 + w2).max(1);
    let total_speed: u64 = speeds.iter().sum();

    // Machines are sorted fastest-first. Give the major class a prefix of
    // machines whose aggregate speed is ~ proportional to its weight; both
    // groups stay non-empty.
    let mut split = 1usize;
    let mut acc = speeds[0];
    while split < m - 1 && (acc as u128) * (total_w as u128) < (total_speed as u128) * (w1 as u128)
    {
        acc += speeds[split];
        split += 1;
    }
    let group1: Vec<u32> = (0..split as u32).collect();
    let group2: Vec<u32> = (split as u32..m as u32).collect();

    let mut loads = vec![0u64; m];
    let mut assignment = vec![u32::MAX; inst.num_jobs()];
    let major = lpt_order(inst.processing_all(), &coloring.major());
    let minor = lpt_order(inst.processing_all(), &coloring.minor());
    assign_min_completion_uniform(
        &speeds,
        inst.processing_all(),
        &major,
        &group1,
        &mut loads,
        &mut assignment,
    );
    assign_min_completion_uniform(
        &speeds,
        inst.processing_all(),
        &minor,
        &group2,
        &mut loads,
        &mut assignment,
    );
    Ok(Schedule::new(assignment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_graph::{gilbert_bipartite, Graph};
    use bisched_model::{JobSizes, Rat};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn needs_three_machines() {
        let inst = Instance::identical(2, vec![1, 1], Graph::empty(2)).unwrap();
        assert_eq!(
            bjw_two_approx(&inst).unwrap_err(),
            BaselineError::TooFewMachines { need: 3, got: 2 }
        );
    }

    #[test]
    fn feasible_and_within_two_of_oracle() {
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..20 {
            let n = rng.gen_range(3..=8);
            let m = rng.gen_range(3..=4);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.4, &mut rng);
            let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(n, &mut rng);
            let inst = Instance::identical(m, p, g).unwrap();
            let s = bjw_two_approx(&inst).unwrap();
            assert!(s.validate(&inst).is_ok());
            let opt = bisched_exact::brute_force(&inst).unwrap();
            let ratio = s.makespan(&inst).ratio_to(&opt.makespan);
            assert!(
                ratio <= 2.0 + 1e-9,
                "BJW ratio {ratio} > 2 on {}",
                inst.describe()
            );
        }
    }

    #[test]
    fn classes_never_share_machines() {
        let g = Graph::complete_bipartite(5, 5);
        let inst = Instance::identical(4, vec![1; 10], g.clone()).unwrap();
        let s = bjw_two_approx(&inst).unwrap();
        assert!(s.validate(&inst).is_ok());
        // All of side A on machines disjoint from side B's machines.
        let machines_a: std::collections::HashSet<u32> = (0..5).map(|j| s.machine_of(j)).collect();
        let machines_b: std::collections::HashSet<u32> = (5..10).map(|j| s.machine_of(j)).collect();
        assert!(machines_a.is_disjoint(&machines_b));
    }

    #[test]
    fn balanced_unit_jobs_near_optimal() {
        // 12 isolated unit jobs on 4 machines: OPT = 3; BJW groups still
        // see all machines, so the result must be <= 2 * OPT = 6.
        let inst = Instance::identical(4, vec![1; 12], Graph::empty(12)).unwrap();
        let s = bjw_two_approx(&inst).unwrap();
        assert!(s.makespan(&inst) <= Rat::integer(6));
    }

    #[test]
    fn uniform_speeds_accepted() {
        let g = Graph::complete_bipartite(2, 3);
        let inst = Instance::uniform(vec![4, 2, 1], vec![3, 3, 2, 2, 2], g).unwrap();
        let s = bjw_two_approx(&inst).unwrap();
        assert!(s.validate(&inst).is_ok());
    }

    #[test]
    fn rejects_unrelated() {
        let inst = Instance::unrelated(vec![vec![1], vec![1], vec![1]], Graph::empty(1)).unwrap();
        assert!(bjw_two_approx(&inst).is_err());
    }
}
