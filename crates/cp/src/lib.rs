//! # bisched-cp
//!
//! A constraint-propagation + branching solver for
//! `{P,Q,R} | G | C_max`: the CP-style member of the solver portfolio,
//! built to win exactly where the branch-and-bound oracle thrashes —
//! dense incompatibility graphs whose conflict structure propagates far
//! harder than load arithmetic alone.
//!
//! ## Model
//!
//! Decision variables are job → machine assignments with bitmask domains
//! (one `u64` per job, so `m ≤ 64`). All arithmetic is exact and
//! integral: uniform speeds are cleared by scaling every cost by
//! `L = lcm(speeds)` (`c[j][i] = p_j · L / s_i`; `L = 1` on `P`/`R`), so
//! a makespan bound is a single integer `T` and a machine is feasible
//! for a job iff its scaled load stays `≤ T`.
//!
//! ## Search
//!
//! The optimum is found by binary-searching `T` downward from a greedy
//! incumbent ([`bisched_exact::greedy_incumbent`]): each probe runs a
//! propagation-backed decision search —
//!
//! * **load/horizon propagation**: assigning a job removes every
//!   machine whose remaining capacity under `T` it would overflow from
//!   the other jobs' domains, plus a fractional total-capacity check
//!   (sum of domain-minimal costs vs. total remaining slack);
//! * **conflict-graph propagation**: assigning a job removes that
//!   machine from every unassigned neighbor's domain; singleton domains
//!   assign immediately (unit propagation); an empty domain backtracks;
//! * **activity-based branching with restarts**: branch on the smallest
//!   domain (failure-count activity breaks ties), try machines best-fit
//!   first, and restart with a doubled conflict limit — activities
//!   survive restarts, and an UNSAT proof only counts when a run
//!   finishes without tripping the limit.
//!
//! A SAT probe tightens the upper bound to the achieved makespan; a
//! finished UNSAT probe raises the proven lower bound. The whole search
//! runs under a [`CpLimits`] node/deadline budget and an optional shared
//! [`SearchCtl`]: cancellation stops it cooperatively mid-probe, every
//! new incumbent is published, and bounds published by racing engines
//! shrink the remaining `T` range (see [`CpOutcome::proven_lower`] for
//! what a "complete" run then proves).

#![warn(missing_docs)]
// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
use bisched_exact::bruteforce::Optimum;
use bisched_exact::search_ctl::SearchCtl;
use bisched_model::{Instance, MachineEnvironment, Rat, Schedule};
use std::time::{Duration, Instant};

/// Search budgets for [`cp_solve_with`], mirroring
/// [`bisched_exact::BnbLimits`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpLimits {
    /// Maximum decision nodes across all probes and restarts.
    pub node_limit: u64,
    /// Optional wall-clock budget; checked every few hundred nodes.
    pub deadline: Option<Duration>,
}

impl Default for CpLimits {
    fn default() -> Self {
        CpLimits {
            node_limit: u64::MAX,
            deadline: None,
        }
    }
}

impl CpLimits {
    /// A pure node budget (no deadline).
    pub fn nodes(node_limit: u64) -> Self {
        CpLimits {
            node_limit,
            deadline: None,
        }
    }
}

/// Outcome of a CP solve.
#[derive(Clone, Debug)]
pub struct CpOutcome {
    /// Best schedule found (`None` when none was found — infeasible, or
    /// the budget ran out before the first SAT probe).
    pub best: Option<Optimum>,
    /// `true` iff the binary search closed: `best` is proven optimal
    /// (or the instance proven infeasible when `best` is `None`).
    ///
    /// Under a [`SearchCtl`], foreign published bounds may close the
    /// search from above; the completed proof is then the statement of
    /// [`proven_lower`](Self::proven_lower) — no schedule strictly below
    /// it exists — and `best` itself need not be optimal.
    pub complete: bool,
    /// When `complete`, the proven greatest lower bound: **no schedule
    /// with makespan strictly below this exists**. Equals `best`'s
    /// makespan for a standalone (control-free) complete run on a
    /// feasible instance; `None` when infeasible or incomplete.
    pub proven_lower: Option<Rat>,
    /// Decision nodes expanded across all probes and restarts.
    pub nodes: u64,
    /// Backtracks (dead ends) across all probes and restarts.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Domain wipes performed by propagation (neighbor and capacity
    /// removals plus unit-propagated singletons), across all probes.
    pub propagations: u64,
    /// Binary-search probes answered SAT (each tightened the upper
    /// bound).
    pub probes_sat: u64,
    /// Binary-search probes that finished UNSAT (each raised the proven
    /// lower bound).
    pub probes_unsat: u64,
    /// `true` iff a [`SearchCtl`] cancellation cut the solve short (a
    /// special case of `!complete`).
    pub cancelled: bool,
}

/// Solves `inst` exactly under `limits`; see [`cp_solve_ctl`] for the
/// race-aware form.
///
/// `Err` means the engine is not applicable to this instance (more than
/// 64 machines, or speed scaling overflows `u64`), never that the
/// instance is infeasible — that is a complete outcome with no `best`.
pub fn cp_solve_with(inst: &Instance, limits: &CpLimits) -> Result<CpOutcome, String> {
    cp_solve_ctl(inst, limits, None)
}

/// Solves `inst` under `limits` and an optional shared [`SearchCtl`]
/// (cooperative cancellation, cross-engine incumbent bounds).
pub fn cp_solve_ctl(
    inst: &Instance,
    limits: &CpLimits,
    ctl: Option<&SearchCtl>,
) -> Result<CpOutcome, String> {
    let n = inst.num_jobs();
    let m = inst.num_machines();
    if m > 64 {
        return Err(format!("cp requires m <= 64 machines, instance has {m}"));
    }
    let costs = scaled_costs(inst)?;
    let scale = scaled_costs_scale(inst)?;

    // Total scaled work if every job ran on its worst machine bounds any
    // feasible makespan; also the overflow guard for `T` arithmetic.
    let mut t_max: u64 = 0;
    for row in &costs {
        let worst = row.iter().copied().max().unwrap_or(0);
        t_max = t_max
            .checked_add(worst)
            .ok_or_else(|| "cp: total scaled work overflows u64".to_string())?;
    }

    // Lower bound: fractional average of domain-minimal costs, and the
    // largest domain-minimal cost (some machine must take each job).
    let mut min_sum: u128 = 0;
    let mut min_max: u64 = 0;
    for row in &costs {
        let cheapest = row.iter().copied().min().unwrap_or(0);
        min_sum += cheapest as u128;
        min_max = min_max.max(cheapest);
    }
    let mut lo = (min_sum.div_ceil(m.max(1) as u128) as u64).max(min_max);

    let mut stats = Stats {
        nodes: 0,
        conflicts: 0,
        restarts: 0,
        propagations: 0,
        probes_sat: 0,
        probes_unsat: 0,
        node_limit: limits.node_limit,
        deadline: limits.deadline.map(|d| Instant::now() + d),
        ctl,
        cancelled: false,
    };
    let mut search = Decide::new(inst, &costs, n, m);

    // Upper bound: the greedy/LPT incumbent, exactly rescaled; a fresh
    // decision probe at `t_max` settles feasibility when the greedy
    // dead-ends.
    let mut best: Option<(Vec<u32>, u64)>;
    if let Some(greedy) = bisched_exact::greedy_incumbent(inst) {
        let scaled = rat_to_scaled(&greedy.makespan, scale);
        if let Some(ctl) = ctl {
            ctl.publish_makespan(&greedy.makespan);
        }
        best = Some((schedule_assignment(&greedy.schedule, n), scaled));
    } else {
        match search.probe(t_max, &mut stats) {
            Probe::Sat(assignment, achieved) => {
                publish(ctl, inst, &assignment);
                best = Some((assignment, achieved));
            }
            Probe::Unsat => {
                // No schedule exists at the capacity-free horizon:
                // proven infeasible.
                return Ok(outcome(inst, None, true, None, &stats));
            }
            Probe::Stopped => {
                return Ok(outcome(inst, None, false, None, &stats));
            }
        }
    }

    // Binary search `T` downward: invariant `opt >= lo/L` (everything
    // below `lo` is proven UNSAT) and `best` achieves `hi`.
    let mut complete = true;
    loop {
        let mut hi = best.as_ref().map(|(_, s)| *s).unwrap_or(t_max);
        if let Some(ctl) = ctl {
            if ctl.cancelled() {
                stats.cancelled = true;
                complete = false;
                break;
            }
            // A racing engine's published bound shrinks the range from
            // above: its true achieved makespan is <= the published
            // value, so a scaled horizon at or above it is achievable
            // (by that engine), and probing there is wasted work.
            let foreign = ctl.foreign_bound();
            if foreign.is_finite() {
                let foreign_scaled = (foreign * scale as f64).next_up().ceil() as u64;
                hi = hi.min(foreign_scaled);
            }
        }
        if lo >= hi {
            break;
        }
        // Midpoint of [lo, hi - 1]: every probe targets a strict
        // improvement over the known-achievable `hi`.
        let mid = lo + (hi - 1 - lo) / 2;
        match search.probe(mid, &mut stats) {
            Probe::Sat(assignment, achieved) => {
                publish(ctl, inst, &assignment);
                best = Some((assignment, achieved));
            }
            Probe::Unsat => lo = mid + 1,
            Probe::Stopped => {
                complete = false;
                break;
            }
        }
    }

    let proven_lower = complete.then(|| Rat::new(lo, scale));
    Ok(outcome(
        inst,
        best.map(|(a, _)| a),
        complete,
        proven_lower,
        &stats,
    ))
}

fn outcome(
    inst: &Instance,
    assignment: Option<Vec<u32>>,
    complete: bool,
    proven_lower: Option<Rat>,
    stats: &Stats,
) -> CpOutcome {
    let best = assignment.map(|a| {
        let schedule = Schedule::new(a);
        debug_assert!(schedule.validate(inst).is_ok());
        let makespan = schedule.makespan(inst);
        Optimum { schedule, makespan }
    });
    CpOutcome {
        best,
        complete,
        proven_lower,
        nodes: stats.nodes,
        conflicts: stats.conflicts,
        restarts: stats.restarts,
        propagations: stats.propagations,
        probes_sat: stats.probes_sat,
        probes_unsat: stats.probes_unsat,
        cancelled: stats.cancelled,
    }
}

fn publish(ctl: Option<&SearchCtl>, inst: &Instance, assignment: &[u32]) {
    if let Some(ctl) = ctl {
        let mk = Schedule::new(assignment.to_vec()).makespan(inst);
        ctl.publish_makespan(&mk);
    }
}

fn schedule_assignment(schedule: &Schedule, n: usize) -> Vec<u32> {
    (0..n as u32).map(|j| schedule.machine_of(j)).collect()
}

/// `lcm(speeds)` on `Q` (1 on `P`/`R`), the common denominator clearing
/// every per-machine rate.
fn scaled_costs_scale(inst: &Instance) -> Result<u64, String> {
    match inst.env() {
        MachineEnvironment::Uniform { speeds } => {
            let mut l: u64 = 1;
            for &s in speeds {
                let g = gcd(l, s);
                l = (l / g)
                    .checked_mul(s)
                    .ok_or_else(|| "cp: lcm of speeds overflows u64".to_string())?;
            }
            Ok(l)
        }
        _ => Ok(1),
    }
}

/// Integer scaled cost matrix `c[j][i]`: the load machine `i` gains from
/// job `j`, in units of `1/L` of makespan.
fn scaled_costs(inst: &Instance) -> Result<Vec<Vec<u64>>, String> {
    let n = inst.num_jobs();
    let m = inst.num_machines();
    let scale = scaled_costs_scale(inst)?;
    let mut costs = vec![vec![0u64; m]; n];
    for (j, row) in costs.iter_mut().enumerate() {
        for (i, c) in row.iter_mut().enumerate() {
            *c = match inst.env() {
                MachineEnvironment::Unrelated { times } => times[i][j],
                MachineEnvironment::Uniform { speeds } => {
                    let w = scale / speeds[i];
                    inst.processing(j as u32)
                        .checked_mul(w)
                        .ok_or_else(|| "cp: scaled processing time overflows u64".to_string())?
                }
                MachineEnvironment::Identical { .. } => inst.processing(j as u32),
            };
        }
    }
    Ok(costs)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// Exact rescale of a rational makespan: `r · scale`, which is integral
/// for any schedule's makespan (the denominator divides some speed,
/// which divides `scale`).
fn rat_to_scaled(r: &Rat, scale: u64) -> u64 {
    (r.num() as u128 * scale as u128 / r.den() as u128) as u64
}

/// How many nodes pass between deadline/cancellation checks.
const CHECK_STRIDE: u64 = 256;
/// First restart fires after this many conflicts in one run.
const RESTART_BASE: u64 = 128;

struct Stats<'a> {
    nodes: u64,
    conflicts: u64,
    restarts: u64,
    propagations: u64,
    probes_sat: u64,
    probes_unsat: u64,
    node_limit: u64,
    deadline: Option<Instant>,
    ctl: Option<&'a SearchCtl>,
    cancelled: bool,
}

impl Stats<'_> {
    /// Charges one decision node; `false` means a budget or cancellation
    /// stop.
    fn charge(&mut self) -> bool {
        if self.nodes >= self.node_limit {
            return false;
        }
        if self.nodes.is_multiple_of(CHECK_STRIDE) {
            if let Some(dl) = self.deadline {
                if Instant::now() >= dl {
                    return false;
                }
            }
            if let Some(ctl) = self.ctl {
                if ctl.cancelled() {
                    self.cancelled = true;
                    return false;
                }
            }
        }
        self.nodes += 1;
        true
    }
}

/// One decision probe's answer.
enum Probe {
    /// A schedule with scaled makespan `<= T` exists; the achieved
    /// scaled makespan rides along (it may beat `T`).
    Sat(Vec<u32>, u64),
    /// Proven: no schedule with scaled makespan `<= T` exists.
    Unsat,
    /// Budget or cancellation stop — no verdict.
    Stopped,
}

/// Why a search run unwound.
enum Stop {
    /// Budget/cancellation: abandon the whole probe.
    Budget,
    /// Conflict limit: restart this probe with a doubled limit.
    Restart,
}

const UNASSIGNED: u32 = u32::MAX;

/// The propagation-backed decision solver, reused across probes (domains
/// and loads are rebuilt per probe; activities persist for the whole
/// solve).
struct Decide<'a> {
    inst: &'a Instance,
    costs: &'a [Vec<u64>],
    n: usize,
    m: usize,
    full_domain: u64,
    domain: Vec<u64>,
    assigned: Vec<u32>,
    loads: Vec<u64>,
    /// Failure-count branching activity, persisted across restarts.
    activity: Vec<u64>,
    /// Undo log of domain wipes: `(job, previous domain)`.
    trail: Vec<(u32, u64)>,
    /// Undo log of assignments (decisions and propagated singletons).
    assign_log: Vec<u32>,
    /// Conflicts charged in the current run (restart trigger).
    run_conflicts: u64,
    run_conflict_limit: u64,
}

impl<'a> Decide<'a> {
    fn new(inst: &'a Instance, costs: &'a [Vec<u64>], n: usize, m: usize) -> Self {
        let full_domain = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
        Decide {
            inst,
            costs,
            n,
            m,
            full_domain,
            domain: vec![full_domain; n],
            assigned: vec![UNASSIGNED; n],
            loads: vec![0; m],
            activity: vec![0; n],
            trail: Vec::new(),
            assign_log: Vec::new(),
            run_conflicts: 0,
            run_conflict_limit: RESTART_BASE,
        }
    }

    /// Decides whether a schedule with scaled makespan `<= t` exists,
    /// restarting on conflict-limit trips until a run finishes.
    fn probe(&mut self, t: u64, stats: &mut Stats) -> Probe {
        self.run_conflict_limit = RESTART_BASE;
        loop {
            self.reset(t);
            // Root propagation: jobs whose domain is already singleton
            // (or empty) under `t` settle before any branching.
            let mut root_ok = true;
            for j in 0..self.n as u32 {
                if self.domain[j as usize] == 0 {
                    root_ok = false;
                    break;
                }
                if self.assigned[j as usize] == UNASSIGNED
                    && self.domain[j as usize].count_ones() == 1
                {
                    let i = self.domain[j as usize].trailing_zeros();
                    if !self.assign_and_propagate(j, i, t, stats) {
                        root_ok = false;
                        break;
                    }
                }
            }
            if !root_ok {
                stats.probes_unsat += 1;
                bisched_obs::instant("cp_probe_unsat", "cp", "t_scaled", t);
                return Probe::Unsat;
            }
            match self.run(t, stats) {
                Ok(true) => {
                    let achieved = *self.loads.iter().max().unwrap_or(&0);
                    stats.probes_sat += 1;
                    bisched_obs::instant("cp_probe_sat", "cp", "achieved_scaled", achieved);
                    return Probe::Sat(self.assigned.clone(), achieved);
                }
                Ok(false) => {
                    stats.probes_unsat += 1;
                    bisched_obs::instant("cp_probe_unsat", "cp", "t_scaled", t);
                    return Probe::Unsat;
                }
                Err(Stop::Budget) => return Probe::Stopped,
                Err(Stop::Restart) => {
                    stats.restarts += 1;
                    bisched_obs::instant(
                        "cp_restart",
                        "cp",
                        "conflict_limit",
                        self.run_conflict_limit,
                    );
                    self.run_conflict_limit = self.run_conflict_limit.saturating_mul(2);
                }
            }
        }
    }

    fn reset(&mut self, t: u64) {
        self.assigned.fill(UNASSIGNED);
        self.loads.fill(0);
        self.trail.clear();
        self.assign_log.clear();
        self.run_conflicts = 0;
        for (j, d) in self.domain.iter_mut().enumerate() {
            // A machine is in `j`'s root domain iff `j` alone fits `t`.
            let mut mask = 0u64;
            for i in 0..self.m {
                if self.costs[j][i] <= t {
                    mask |= 1 << i;
                }
            }
            *d = mask & self.full_domain;
        }
    }

    /// DFS under horizon `t`. `Ok(true)`: full assignment built (state
    /// holds it); `Ok(false)`: subtree exhausted.
    fn run(&mut self, t: u64, stats: &mut Stats) -> Result<bool, Stop> {
        if !stats.charge() {
            return Err(Stop::Budget);
        }
        // Branch job: smallest live domain, most failures, largest
        // cheapest-cost. All assigned means SAT.
        let mut branch: Option<(u32, u32)> = None; // (domain size, job)
        let mut slack_total: u128 = 0;
        let mut need_total: u128 = 0;
        for i in 0..self.m {
            slack_total += (t - self.loads[i].min(t)) as u128;
        }
        for j in 0..self.n as u32 {
            if self.assigned[j as usize] != UNASSIGNED {
                continue;
            }
            let d = self.domain[j as usize];
            debug_assert!(d != 0, "empty domains must backtrack before branching");
            let mut cheapest = u64::MAX;
            let mut bits = d;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                cheapest = cheapest.min(self.costs[j as usize][i]);
            }
            need_total += cheapest as u128;
            let size = d.count_ones();
            let better = match branch {
                None => true,
                Some((bs, bj)) => {
                    let (ba, bc) = (self.activity[bj as usize], self.cheapest(bj));
                    let (ja, jc) = (self.activity[j as usize], cheapest);
                    (size, std::cmp::Reverse(ja), std::cmp::Reverse(jc))
                        < (bs, std::cmp::Reverse(ba), std::cmp::Reverse(bc))
                }
            };
            if better {
                branch = Some((size, j));
            }
        }
        let Some((_, j)) = branch else {
            return Ok(true);
        };
        // Fractional capacity check: the cheapest possible completion of
        // the unassigned jobs must fit the total remaining slack.
        if need_total > slack_total {
            self.conflict(j, stats)?;
            return Ok(false);
        }

        // Value order: best fit (smallest resulting load) first.
        let mut cands: Vec<(u64, u32)> = Vec::with_capacity(self.m);
        let mut bits = self.domain[j as usize];
        while bits != 0 {
            let i = bits.trailing_zeros();
            bits &= bits - 1;
            cands.push((
                self.loads[i as usize] + self.costs[j as usize][i as usize],
                i,
            ));
        }
        cands.sort_unstable();
        for &(_, i) in &cands {
            let trail_mark = self.trail.len();
            let assign_mark = self.assign_log.len();
            if self.assign_and_propagate(j, i, t, stats) {
                match self.run(t, stats) {
                    Ok(true) => return Ok(true),
                    Ok(false) => {}
                    Err(stop) => {
                        self.undo(trail_mark, assign_mark);
                        return Err(stop);
                    }
                }
            }
            self.undo(trail_mark, assign_mark);
        }
        self.conflict(j, stats)?;
        Ok(false)
    }

    fn cheapest(&self, j: u32) -> u64 {
        let mut best = u64::MAX;
        let mut bits = self.domain[j as usize];
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            best = best.min(self.costs[j as usize][i]);
        }
        best
    }

    /// Charges a dead end to `j`'s activity and trips the restart policy.
    fn conflict(&mut self, j: u32, stats: &mut Stats) -> Result<(), Stop> {
        stats.conflicts += 1;
        self.run_conflicts += 1;
        self.activity[j as usize] += 1;
        if self.run_conflicts >= self.run_conflict_limit {
            return Err(Stop::Restart);
        }
        Ok(())
    }

    /// Assigns `j -> i` and runs propagation to a fixpoint: neighbor and
    /// capacity domain wipes, then unit-propagating every singleton.
    /// `false` means some domain emptied (state is left for `undo`).
    /// Every domain wipe is charged to `stats.propagations`.
    fn assign_and_propagate(&mut self, j: u32, i: u32, t: u64, stats: &mut Stats) -> bool {
        let mut queue = vec![(j, i)];
        while let Some((j, i)) = queue.pop() {
            if self.assigned[j as usize] != UNASSIGNED {
                // Already settled by an earlier propagation on the same
                // machine: consistent assignments are fine.
                if self.assigned[j as usize] == i {
                    continue;
                }
                return false;
            }
            if self.domain[j as usize] & (1 << i) == 0 {
                return false;
            }
            self.assigned[j as usize] = i;
            self.assign_log.push(j);
            self.loads[i as usize] += self.costs[j as usize][i as usize];
            let slack = t.saturating_sub(self.loads[i as usize]);
            let neighbors = self.inst.graph().neighbors(j);
            let mut nb_mark = 0usize;
            for k in 0..self.n as u32 {
                if self.assigned[k as usize] != UNASSIGNED {
                    continue;
                }
                let is_neighbor = {
                    // Neighbor lists are sorted job ids; walk in step.
                    while nb_mark < neighbors.len() && neighbors[nb_mark] < k {
                        nb_mark += 1;
                    }
                    nb_mark < neighbors.len() && neighbors[nb_mark] == k
                };
                let d = self.domain[k as usize];
                if d & (1 << i) == 0 {
                    continue;
                }
                let wipe = is_neighbor || self.costs[k as usize][i as usize] > slack;
                if !wipe {
                    continue;
                }
                self.trail.push((k, d));
                stats.propagations += 1;
                let nd = d & !(1 << i);
                self.domain[k as usize] = nd;
                if nd == 0 {
                    return false;
                }
                if nd.count_ones() == 1 {
                    queue.push((k, nd.trailing_zeros()));
                }
            }
        }
        true
    }

    /// Rolls domains and assignments back to the given marks.
    fn undo(&mut self, trail_mark: usize, assign_mark: usize) {
        while self.trail.len() > trail_mark {
            let (k, d) = self.trail.pop().unwrap();
            self.domain[k as usize] = d;
        }
        while self.assign_log.len() > assign_mark {
            let j = self.assign_log.pop().unwrap();
            let i = self.assigned[j as usize];
            self.loads[i as usize] -= self.costs[j as usize][i as usize];
            self.assigned[j as usize] = UNASSIGNED;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_exact::{branch_and_bound, brute_force};
    use bisched_graph::{gilbert_bipartite, Graph};
    use bisched_model::JobSizes;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_matches_bruteforce(inst: &Instance) {
        let bf = brute_force(inst);
        let cp = cp_solve_with(inst, &CpLimits::default()).expect("applicable");
        assert!(cp.complete, "unbudgeted cp must complete");
        assert!(!cp.cancelled);
        match (bf, cp.best) {
            (Some(a), Some(b)) => {
                assert_eq!(a.makespan, b.makespan, "on {}", inst.describe());
                assert!(b.schedule.validate(inst).is_ok());
                assert_eq!(cp.proven_lower, Some(a.makespan));
            }
            (None, None) => assert_eq!(cp.proven_lower, None),
            (a, b) => panic!(
                "feasibility disagreement: brute={:?} cp={:?}",
                a.map(|o| o.makespan),
                b.map(|o| o.makespan)
            ),
        }
    }

    #[test]
    fn agrees_with_bruteforce_on_fixed_cases() {
        let cases: Vec<Instance> = vec![
            Instance::identical(2, vec![3, 3, 2, 2], Graph::empty(4)).unwrap(),
            Instance::identical(3, vec![1; 5], Graph::cycle(5)).unwrap(),
            Instance::uniform(vec![3, 1], vec![4, 4, 4, 1], Graph::path(4)).unwrap(),
            Instance::uniform(
                vec![5, 2, 1],
                vec![7, 3, 3, 2, 2],
                Graph::complete_bipartite(2, 3),
            )
            .unwrap(),
            Instance::unrelated(
                vec![vec![2, 9, 4, 3], vec![7, 1, 8, 2]],
                Graph::from_edges(4, &[(0, 1), (2, 3)]),
            )
            .unwrap(),
            Instance::identical(4, vec![5, 4, 3, 3, 2, 2, 1], Graph::path(7)).unwrap(),
            Instance::uniform(vec![3, 3, 1, 1], vec![6, 5, 4, 3, 2, 1], Graph::crown(3)).unwrap(),
            Instance::unrelated(
                vec![vec![4, 2, 3], vec![4, 2, 3], vec![1, 9, 9]],
                Graph::path(3),
            )
            .unwrap(),
        ];
        for inst in &cases {
            assert_matches_bruteforce(inst);
        }
    }

    #[test]
    fn agrees_with_bruteforce_randomized() {
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..30 {
            let n = rng.gen_range(2..=8);
            let m = rng.gen_range(2..=3);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.5, &mut rng);
            let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(n, &mut rng);
            let inst = match trial % 3 {
                0 => Instance::identical(m, p, g).unwrap(),
                1 => {
                    let speeds = (0..m).map(|_| rng.gen_range(1..=4)).collect();
                    Instance::uniform(speeds, p, g).unwrap()
                }
                _ => {
                    let times = (0..m)
                        .map(|_| (0..n).map(|_| rng.gen_range(1..=9)).collect())
                        .collect();
                    Instance::unrelated(times, g).unwrap()
                }
            };
            assert_matches_bruteforce(&inst);
        }
    }

    #[test]
    fn agrees_with_branch_and_bound_on_oracle_scale_dense_graphs() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..4 {
            let half = 10;
            let g = gilbert_bipartite(half, half, 0.6, &mut rng);
            let p = JobSizes::Uniform { lo: 1, hi: 20 }.sample(2 * half, &mut rng);
            let inst = match trial % 2 {
                0 => Instance::identical(4, p, g).unwrap(),
                _ => Instance::uniform(vec![4, 2, 2, 1], p, g).unwrap(),
            };
            let bb = branch_and_bound(&inst, u64::MAX);
            assert!(bb.complete);
            let cp = cp_solve_with(&inst, &CpLimits::default()).expect("applicable");
            assert!(cp.complete);
            assert_eq!(
                bb.optimum.map(|o| o.makespan),
                cp.best.map(|o| o.makespan),
                "on {}",
                inst.describe()
            );
        }
    }

    #[test]
    fn node_budget_truncates_with_incumbent() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gilbert_bipartite(12, 12, 0.4, &mut rng);
        let p = JobSizes::Uniform { lo: 1, hi: 30 }.sample(24, &mut rng);
        let inst = Instance::identical(3, p, g).unwrap();
        let out = cp_solve_with(&inst, &CpLimits::nodes(1)).expect("applicable");
        assert!(!out.complete);
        assert!(out.proven_lower.is_none());
        // The greedy incumbent still rides along.
        let best = out.best.expect("greedy incumbent");
        assert!(best.schedule.validate(&inst).is_ok());
    }

    #[test]
    fn zero_deadline_truncates() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gilbert_bipartite(12, 12, 0.4, &mut rng);
        let p = JobSizes::Uniform { lo: 1, hi: 30 }.sample(24, &mut rng);
        let inst = Instance::identical(3, p, g).unwrap();
        let out = cp_solve_with(
            &inst,
            &CpLimits {
                node_limit: u64::MAX,
                deadline: Some(Duration::ZERO),
            },
        )
        .expect("applicable");
        assert!(!out.complete);
    }

    #[test]
    fn cancellation_stops_the_solve_and_is_reported() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = gilbert_bipartite(12, 12, 0.4, &mut rng);
        let p = JobSizes::Uniform { lo: 1, hi: 30 }.sample(24, &mut rng);
        let inst = Instance::identical(3, p, g).unwrap();
        let ctl = SearchCtl::new();
        ctl.cancel();
        let out = cp_solve_ctl(&inst, &CpLimits::default(), Some(&ctl)).expect("applicable");
        assert!(!out.complete);
        assert!(out.cancelled);
    }

    #[test]
    fn foreign_bound_at_the_optimum_closes_the_search_from_above() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = gilbert_bipartite(6, 6, 0.5, &mut rng);
        let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(12, &mut rng);
        let inst = Instance::identical(3, p, g).unwrap();
        let opt = branch_and_bound(&inst, u64::MAX).optimum.expect("feasible");
        let ctl = SearchCtl::new();
        ctl.publish_makespan(&opt.makespan);
        let out = cp_solve_ctl(&inst, &CpLimits::default(), Some(&ctl)).expect("applicable");
        assert!(out.complete);
        // The proven lower bound certifies the foreign winner: nothing
        // strictly below it exists, and the optimum sits at or above it.
        let lower = out.proven_lower.expect("complete feasible run");
        assert!(lower <= opt.makespan);
        assert!(out.best.expect("feasible").makespan >= lower);
    }

    #[test]
    fn infeasible_is_proven() {
        let inst = Instance::identical(2, vec![1; 5], Graph::cycle(5)).unwrap();
        let out = cp_solve_with(&inst, &CpLimits::default()).expect("applicable");
        assert!(out.complete);
        assert!(out.best.is_none());
        assert!(out.proven_lower.is_none());
    }

    #[test]
    fn too_many_machines_is_not_applicable() {
        let inst = Instance::identical(65, vec![1; 4], Graph::empty(4)).unwrap();
        assert!(cp_solve_with(&inst, &CpLimits::default()).is_err());
    }
}
