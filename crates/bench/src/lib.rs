//! # bisched-bench
//!
//! The experiment harness: shared table/JSON reporting used by the
//! `exp_*` binaries, each of which regenerates one validated claim of the
//! paper (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
//! recorded paper-vs-measured outcomes).

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// A minimal aligned-column table printer for experiment output.
///
/// Also emits one JSON line per row on request, so EXPERIMENTS.md numbers
/// stay regenerable by machine.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                out.push_str(&format!("{cell:>w$}  ", w = w));
            }
            println!("{}", out.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// Emits the rows as JSON lines (header -> value objects).
    pub fn print_json(&self) {
        for row in &self.rows {
            let obj: serde_json::Map<String, serde_json::Value> = self
                .headers
                .iter()
                .zip(row)
                .map(|(h, c)| (h.clone(), serde_json::Value::String(c.clone())))
                .collect();
            println!("{}", serde_json::Value::Object(obj));
        }
    }
}

/// Formats a float with 4 decimals (table cells).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Prints a section banner.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Prints `label: value` aligned for quick key-value summaries.
pub fn kv(label: &str, value: impl Display) {
    println!("{label:<44} {value}");
}

/// Whether `--json` was passed to the binary.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        t.print();
        t.print_json();
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_row_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn timed_measures() {
        let (v, s) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(f4(1.23456), "1.2346");
        assert_eq!(f2(1.236), "1.24");
    }
}
