//! `bisched_cli` — command-line front end for the library.
//!
//! ```text
//! bisched_cli generate q <n> <m> <p> <seed>     emit a random Q instance (text format)
//! bisched_cli generate r <n> <m> <p> <seed>     emit a random R instance
//! bisched_cli info <file>                       describe an instance
//! bisched_cli solve <file> [--method <m>] [--portfolio <m1,m2,…>]
//!                          [--eps <e>] [--node-limit <nodes>]
//!                          [--exact-budget <mass>] [--json]
//! bisched_cli serve [--addr <host:port>] [--workers <n>] [--batch <b>]
//!                   [--cache-cap <n>] [--queue-cap <n>]
//! bisched_cli submit --addr <host:port> <file.jsonl> [--repeat <k>]
//!                    [--no-cache] [--shutdown]
//! ```
//!
//! `solve` runs the `Solver` engine. `--method` names one engine
//! (`exact-q2`, `exact-r2`, `branch-and-bound`, `alg1`, `alg2`, `bjw`,
//! `fptas`, `twoapprox`, `greedy-lpt`, `greedy`) or `auto` (default);
//! `--portfolio` runs several and keeps the best; `--node-limit` sizes the
//! branch-and-bound search and `--exact-budget` the pseudo-polynomial DP
//! gate. `--json` emits the full
//! `SolveReport` — method, guarantee, makespan, lower bound, per-engine
//! timings — as a single JSON object for experiment scripts.
//!
//! Instances use the text format of `bisched_model::io` (see its docs).
//! `serve` runs the `bisched-service` daemon until a `shutdown` request
//! arrives; `submit` pushes a JSONL workload (one `InstanceData` object
//! per line) through a running daemon, validates every returned schedule
//! client-side, and prints a throughput summary — `--repeat` replays the
//! file K times so cache behaviour shows up in the hit rate.

use bisched_core::{EngineOutcome, Guarantee, Method, SolveReport, SolverConfig};
use bisched_graph::{gilbert_bipartite, is_bipartite, Components};
use bisched_model::{
    from_text, to_text, Instance, JobSizes, Rat, Schedule, SpeedProfile, UnrelatedFamily,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::{Map, Value};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  bisched_cli generate q <n> <m> <p> <seed>
  bisched_cli generate r <n> <m> <p> <seed>
  bisched_cli info <file>
  bisched_cli solve <file> [--method auto|exact-q2|exact-r2|branch-and-bound|alg1|alg2|
                            bjw|fptas|twoapprox|greedy-lpt|greedy]
                           [--portfolio <m1,m2,...>] [--eps <e>] [--node-limit <nodes>]
                           [--exact-budget <mass>] [--json]
  bisched_cli serve [--addr <host:port>] [--workers <n>] [--batch <b>]
                    [--cache-cap <n>] [--queue-cap <n>]
  bisched_cli submit --addr <host:port> <file.jsonl> [--repeat <k>] [--no-cache] [--shutdown]";

fn parse<T: std::str::FromStr>(s: Option<&String>, what: &str) -> Result<T, String> {
    s.ok_or_else(|| format!("missing {what}\n{USAGE}"))?
        .parse()
        .map_err(|_| format!("bad {what}: {s:?}"))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let kind = args.first().map(String::as_str);
    let n: usize = parse(args.get(1), "n")?;
    let m: usize = parse(args.get(2), "m")?;
    let p: f64 = parse(args.get(3), "p")?;
    let seed: u64 = parse(args.get(4), "seed")?;
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gilbert_bipartite(n / 2, n - n / 2, p, &mut rng);
    let inst = match kind {
        Some("q") => Instance::uniform(
            SpeedProfile::Geometric { ratio: 2 }.speeds(m),
            JobSizes::Uniform { lo: 1, hi: 50 }.sample(n, &mut rng),
            g,
        ),
        Some("r") => Instance::unrelated(
            UnrelatedFamily::Uncorrelated { lo: 1, hi: 100 }.sample(m, n, &mut rng),
            g,
        ),
        _ => return Err(format!("generate needs q|r\n{USAGE}")),
    }
    .map_err(|e| e.to_string())?;
    print!("{}", to_text(&inst));
    Ok(())
}

fn load(args: &[String]) -> Result<Instance, String> {
    let path = args
        .first()
        .ok_or_else(|| format!("missing file\n{USAGE}"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    from_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let inst = load(args)?;
    let g = inst.graph();
    println!("instance    {}", inst.describe());
    println!("jobs        {}", inst.num_jobs());
    println!("machines    {}", inst.num_machines());
    println!("edges       {}", g.num_edges());
    println!("bipartite   {}", is_bipartite(g));
    println!("components  {}", Components::of(g).count());
    println!("sum p_j     {}", inst.total_processing());
    println!("p_max       {}", inst.max_processing());
    Ok(())
}

/// Parses the `solve` flags into a solver configuration.
fn parse_solve_flags(args: &[String]) -> Result<(SolverConfig, bool), String> {
    let mut config = SolverConfig::new();
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--eps" => {
                let eps: f64 = parse(it.next(), "--eps value")?;
                config = config.eps(eps);
            }
            "--node-limit" => {
                let nodes: u64 = parse(it.next(), "--node-limit value")?;
                config = config.bnb_node_limit(nodes);
            }
            "--exact-budget" => {
                let budget: u64 = parse(it.next(), "--exact-budget value")?;
                config = config.exact_budget(budget);
            }
            "--method" => {
                let name = it
                    .next()
                    .ok_or(format!("missing --method value\n{USAGE}"))?;
                if name != "auto" {
                    let method: Method = name.parse().map_err(|e| format!("{e}\n{USAGE}"))?;
                    config = config.method(method);
                }
            }
            "--portfolio" => {
                let list = it
                    .next()
                    .ok_or(format!("missing --portfolio value\n{USAGE}"))?;
                let methods: Vec<Method> = list
                    .split(',')
                    .map(|name| name.trim().parse().map_err(|e| format!("{e}\n{USAGE}")))
                    .collect::<Result<_, String>>()?;
                config = config.portfolio(methods);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok((config, json))
}

/// Renders the full report as one JSON object for experiment scripts.
fn report_to_json(inst: &Instance, report: &SolveReport) -> Value {
    let float = |x: f64| Value::Number(serde_json::Number::from_f64(x));
    let rat = |r: &Rat| -> Value {
        let mut m = Map::new();
        m.insert(
            "num".into(),
            Value::Number(serde_json::Number::from_u64(r.num())),
        );
        m.insert(
            "den".into(),
            Value::Number(serde_json::Number::from_u64(r.den())),
        );
        m.insert("value".into(), float(r.to_f64()));
        Value::Object(m)
    };
    let guarantee = |g: &Guarantee| -> Value {
        let mut m = Map::new();
        let kind = match g {
            Guarantee::Optimal => "optimal",
            Guarantee::Ratio(_) => "ratio",
            Guarantee::SqrtSumP => "sqrt-sum-p",
            Guarantee::OnePlusEps(_) => "one-plus-eps",
            Guarantee::Heuristic => "heuristic",
        };
        m.insert("kind".into(), Value::String(kind.into()));
        if let Some(bound) = g.ratio_bound(inst) {
            m.insert("ratio_bound".into(), float(bound));
        }
        m.insert("provenance".into(), Value::String(g.provenance().into()));
        m.insert("display".into(), Value::String(g.to_string()));
        Value::Object(m)
    };
    let mut obj = Map::new();
    obj.insert("instance".into(), Value::String(inst.describe()));
    obj.insert("method".into(), Value::String(report.method.name().into()));
    obj.insert("guarantee".into(), guarantee(&report.guarantee));
    obj.insert("makespan".into(), rat(&report.makespan));
    obj.insert("lower_bound".into(), rat(&report.lower_bound));
    obj.insert(
        "total_time_s".into(),
        float(report.total_time.as_secs_f64()),
    );
    obj.insert(
        "seed".into(),
        Value::Number(serde_json::Number::from_u64(report.seed)),
    );
    let attempts: Vec<Value> = report
        .attempts
        .iter()
        .map(|run| {
            let mut a = Map::new();
            a.insert("method".into(), Value::String(run.method.name().into()));
            let (status, detail) = match &run.outcome {
                EngineOutcome::Solved { makespan, .. } => {
                    a.insert("makespan".into(), rat(makespan));
                    ("solved", None)
                }
                EngineOutcome::NotApplicable { reason } => ("not-applicable", Some(reason)),
                EngineOutcome::Failed { reason } => ("failed", Some(reason)),
            };
            a.insert("status".into(), Value::String(status.into()));
            if let Some(reason) = detail {
                a.insert("reason".into(), Value::String(reason.clone()));
            }
            a.insert("wall_time_s".into(), float(run.wall_time.as_secs_f64()));
            Value::Object(a)
        })
        .collect();
    obj.insert("attempts".into(), Value::Array(attempts));
    obj.insert(
        "assignment".into(),
        Value::Array(
            report
                .schedule
                .assignment()
                .iter()
                .map(|&m| Value::Number(serde_json::Number::from_u64(m as u64)))
                .collect(),
        ),
    );
    Value::Object(obj)
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use bisched_service::{ServeOptions, Service};
    let mut opts = ServeOptions {
        addr: "127.0.0.1:7878".into(),
        ..ServeOptions::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = parse(it.next(), "--addr value")?,
            "--workers" => opts.workers = parse(it.next(), "--workers value")?,
            "--batch" => opts.batch = parse(it.next(), "--batch value")?,
            "--cache-cap" => opts.cache_cap = parse(it.next(), "--cache-cap value")?,
            "--queue-cap" => opts.queue_cap = parse(it.next(), "--queue-cap value")?,
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let workers = opts.workers;
    let service = Service::start(opts).map_err(|e| format!("serve: {e}"))?;
    println!(
        "bisched-service listening on {} ({} workers); send {{\"verb\":\"shutdown\"}} to stop",
        service.local_addr(),
        workers
    );
    service.join(); // blocks until a shutdown request; logs final stats
    Ok(())
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    use bisched_service::{Client, Request};
    let mut addr: Option<String> = None;
    let mut file: Option<String> = None;
    let mut repeat: usize = 1;
    let mut no_cache = false;
    let mut shutdown = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parse(it.next(), "--addr value")?),
            "--repeat" => repeat = parse(it.next(), "--repeat value")?,
            "--no-cache" => no_cache = true,
            "--shutdown" => shutdown = true,
            other if !other.starts_with("--") => file = Some(other.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let addr = addr.ok_or_else(|| format!("submit requires --addr\n{USAGE}"))?;
    let path = file.ok_or_else(|| format!("submit requires a .jsonl file\n{USAGE}"))?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let mut workload: Vec<(bisched_model::InstanceData, Instance)> = Vec::new();
    for (k, line) in text.lines().enumerate() {
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let data: bisched_model::InstanceData =
            serde_json::from_str(line).map_err(|e| format!("{path}:{}: {e}", k + 1))?;
        let inst = data
            .clone()
            .into_instance()
            .map_err(|e| format!("{path}:{}: {e}", k + 1))?;
        workload.push((data, inst));
    }
    if workload.is_empty() {
        return Err(format!("{path}: no instances"));
    }
    let mut client = Client::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
    let mut requests = 0u64;
    let mut ok = 0u64;
    let mut busy = 0u64;
    let mut errors = 0u64;
    let mut invalid = 0u64;
    let mut hits = 0u64;
    let t0 = std::time::Instant::now();
    for round in 0..repeat.max(1) {
        for (k, (data, inst)) in workload.iter().enumerate() {
            let mut req = Request::solve(data.clone());
            req.id = Some((round * workload.len() + k) as u64);
            if no_cache {
                req.no_cache = Some(true);
            }
            requests += 1;
            // Backpressure: retry `busy` a few times with a short pause
            // before counting the request as dropped.
            let mut resp = client.request(&req).map_err(|e| format!("submit: {e}"))?;
            for _ in 0..3 {
                if resp.status != "busy" {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
                resp = client.request(&req).map_err(|e| format!("submit: {e}"))?;
            }
            match resp.status.as_str() {
                "ok" => {
                    let valid = resp
                        .assignment
                        .as_ref()
                        .is_some_and(|a| Schedule::new(a.clone()).validate(inst).is_ok());
                    if valid {
                        ok += 1;
                    } else {
                        invalid += 1;
                        eprintln!("request {k} (round {round}): invalid schedule returned");
                    }
                    if resp.cached == Some(true) {
                        hits += 1;
                    }
                }
                "busy" => busy += 1,
                _ => {
                    errors += 1;
                    eprintln!(
                        "request {k} (round {round}): {}",
                        resp.error.unwrap_or_default()
                    );
                }
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    println!("requests    {requests}");
    println!("validated   {ok}/{requests}");
    println!("invalid     {invalid}");
    println!("busy        {busy}");
    println!("errors      {errors}");
    println!("cache hits  {hits}");
    println!(
        "hit rate    {:.2}",
        if requests > 0 {
            hits as f64 / requests as f64
        } else {
            0.0
        }
    );
    println!("elapsed     {elapsed:.3} s");
    println!(
        "throughput  {:.1} req/s",
        requests as f64 / elapsed.max(1e-9)
    );
    if shutdown {
        client
            .shutdown_server()
            .map_err(|e| format!("shutdown: {e}"))?;
        println!("server shutdown requested");
    }
    // A dropped (still-busy) request is a failure too: exit 0 must mean
    // the whole workload was solved and validated.
    if invalid > 0 || errors > 0 || busy > 0 {
        return Err(format!(
            "{invalid} invalid schedules, {errors} errors, {busy} dropped busy"
        ));
    }
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let inst = load(args)?;
    let (config, json) = parse_solve_flags(args.get(1..).unwrap_or(&[]))?;
    let solver = config.build().map_err(|e| e.to_string())?;
    let report = solver.solve(&inst).map_err(|e| e.to_string())?;
    report.schedule.validate(&inst).map_err(|e| e.to_string())?;
    if json {
        println!("{}", report_to_json(&inst, &report));
        return Ok(());
    }
    println!("method    {} — {}", report.method, report.guarantee);
    println!(
        "C_max     {}  (~{:.4}, lower bound ~{:.4})",
        report.makespan,
        report.makespan.to_f64(),
        report.lower_bound.to_f64()
    );
    for run in &report.attempts {
        let outcome = match &run.outcome {
            EngineOutcome::Solved { makespan, .. } => format!("C_max {makespan}"),
            EngineOutcome::NotApplicable { reason } => format!("n/a: {reason}"),
            EngineOutcome::Failed { reason } => format!("failed: {reason}"),
        };
        println!(
            "  tried {:<17} {:<28} ({:.2?})",
            run.method.name(),
            outcome,
            run.wall_time
        );
    }
    for i in 0..inst.num_machines() as u32 {
        let jobs = report.schedule.jobs_on(i);
        let load: u64 = match inst.env() {
            bisched_model::MachineEnvironment::Unrelated { times } => {
                jobs.iter().map(|&j| times[i as usize][j as usize]).sum()
            }
            _ => jobs.iter().map(|&j| inst.processing(j)).sum(),
        };
        let time = match inst.env() {
            bisched_model::MachineEnvironment::Uniform { speeds } => {
                Rat::new(load, speeds[i as usize])
            }
            _ => Rat::integer(load),
        };
        println!(
            "M{:<3} time {:>10}  jobs {:?}",
            i + 1,
            time.to_string(),
            jobs
        );
    }
    Ok(())
}
