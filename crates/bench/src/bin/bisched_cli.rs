//! `bisched_cli` — command-line front end for the library.
//!
//! ```text
//! bisched_cli generate q <n> <m> <p> <seed>     emit a random Q instance (text format)
//! bisched_cli generate r <n> <m> <p> <seed>     emit a random R instance
//! bisched_cli info <file>                       describe an instance
//! bisched_cli solve <file> [method]             solve; method = auto | alg1 | alg2 |
//!                                               fptas:<eps> | twoapprox | exact
//! ```
//!
//! Instances use the text format of `bisched_model::io` (see its docs).

use bisched_core::{alg1_sqrt_approx, alg2_random_graph, r2_fptas, r2_two_approx, solve};
use bisched_exact::{branch_and_bound, q2_bipartite_exact, r2_bipartite_exact};
use bisched_graph::{gilbert_bipartite, is_bipartite, Components};
use bisched_model::{from_text, to_text, Instance, JobSizes, Rat, Schedule, SpeedProfile, UnrelatedFamily};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  bisched_cli generate q <n> <m> <p> <seed>
  bisched_cli generate r <n> <m> <p> <seed>
  bisched_cli info <file>
  bisched_cli solve <file> [auto|alg1|alg2|fptas:<eps>|twoapprox|exact]";

fn parse<T: std::str::FromStr>(s: Option<&String>, what: &str) -> Result<T, String> {
    s.ok_or_else(|| format!("missing {what}\n{USAGE}"))?
        .parse()
        .map_err(|_| format!("bad {what}: {s:?}"))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let kind = args.first().map(String::as_str);
    let n: usize = parse(args.get(1), "n")?;
    let m: usize = parse(args.get(2), "m")?;
    let p: f64 = parse(args.get(3), "p")?;
    let seed: u64 = parse(args.get(4), "seed")?;
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gilbert_bipartite(n / 2, n - n / 2, p, &mut rng);
    let inst = match kind {
        Some("q") => Instance::uniform(
            SpeedProfile::Geometric { ratio: 2 }.speeds(m),
            JobSizes::Uniform { lo: 1, hi: 50 }.sample(n, &mut rng),
            g,
        ),
        Some("r") => Instance::unrelated(
            UnrelatedFamily::Uncorrelated { lo: 1, hi: 100 }.sample(m, n, &mut rng),
            g,
        ),
        _ => return Err(format!("generate needs q|r\n{USAGE}")),
    }
    .map_err(|e| e.to_string())?;
    print!("{}", to_text(&inst));
    Ok(())
}

fn load(args: &[String]) -> Result<Instance, String> {
    let path = args.first().ok_or_else(|| format!("missing file\n{USAGE}"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    from_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let inst = load(args)?;
    let g = inst.graph();
    println!("instance    {}", inst.describe());
    println!("jobs        {}", inst.num_jobs());
    println!("machines    {}", inst.num_machines());
    println!("edges       {}", g.num_edges());
    println!("bipartite   {}", is_bipartite(g));
    println!("components  {}", Components::of(g).count());
    println!("sum p_j     {}", inst.total_processing());
    println!("p_max       {}", inst.max_processing());
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let inst = load(args)?;
    let method = args.get(1).map(String::as_str).unwrap_or("auto");
    let (schedule, label): (Schedule, String) = match method {
        "auto" => {
            let s = solve(&inst).map_err(|e| e.to_string())?;
            let label = format!("{:?} — {}", s.method, s.guarantee);
            (s.schedule, label)
        }
        "alg1" => {
            let r = alg1_sqrt_approx(&inst).map_err(|e| e.to_string())?;
            (r.schedule, format!("Algorithm 1 (winner {})", r.winner))
        }
        "alg2" => {
            let r = alg2_random_graph(&inst).map_err(|e| e.to_string())?;
            (r.schedule, format!("Algorithm 2 (k = {})", r.k))
        }
        "twoapprox" => (
            r2_two_approx(&inst).map_err(|e| e.to_string())?,
            "Algorithm 4 (2-approx)".into(),
        ),
        "exact" => {
            let opt = if inst.num_machines() == 2 {
                match inst.env() {
                    bisched_model::MachineEnvironment::Unrelated { .. } => {
                        r2_bipartite_exact(&inst).map_err(|e| e.to_string())?
                    }
                    _ => q2_bipartite_exact(&inst).map_err(|e| e.to_string())?,
                }
            } else {
                branch_and_bound(&inst, 200_000_000)
                    .optimum
                    .ok_or("infeasible or node budget exhausted")?
            };
            (opt.schedule, "exact oracle".into())
        }
        m if m.starts_with("fptas:") => {
            let eps: f64 = m[6..].parse().map_err(|_| format!("bad eps in {m}"))?;
            (
                r2_fptas(&inst, eps).map_err(|e| e.to_string())?,
                format!("Algorithm 5 (FPTAS, eps = {eps})"),
            )
        }
        other => return Err(format!("unknown method {other}\n{USAGE}")),
    };
    schedule.validate(&inst).map_err(|e| e.to_string())?;
    let makespan = schedule.makespan(&inst);
    println!("method    {label}");
    println!("C_max     {makespan}  (~{:.4})", makespan.to_f64());
    for i in 0..inst.num_machines() as u32 {
        let jobs = schedule.jobs_on(i);
        let load: u64 = match inst.env() {
            bisched_model::MachineEnvironment::Unrelated { times } => {
                jobs.iter().map(|&j| times[i as usize][j as usize]).sum()
            }
            _ => jobs.iter().map(|&j| inst.processing(j)).sum(),
        };
        let time = match inst.env() {
            bisched_model::MachineEnvironment::Uniform { speeds } => {
                Rat::new(load, speeds[i as usize])
            }
            _ => Rat::integer(load),
        };
        println!("M{:<3} time {:>10}  jobs {:?}", i + 1, time.to_string(), jobs);
    }
    Ok(())
}
