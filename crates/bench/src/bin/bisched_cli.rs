//! `bisched_cli` — command-line front end for the library.
//!
//! ```text
//! bisched_cli generate q <n> <m> <p> <seed>     emit a random Q instance (text format)
//! bisched_cli generate r <n> <m> <p> <seed>     emit a random R instance
//! bisched_cli info <file>                       describe an instance
//! bisched_cli solve <file> [--method <m>] [--portfolio <m1,m2,…>]
//!                          [--eps <e>] [--fptas-state-cap <states>]
//!                          [--node-limit <nodes>] [--cp-node-limit <nodes>]
//!                          [--bnb-deadline-ms <ms>] [--race-deadline-ms <ms>]
//!                          [--exact-budget <mass>] [--trace-out <file>]
//!                          [--profile-out <file>] [--json]
//! bisched_cli serve [--addr <host:port>] [--workers <n>] [--batch <b>]
//!                   [--cache-cap <n>] [--queue-cap <n>] [--shards <n>]
//!                   [--cache-snapshot <path>] [--log-level <level>]
//!                   [--log-json] [--exemplar-k <n>] [--exemplar-window-s <s>]
//! bisched_cli submit --addr <host:port> <file.jsonl> [--repeat <k>]
//!                    [--method <m>] [--clients <k>] [--stall-us <us>]
//!                    [--frame json|binary] [--no-cache] [--shutdown] [--json]
//! bisched_cli metrics --addr <host:port>
//! bisched_cli trace --addr <host:port> [--shard <i>] [--json]
//! bisched_cli lab list
//! bisched_cli lab run --suite <name>[,<name>...] [--out <path>]
//!                     [--reps <n>] [--warmup <n>] [--seq] [--trace-out <file>]
//!                     [--profile-out <file>]
//! bisched_cli lab compare <old.json> <new.json> [--fail-threshold <pct>]
//!                         [--quality-threshold <pct>]
//! bisched_cli analyze [--root <path>] [--self-check]
//! ```
//!
//! `solve` runs the `Solver` engine. `--method` names one engine
//! (`exact-q2`, `exact-r2`, `branch-and-bound`, `cp`, `alg1`, `alg2`,
//! `bjw`, `fptas`, `twoapprox`, `greedy-lpt`, `greedy`) or `auto`
//! (default); `--portfolio` **races** several concurrently and keeps the
//! best (the first proven optimum cancels the rest); `--node-limit` and
//! `--bnb-deadline-ms` budget the branch-and-bound search (nodes and
//! wall clock — whichever is hit first truncates it to a heuristic),
//! `--cp-node-limit` budgets the CP engine's decision nodes,
//! `--race-deadline-ms` bounds a whole portfolio race's wall clock,
//! `--fptas-state-cap` bounds the FPTAS DP's live width (the solver
//! coarsens ε gracefully when the cap bites, and the reported guarantee
//! carries the effective ε), and
//! `--exact-budget` the pseudo-polynomial DP gate. `--trace-out` turns on
//! the flight recorder for the solve and writes a Chrome trace-event JSON
//! file — load it at `chrome://tracing` or <https://ui.perfetto.dev> to
//! see the portfolio race, engine spans, and incumbent/probe timelines on
//! a timeline per thread. `--profile-out` folds the same recording into a
//! **self-time profile** and writes flamegraph-collapsed stacks
//! (`solve;portfolio_race;cp 1234` — one line per distinct span stack,
//! self-microseconds as the weight; pipe into `flamegraph.pl` or paste
//! into a flamegraph viewer); both flags share one recording, so they
//! compose. `--json` emits the full
//! `SolveReport` — method, guarantee, makespan, lower bound, per-engine
//! timings (plus the race's own wall time and per-attempt `cancelled`
//! flags under a portfolio) — as a single JSON object for experiment
//! scripts.
//!
//! Instances use the text format of `bisched_model::io` (see its docs).
//! `serve` runs the `bisched-service` daemon until a `shutdown` request
//! arrives (`--shards N` splits it into N independent cache/queue/worker
//! shards routed by canonical fingerprint, `--cache-snapshot <path>`
//! persists every shard's cache on drain and warm-starts the next boot
//! from it, `--log-level error|warn|info|debug|trace` tunes its stderr
//! logging, `--log-json` switches it to one JSON object per line, and
//! `--exemplar-k` / `--exemplar-window-s` size the always-on slow-request
//! exemplar buffer); `metrics` fetches a running daemon's Prometheus text
//! exposition (the `metrics` verb) and prints it to stdout, ready to be
//! relayed by a scrape endpoint; `trace` fetches the daemon's
//! slow-request exemplars (the `trace` verb) — the K worst requests of
//! the current and previous windows as span trees with engine counters,
//! merged across shards and tagged with their shard id, or one shard's
//! ring under `--shard <i>` —
//! and pretty-prints them (`--json` for the raw payload);
//! `submit` pushes a JSONL workload (one
//! `InstanceData` object
//! per line) through a running daemon, validates every returned schedule
//! client-side, and prints a throughput summary — `--repeat` replays the
//! file K times so cache behaviour shows up in the hit rate, `--clients
//! K` is the saturation mode (K concurrent connections replay the
//! workload with striped start offsets; the summary adds aggregate req/s
//! and the daemon's per-shard hit rates), `--frame binary` negotiates
//! the length-prefixed binary framing before submitting, `--stall-us`
//! asks the daemon to hold each request on its shard for that many
//! microseconds (load-shape emulation; see `PROTOCOL.md`), and
//! `--json` swaps the summary for one machine-readable JSON object
//! (req/s, hit rate, client-side p50/p99 latency, per-shard hit rates)
//! so load runs can be scripted alongside the in-process lab suites.
//!
//! `lab` drives the `bisched-lab` benchmark harness: `list` prints the
//! scenario corpus, `run` executes a suite and writes
//! `BENCH_<suite>.json` plus a Markdown summary, and `compare` is the
//! perf-regression gate (nonzero exit on regression).
//!
//! `analyze` runs the `bisched-analyze` workspace invariant linter
//! (cache-key completeness, Method coverage, SAFETY comments,
//! forbid-unsafe wiring, metric/event name registries — see
//! `crates/analyze/README.md`); `--self-check` proves every lint still
//! fires against seeded mutations. Nonzero exit on findings, so it can
//! gate CI directly.

use bisched_core::{EngineOutcome, Guarantee, Method, SolveReport, SolverConfig};
use bisched_graph::{gilbert_bipartite, is_bipartite, Components};
use bisched_model::{
    from_text, to_text, Instance, JobSizes, Rat, Schedule, SpeedProfile, UnrelatedFamily,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::{Map, Value};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("lab") => cmd_lab(&args[1..]),
        Some("analyze") => return cmd_analyze(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  bisched_cli generate q <n> <m> <p> <seed>
  bisched_cli generate r <n> <m> <p> <seed>
  bisched_cli info <file>
  bisched_cli solve <file> [--method auto|exact-q2|exact-r2|branch-and-bound|cp|alg1|alg2|
                            bjw|fptas|twoapprox|greedy-lpt|greedy]
                           [--portfolio <m1,m2,...>] [--eps <e>] [--fptas-state-cap <states>]
                           [--node-limit <nodes>] [--cp-node-limit <nodes>]
                           [--bnb-deadline-ms <ms>] [--race-deadline-ms <ms>]
                           [--exact-budget <mass>] [--trace-out <file>]
                           [--profile-out <file>] [--json]
  bisched_cli serve [--addr <host:port>] [--workers <n>] [--batch <b>]
                    [--cache-cap <n>] [--queue-cap <n>] [--shards <n>]
                    [--cache-snapshot <path>]
                    [--log-level error|warn|info|debug|trace] [--log-json]
                    [--exemplar-k <n>] [--exemplar-window-s <s>]
  bisched_cli submit --addr <host:port> <file.jsonl> [--repeat <k>] [--method <m>]
                     [--clients <k>] [--stall-us <us>] [--frame json|binary]
                     [--no-cache] [--shutdown] [--json]
  bisched_cli metrics --addr <host:port>
  bisched_cli trace --addr <host:port> [--shard <i>] [--json]
  bisched_cli lab list
  bisched_cli lab run --suite <name>[,<name>...] [--out <path>]
                      [--reps <n>] [--warmup <n>] [--seq] [--trace-out <file>]
                      [--profile-out <file>]
                      (suites: quick, full, paper-sec4, fptas-scaling, service_scaling)
  bisched_cli lab compare <old.json> <new.json> [--fail-threshold <pct>]
                          [--quality-threshold <pct>]
  bisched_cli analyze [--root <path>] [--self-check]";

fn parse<T: std::str::FromStr>(s: Option<&String>, what: &str) -> Result<T, String> {
    s.ok_or_else(|| format!("missing {what}\n{USAGE}"))?
        .parse()
        .map_err(|_| format!("bad {what}: {s:?}"))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let kind = args.first().map(String::as_str);
    let n: usize = parse(args.get(1), "n")?;
    let m: usize = parse(args.get(2), "m")?;
    let p: f64 = parse(args.get(3), "p")?;
    let seed: u64 = parse(args.get(4), "seed")?;
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gilbert_bipartite(n / 2, n - n / 2, p, &mut rng);
    let inst = match kind {
        Some("q") => Instance::uniform(
            SpeedProfile::Geometric { ratio: 2 }.speeds(m),
            JobSizes::Uniform { lo: 1, hi: 50 }.sample(n, &mut rng),
            g,
        ),
        Some("r") => Instance::unrelated(
            UnrelatedFamily::Uncorrelated { lo: 1, hi: 100 }.sample(m, n, &mut rng),
            g,
        ),
        _ => return Err(format!("generate needs q|r\n{USAGE}")),
    }
    .map_err(|e| e.to_string())?;
    print!("{}", to_text(&inst));
    Ok(())
}

fn load(args: &[String]) -> Result<Instance, String> {
    let path = args
        .first()
        .ok_or_else(|| format!("missing file\n{USAGE}"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    from_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let inst = load(args)?;
    let g = inst.graph();
    println!("instance    {}", inst.describe());
    println!("jobs        {}", inst.num_jobs());
    println!("machines    {}", inst.num_machines());
    println!("edges       {}", g.num_edges());
    println!("bipartite   {}", is_bipartite(g));
    println!("components  {}", Components::of(g).count());
    println!("sum p_j     {}", inst.total_processing());
    println!("p_max       {}", inst.max_processing());
    Ok(())
}

/// The recording-backed output flags shared by `solve` and `lab run`.
#[derive(Default)]
struct RecorderOuts {
    /// Chrome trace-event JSON destination (`--trace-out`).
    trace: Option<String>,
    /// Flamegraph-collapsed self-time profile destination
    /// (`--profile-out`).
    profile: Option<String>,
}

impl RecorderOuts {
    fn wanted(&self) -> bool {
        self.trace.is_some() || self.profile.is_some()
    }

    /// Stops the recorder once and writes whichever outputs were asked
    /// for — both flags fold the same recording.
    fn write(&self) -> Result<(), String> {
        if !self.wanted() {
            return Ok(());
        }
        let trace = bisched_obs::stop_recording();
        if let Some(path) = &self.trace {
            std::fs::write(path, trace.to_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "trace: {} events ({} dropped) -> {path}",
                trace.events.len(),
                trace.dropped
            );
        }
        if let Some(path) = &self.profile {
            let profile = bisched_obs::Profile::from_trace(&trace);
            std::fs::write(path, profile.to_collapsed()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("profile: {} span stacks -> {path}", profile.rows.len());
        }
        Ok(())
    }
}

/// Parses the `solve` flags into a solver configuration.
fn parse_solve_flags(args: &[String]) -> Result<(SolverConfig, bool, RecorderOuts), String> {
    let mut config = SolverConfig::new();
    let mut json = false;
    let mut outs = RecorderOuts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--trace-out" => outs.trace = Some(parse(it.next(), "--trace-out value")?),
            "--profile-out" => outs.profile = Some(parse(it.next(), "--profile-out value")?),
            "--eps" => {
                let eps: f64 = parse(it.next(), "--eps value")?;
                config = config.eps(eps);
            }
            "--fptas-state-cap" => {
                let cap: usize = parse(it.next(), "--fptas-state-cap value")?;
                config = config.fptas_state_cap(Some(cap));
            }
            "--node-limit" => {
                let nodes: u64 = parse(it.next(), "--node-limit value")?;
                config = config.bnb_node_limit(nodes);
            }
            "--bnb-deadline-ms" => {
                let ms: u64 = parse(it.next(), "--bnb-deadline-ms value")?;
                config = config.bnb_deadline(Some(std::time::Duration::from_millis(ms)));
            }
            "--cp-node-limit" => {
                let nodes: u64 = parse(it.next(), "--cp-node-limit value")?;
                config = config.cp_node_limit(nodes);
            }
            "--race-deadline-ms" => {
                let ms: u64 = parse(it.next(), "--race-deadline-ms value")?;
                config = config.race_deadline(Some(std::time::Duration::from_millis(ms)));
            }
            "--exact-budget" => {
                let budget: u64 = parse(it.next(), "--exact-budget value")?;
                config = config.exact_budget(budget);
            }
            "--method" => {
                let name = it
                    .next()
                    .ok_or(format!("missing --method value\n{USAGE}"))?;
                if name != "auto" {
                    let method: Method = name.parse().map_err(|e| format!("{e}\n{USAGE}"))?;
                    config = config.method(method);
                }
            }
            "--portfolio" => {
                let list = it
                    .next()
                    .ok_or(format!("missing --portfolio value\n{USAGE}"))?;
                let methods: Vec<Method> = list
                    .split(',')
                    .map(|name| name.trim().parse().map_err(|e| format!("{e}\n{USAGE}")))
                    .collect::<Result<_, String>>()?;
                config = config.portfolio(methods);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok((config, json, outs))
}

/// Per-thread flight-recorder ring capacity for `--trace-out` /
/// `--profile-out` (events are ~56 bytes, so this is a few MB per
/// recording thread).
const TRACE_CAPACITY: usize = 1 << 16;

/// Renders the full report as one JSON object for experiment scripts.
fn report_to_json(inst: &Instance, report: &SolveReport) -> Value {
    let float = |x: f64| Value::Number(serde_json::Number::from_f64(x));
    let rat = |r: &Rat| -> Value {
        let mut m = Map::new();
        m.insert(
            "num".into(),
            Value::Number(serde_json::Number::from_u64(r.num())),
        );
        m.insert(
            "den".into(),
            Value::Number(serde_json::Number::from_u64(r.den())),
        );
        m.insert("value".into(), float(r.to_f64()));
        Value::Object(m)
    };
    let guarantee = |g: &Guarantee| -> Value {
        let mut m = Map::new();
        let kind = match g {
            Guarantee::Optimal => "optimal",
            Guarantee::Ratio(_) => "ratio",
            Guarantee::SqrtSumP => "sqrt-sum-p",
            Guarantee::OnePlusEps(_) => "one-plus-eps",
            Guarantee::Heuristic => "heuristic",
        };
        m.insert("kind".into(), Value::String(kind.into()));
        if let Some(bound) = g.ratio_bound(inst) {
            m.insert("ratio_bound".into(), float(bound));
        }
        m.insert("provenance".into(), Value::String(g.provenance().into()));
        m.insert("display".into(), Value::String(g.to_string()));
        Value::Object(m)
    };
    let mut obj = Map::new();
    obj.insert("instance".into(), Value::String(inst.describe()));
    obj.insert("method".into(), Value::String(report.method.name().into()));
    obj.insert("guarantee".into(), guarantee(&report.guarantee));
    obj.insert("makespan".into(), rat(&report.makespan));
    obj.insert("lower_bound".into(), rat(&report.lower_bound));
    obj.insert(
        "total_time_s".into(),
        float(report.total_time.as_secs_f64()),
    );
    if let Some(race) = report.race_time {
        obj.insert("race_time_s".into(), float(race.as_secs_f64()));
    }
    obj.insert(
        "seed".into(),
        Value::Number(serde_json::Number::from_u64(report.seed)),
    );
    let attempts: Vec<Value> = report
        .attempts
        .iter()
        .map(|run| {
            let mut a = Map::new();
            a.insert("method".into(), Value::String(run.method.name().into()));
            let (status, detail) = match &run.outcome {
                EngineOutcome::Solved { makespan, .. } => {
                    a.insert("makespan".into(), rat(makespan));
                    ("solved", None)
                }
                EngineOutcome::NotApplicable { reason } => ("not-applicable", Some(reason)),
                EngineOutcome::Failed { reason } => ("failed", Some(reason)),
            };
            a.insert("status".into(), Value::String(status.into()));
            if let Some(reason) = detail {
                a.insert("reason".into(), Value::String(reason.clone()));
            }
            a.insert("cancelled".into(), Value::Bool(run.cancelled));
            a.insert("wall_time_s".into(), float(run.wall_time.as_secs_f64()));
            if !run.stats.is_empty() {
                let mut s = Map::new();
                for (k, v) in run.stats.iter() {
                    s.insert(k.into(), Value::Number(serde_json::Number::from_u64(v)));
                }
                a.insert("stats".into(), Value::Object(s));
            }
            Value::Object(a)
        })
        .collect();
    obj.insert("attempts".into(), Value::Array(attempts));
    obj.insert(
        "assignment".into(),
        Value::Array(
            report
                .schedule
                .assignment()
                .iter()
                .map(|&m| Value::Number(serde_json::Number::from_u64(m as u64)))
                .collect(),
        ),
    );
    Value::Object(obj)
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use bisched_service::{ServeOptions, Service};
    let mut opts = ServeOptions {
        addr: "127.0.0.1:7878".into(),
        ..ServeOptions::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = parse(it.next(), "--addr value")?,
            "--workers" => opts.workers = parse(it.next(), "--workers value")?,
            "--batch" => opts.batch = parse(it.next(), "--batch value")?,
            "--cache-cap" => opts.cache_cap = parse(it.next(), "--cache-cap value")?,
            "--queue-cap" => opts.queue_cap = parse(it.next(), "--queue-cap value")?,
            "--log-level" => {
                let level: bisched_obs::log::LogLevel = parse(it.next(), "--log-level value")?;
                bisched_obs::log::set_level(level);
            }
            "--log-json" => bisched_obs::log::set_format(bisched_obs::log::LogFormat::Json),
            "--exemplar-k" => opts.exemplar_k = parse(it.next(), "--exemplar-k value")?,
            "--exemplar-window-s" => {
                let secs: f64 = parse(it.next(), "--exemplar-window-s value")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--exemplar-window-s must be positive\n{USAGE}"));
                }
                opts.exemplar_window = std::time::Duration::from_secs_f64(secs);
            }
            "--shards" => {
                opts.shards = parse(it.next(), "--shards value")?;
                if opts.shards == 0 {
                    return Err(format!("--shards must be at least 1\n{USAGE}"));
                }
            }
            "--cache-snapshot" => {
                let path: String = parse(it.next(), "--cache-snapshot value")?;
                opts.cache_snapshot = Some(path.into());
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let workers = opts.workers;
    let shards = opts.shards;
    let service = Service::start(opts).map_err(|e| format!("serve: {e}"))?;
    println!(
        "bisched-service listening on {} ({} workers, {} shard{}); send {{\"verb\":\"shutdown\"}} to stop",
        service.local_addr(),
        workers,
        shards,
        if shards == 1 { "" } else { "s" }
    );
    service.join(); // blocks until a shutdown request; logs final stats
    Ok(())
}

/// Per-connection submit counters, merged across `--clients` threads.
#[derive(Default)]
struct SubmitTally {
    requests: u64,
    ok: u64,
    busy: u64,
    errors: u64,
    invalid: u64,
    hits: u64,
    latencies_ms: Vec<f64>,
}

impl SubmitTally {
    fn merge(&mut self, other: SubmitTally) {
        self.requests += other.requests;
        self.ok += other.ok;
        self.busy += other.busy;
        self.errors += other.errors;
        self.invalid += other.invalid;
        self.hits += other.hits;
        self.latencies_ms.extend(other.latencies_ms);
    }
}

/// The per-request knobs one submit connection replays the workload
/// under.
#[derive(Clone)]
struct SubmitKnobs {
    repeat: usize,
    method: Option<String>,
    no_cache: bool,
    stall_us: Option<u64>,
    binary: bool,
}

/// Replays the whole workload `repeat` times on one connection,
/// starting at `offset` (clients stripe their start offsets so they
/// touch different shards at any instant).
fn run_submit_client(
    addr: &str,
    workload: &[(bisched_model::InstanceData, Instance)],
    knobs: &SubmitKnobs,
    offset: usize,
) -> Result<SubmitTally, String> {
    use bisched_service::{Client, Request};
    let mut client = Client::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    if knobs.binary {
        client
            .upgrade_binary()
            .map_err(|e| format!("upgrade: {e}"))?;
    }
    let mut tally = SubmitTally::default();
    for round in 0..knobs.repeat.max(1) {
        for i in 0..workload.len() {
            let k = (offset + i) % workload.len();
            let (data, inst) = &workload[k];
            let mut req = Request::solve(data.clone());
            req.id = Some((round * workload.len() + k) as u64);
            req.method = knobs.method.clone();
            req.stall_us = knobs.stall_us;
            if knobs.no_cache {
                req.no_cache = Some(true);
            }
            tally.requests += 1;
            // Backpressure: retry `busy` a few times with a short pause
            // before counting the request as dropped.
            let t_req = std::time::Instant::now();
            let mut resp = client.request(&req).map_err(|e| format!("submit: {e}"))?;
            for _ in 0..3 {
                if resp.status != "busy" {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
                resp = client.request(&req).map_err(|e| format!("submit: {e}"))?;
            }
            if resp.status == "ok" {
                tally.latencies_ms.push(t_req.elapsed().as_secs_f64() * 1e3);
            }
            match resp.status.as_str() {
                "ok" => {
                    let valid = resp
                        .assignment
                        .as_ref()
                        .is_some_and(|a| Schedule::new(a.clone()).validate(inst).is_ok());
                    if valid {
                        tally.ok += 1;
                    } else {
                        tally.invalid += 1;
                        eprintln!("request {k} (round {round}): invalid schedule returned");
                    }
                    if resp.cached == Some(true) {
                        tally.hits += 1;
                    }
                }
                "busy" => tally.busy += 1,
                _ => {
                    tally.errors += 1;
                    eprintln!(
                        "request {k} (round {round}): {}",
                        resp.error.unwrap_or_default()
                    );
                }
            }
        }
    }
    Ok(tally)
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    use bisched_service::Client;
    let mut addr: Option<String> = None;
    let mut file: Option<String> = None;
    let mut clients: usize = 1;
    let mut shutdown = false;
    let mut json = false;
    let mut knobs = SubmitKnobs {
        repeat: 1,
        method: None,
        no_cache: false,
        stall_us: None,
        binary: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parse(it.next(), "--addr value")?),
            "--repeat" => knobs.repeat = parse(it.next(), "--repeat value")?,
            "--method" => knobs.method = Some(parse(it.next(), "--method value")?),
            "--clients" => {
                clients = parse(it.next(), "--clients value")?;
                if clients == 0 {
                    return Err(format!("--clients must be at least 1\n{USAGE}"));
                }
            }
            "--stall-us" => knobs.stall_us = Some(parse(it.next(), "--stall-us value")?),
            "--frame" => match parse::<String>(it.next(), "--frame value")?.as_str() {
                "binary" => knobs.binary = true,
                "json" => knobs.binary = false,
                other => return Err(format!("--frame must be json|binary, got {other}\n{USAGE}")),
            },
            "--no-cache" => knobs.no_cache = true,
            "--shutdown" => shutdown = true,
            "--json" => json = true,
            other if !other.starts_with("--") => file = Some(other.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let addr = addr.ok_or_else(|| format!("submit requires --addr\n{USAGE}"))?;
    let path = file.ok_or_else(|| format!("submit requires a .jsonl file\n{USAGE}"))?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let mut workload: Vec<(bisched_model::InstanceData, Instance)> = Vec::new();
    for (k, line) in text.lines().enumerate() {
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let data: bisched_model::InstanceData =
            serde_json::from_str(line).map_err(|e| format!("{path}:{}: {e}", k + 1))?;
        let inst = data
            .clone()
            .into_instance()
            .map_err(|e| format!("{path}:{}: {e}", k + 1))?;
        workload.push((data, inst));
    }
    if workload.is_empty() {
        return Err(format!("{path}: no instances"));
    }
    let workload = std::sync::Arc::new(workload);
    let t0 = std::time::Instant::now();
    let mut tally = SubmitTally::default();
    if clients == 1 {
        tally = run_submit_client(&addr, &workload, &knobs, 0)?;
    } else {
        // Saturation mode: K connections replay the same workload
        // concurrently, start offsets striped so the daemons' shards are
        // all busy from the first request.
        let threads: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                let workload = std::sync::Arc::clone(&workload);
                let knobs = knobs.clone();
                let offset = c * workload.len() / clients;
                std::thread::spawn(move || run_submit_client(&addr, &workload, &knobs, offset))
            })
            .collect();
        for t in threads {
            tally.merge(t.join().map_err(|_| "client thread panicked")??);
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let SubmitTally {
        requests,
        ok,
        busy,
        errors,
        invalid,
        hits,
        mut latencies_ms,
    } = tally;
    // Per-shard cache behaviour comes from the daemon itself: one extra
    // stats round trip after the load run.
    let shard_stats = Client::connect(&addr)
        .ok()
        .and_then(|mut c| c.stats().ok())
        .map(|s| s.shards)
        .unwrap_or_default();
    let hit_rate = if requests > 0 {
        hits as f64 / requests as f64
    } else {
        0.0
    };
    let req_per_s = requests as f64 / elapsed.max(1e-9);
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let p50_ms = bisched_lab::percentile(&latencies_ms, 50.0);
    let p99_ms = bisched_lab::percentile(&latencies_ms, 99.0);
    if json {
        // One machine-readable object so the lab (and CI) can script
        // service-level load runs alongside the in-process suites.
        let float = |x: f64| Value::Number(serde_json::Number::from_f64(x));
        let int = |x: u64| Value::Number(serde_json::Number::from_u64(x));
        let mut obj = Map::new();
        obj.insert("requests".into(), int(requests));
        obj.insert("clients".into(), int(clients as u64));
        obj.insert("validated".into(), int(ok));
        obj.insert("invalid".into(), int(invalid));
        obj.insert("busy".into(), int(busy));
        obj.insert("errors".into(), int(errors));
        obj.insert("cache_hits".into(), int(hits));
        obj.insert("hit_rate".into(), float(hit_rate));
        obj.insert("elapsed_s".into(), float(elapsed));
        obj.insert("req_per_s".into(), float(req_per_s));
        obj.insert("p50_ms".into(), float(p50_ms));
        obj.insert("p99_ms".into(), float(p99_ms));
        let shards: Vec<Value> = shard_stats
            .iter()
            .map(|s| {
                let mut m = Map::new();
                m.insert("shard".into(), int(s.shard));
                m.insert("requests".into(), int(s.requests));
                m.insert("cache_hits".into(), int(s.cache_hits));
                m.insert("cache_misses".into(), int(s.cache_misses));
                m.insert("hit_rate".into(), float(s.hit_rate));
                Value::Object(m)
            })
            .collect();
        obj.insert("shards".into(), Value::Array(shards));
        println!("{}", Value::Object(obj));
    } else {
        println!("requests    {requests}");
        println!("clients     {clients}");
        println!("validated   {ok}/{requests}");
        println!("invalid     {invalid}");
        println!("busy        {busy}");
        println!("errors      {errors}");
        println!("cache hits  {hits}");
        println!("hit rate    {hit_rate:.2}");
        println!("elapsed     {elapsed:.3} s");
        println!("throughput  {req_per_s:.1} req/s");
        println!("p50 latency {p50_ms:.3} ms");
        println!("p99 latency {p99_ms:.3} ms");
        for s in &shard_stats {
            println!(
                "shard {:<3} hits {:>6}  misses {:>6}  hit rate {:.2}",
                s.shard, s.cache_hits, s.cache_misses, s.hit_rate
            );
        }
    }
    if shutdown {
        Client::connect(&addr)
            .map_err(|e| format!("shutdown connect: {e}"))?
            .shutdown_server()
            .map_err(|e| format!("shutdown: {e}"))?;
        if !json {
            println!("server shutdown requested");
        }
    }
    // A dropped (still-busy) request is a failure too: exit 0 must mean
    // the whole workload was solved and validated.
    if invalid > 0 || errors > 0 || busy > 0 {
        return Err(format!(
            "{invalid} invalid schedules, {errors} errors, {busy} dropped busy"
        ));
    }
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    use bisched_service::Client;
    let mut addr: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parse(it.next(), "--addr value")?),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let addr = addr.ok_or_else(|| format!("metrics requires --addr\n{USAGE}"))?;
    let mut client = Client::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
    let text = client.metrics().map_err(|e| format!("metrics: {e}"))?;
    print!("{text}");
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    use bisched_service::{Client, SpanData};
    let mut addr: Option<String> = None;
    let mut json = false;
    let mut shard: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parse(it.next(), "--addr value")?),
            "--json" => json = true,
            "--shard" => shard = Some(parse(it.next(), "--shard value")?),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let addr = addr.ok_or_else(|| format!("trace requires --addr\n{USAGE}"))?;
    let mut client = Client::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
    let exemplars = client.trace(shard).map_err(|e| format!("trace: {e}"))?;
    if json {
        println!(
            "{}",
            serde_json::to_string(&exemplars).expect("exemplars serialize")
        );
        return Ok(());
    }
    // Indented span tree per exemplar, slowest first — counters inline
    // so a slow request explains itself without another round trip.
    fn print_span(span: &SpanData, depth: usize) {
        let indent = "  ".repeat(depth + 1);
        let counters = if span.counters.is_empty() {
            String::new()
        } else {
            let kv: Vec<String> = span
                .counters
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            format!("  [{}]", kv.join(" "))
        };
        println!(
            "{indent}{:<16} +{:.3} ms  {:.3} ms{counters}",
            span.name, span.start_ms, span.dur_ms
        );
        for child in &span.children {
            print_span(child, depth + 1);
        }
    }
    println!(
        "slow-request exemplars: window {} ({}s, k={})",
        exemplars.window, exemplars.window_s, exemplars.k
    );
    for (label, bucket) in [
        ("current", &exemplars.current),
        ("previous", &exemplars.previous),
    ] {
        println!("{label} window: {} exemplar(s)", bucket.len());
        for ex in bucket {
            println!(
                "  request {}  shard {}  {:.3} ms  {}  fingerprint {}{}",
                ex.request_id,
                ex.shard,
                ex.total_ms,
                ex.method.as_deref().unwrap_or("-"),
                &ex.fingerprint[..8.min(ex.fingerprint.len())],
                if ex.cached { "  (cache hit)" } else { "" }
            );
            print_span(&ex.root, 1);
        }
    }
    Ok(())
}

fn cmd_lab(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("list") => cmd_lab_list(),
        Some("run") => cmd_lab_run(&args[1..]),
        Some("compare") => cmd_lab_compare(&args[1..]),
        _ => Err(format!("lab needs list|run|compare\n{USAGE}")),
    }
}

fn cmd_lab_list() -> Result<(), String> {
    for name in bisched_lab::suite_names() {
        let suite = bisched_lab::suite(name).expect("registered suite");
        let configs: Vec<&str> = suite.configs.iter().map(|c| c.name.as_str()).collect();
        println!(
            "suite {:<12} {} scenarios x {} configs [{}]{}",
            suite.name,
            suite.scenarios.len(),
            suite.configs.len(),
            configs.join(", "),
            if suite.sec4.is_some() {
                "  + Section 4.1 tables"
            } else if suite.service.is_some() {
                "  + sharded-service scaling ladder"
            } else {
                ""
            }
        );
        for scenario in &suite.scenarios {
            println!("  {}", scenario.describe());
        }
    }
    Ok(())
}

fn cmd_lab_run(args: &[String]) -> Result<(), String> {
    let mut suite_name: Option<String> = None;
    let mut out: Option<String> = None;
    let mut outs = RecorderOuts::default();
    let mut opts = bisched_lab::RunOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--suite" => suite_name = Some(parse(it.next(), "--suite value")?),
            "--out" => out = Some(parse(it.next(), "--out value")?),
            "--reps" => opts.reps = parse(it.next(), "--reps value")?,
            "--warmup" => opts.warmup = parse(it.next(), "--warmup value")?,
            "--seq" => opts.parallel = false,
            "--trace-out" => outs.trace = Some(parse(it.next(), "--trace-out value")?),
            "--profile-out" => outs.profile = Some(parse(it.next(), "--profile-out value")?),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let name = suite_name.ok_or_else(|| format!("lab run requires --suite\n{USAGE}"))?;
    // `--suite a,b` runs several suites and merges their cells into one
    // report (one baseline file can then cover e.g. the solver corpus
    // AND the service scaling ladder, and `lab compare` gates both).
    let suites: Vec<bisched_lab::Suite> = name
        .split(',')
        .map(|part| {
            bisched_lab::suite(part.trim()).ok_or_else(|| {
                format!(
                    "unknown suite {part:?}; registered: {}",
                    bisched_lab::suite_names().join(", ")
                )
            })
        })
        .collect::<Result<_, String>>()?;
    if suites.is_empty() {
        return Err(format!("lab run requires --suite\n{USAGE}"));
    }
    // A traced/profiled lab run measures an *instrumented* suite: fine
    // for seeing where the time goes, not for committing as a baseline.
    if outs.wanted() {
        bisched_obs::start_recording(TRACE_CAPACITY);
    }
    let mut report: Option<bisched_lab::LabReport> = None;
    for suite in &suites {
        let part = bisched_lab::run_suite(suite, &opts);
        report = Some(match report.take() {
            None => part,
            Some(mut merged) => {
                merged.suite = format!("{}+{}", merged.suite, part.suite);
                merged.total_wall_s += part.total_wall_s;
                merged.cells.extend(part.cells);
                merged.sec4_graph = merged.sec4_graph.or(part.sec4_graph);
                merged.sec4_alg2 = merged.sec4_alg2.or(part.sec4_alg2);
                merged
            }
        });
    }
    let report = report.expect("at least one suite ran");
    outs.write()?;
    let errored: Vec<&bisched_lab::CellReport> =
        report.cells.iter().filter(|c| c.error.is_some()).collect();
    for cell in &errored {
        eprintln!(
            "cell {} failed: {}",
            cell.key(),
            cell.error.as_deref().unwrap_or("?")
        );
    }
    let json_path = std::path::PathBuf::from(
        out.unwrap_or_else(|| format!("BENCH_{}.json", name.replace(',', "+"))),
    );
    let md_path = report
        .write_files(&json_path)
        .map_err(|e| format!("{}: {e}", json_path.display()))?;
    println!(
        "suite {:<12} {} cells in {:.2} s  ->  {} + {}",
        report.suite,
        report.cells.len(),
        report.total_wall_s,
        json_path.display(),
        md_path.display()
    );
    if !errored.is_empty() {
        return Err(format!("{} cells failed to solve", errored.len()));
    }
    Ok(())
}

fn cmd_lab_compare(args: &[String]) -> Result<(), String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut opts = bisched_lab::CompareOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fail-threshold" => {
                opts.fail_threshold_pct = parse(it.next(), "--fail-threshold value")?
            }
            "--quality-threshold" => {
                opts.quality_threshold_pct = parse(it.next(), "--quality-threshold value")?
            }
            other if !other.starts_with("--") => paths.push(arg),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err(format!("lab compare needs <old.json> <new.json>\n{USAGE}"));
    };
    let load = |path: &str| -> Result<bisched_lab::LabReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
    };
    let old = load(old_path)?;
    let new = load(new_path)?;
    println!(
        "comparing {} ({} cells) vs {} ({} cells), fail threshold +{}% p50, +{}% quality",
        old_path,
        old.cells.len(),
        new_path,
        new.cells.len(),
        opts.fail_threshold_pct,
        opts.quality_threshold_pct
    );
    let outcome = bisched_lab::compare(&old, &new, &opts);
    print!("{}", outcome.render());
    if outcome.passed() {
        Ok(())
    } else {
        Err(format!(
            "perf gate failed: {} regressions, {} missing cells",
            outcome.regressions.len(),
            outcome.missing.len()
        ))
    }
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let inst = load(args)?;
    let (config, json, outs) = parse_solve_flags(args.get(1..).unwrap_or(&[]))?;
    let solver = config.build().map_err(|e| e.to_string())?;
    if outs.wanted() {
        bisched_obs::start_recording(TRACE_CAPACITY);
    }
    let solve_result = solver.solve(&inst);
    outs.write()?;
    let report = solve_result.map_err(|e| e.to_string())?;
    report.schedule.validate(&inst).map_err(|e| e.to_string())?;
    if json {
        println!("{}", report_to_json(&inst, &report));
        return Ok(());
    }
    println!("method    {} — {}", report.method, report.guarantee);
    println!(
        "C_max     {}  (~{:.4}, lower bound ~{:.4})",
        report.makespan,
        report.makespan.to_f64(),
        report.lower_bound.to_f64()
    );
    for run in &report.attempts {
        let outcome = match &run.outcome {
            EngineOutcome::Solved { makespan, .. } => format!("C_max {makespan}"),
            EngineOutcome::NotApplicable { reason } => format!("n/a: {reason}"),
            EngineOutcome::Failed { reason } => format!("failed: {reason}"),
        };
        println!(
            "  tried {:<17} {:<28} ({:.2?}){}",
            run.method.name(),
            outcome,
            run.wall_time,
            if run.cancelled {
                "  [race-cancelled]"
            } else {
                ""
            }
        );
        if !run.stats.is_empty() {
            let kv: Vec<String> = run.stats.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!("        stats: {}", kv.join(" "));
        }
    }
    for i in 0..inst.num_machines() as u32 {
        let jobs = report.schedule.jobs_on(i);
        let load: u64 = match inst.env() {
            bisched_model::MachineEnvironment::Unrelated { times } => {
                jobs.iter().map(|&j| times[i as usize][j as usize]).sum()
            }
            _ => jobs.iter().map(|&j| inst.processing(j)).sum(),
        };
        let time = match inst.env() {
            bisched_model::MachineEnvironment::Uniform { speeds } => {
                Rat::new(load, speeds[i as usize])
            }
            _ => Rat::integer(load),
        };
        println!(
            "M{:<3} time {:>10}  jobs {:?}",
            i + 1,
            time.to_string(),
            jobs
        );
    }
    Ok(())
}

/// `analyze` — run the bisched-analyze workspace invariant linter (see
/// `crates/analyze/README.md` for the lint catalogue). Exit codes: 0
/// clean, 1 findings or failed self-check, 2 tree not analyzable.
fn cmd_analyze(args: &[String]) -> ExitCode {
    let mut root: Option<std::path::PathBuf> = None;
    let mut self_check = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(p.into()),
                None => {
                    eprintln!("missing --root value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--self-check" => self_check = true,
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| bisched_analyze::find_workspace_root(&d))
    }) else {
        eprintln!("analyze: no workspace root found (pass --root)");
        return ExitCode::from(2);
    };

    if self_check {
        return match bisched_analyze::self_check(&root) {
            Ok(results) => {
                let mut failed = false;
                for r in &results {
                    let mark = if r.caught { "caught" } else { "MISSED" };
                    println!("self-check [{mark}] {}", r.mutation);
                    failed |= !r.caught;
                }
                if failed {
                    eprintln!("analyze: self-check FAILED — a lint has gone blind");
                    ExitCode::FAILURE
                } else {
                    println!(
                        "analyze: self-check ok ({} mutations caught)",
                        results.len()
                    );
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("analyze: self-check could not run: {e}");
                ExitCode::from(2)
            }
        };
    }
    match bisched_analyze::run_all(&bisched_analyze::Sources::new(&root)) {
        Ok(findings) if findings.is_empty() => {
            println!("analyze: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("analyze: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("analyze: cannot analyze tree: {e}");
            ExitCode::from(2)
        }
    }
}
