//! E5 — Corollary 11 and Lemma 12: inequitable-coloring class sizes on
//! `G_{n,n,p(n)}`.
//!
//! Sub-critical `p(n) = o(1/n)`: `|V'_2|/n → 0` (Corollary 11).
//! Critical `p(n) = a/n`: `|V'_2|/n ≤ 1 − (1−a/n)^n + o(1)` (Lemma 12).
//! The table shows the measured mean fraction converging under the bound
//! as `n` doubles.

use bisched_bench::{f4, section, Table};
use bisched_graph::EdgeProbability;
use bisched_random::random_graph_statistics;

fn main() {
    section("sub-critical p(n) = n^-1.5: |V'2|/n must vanish (Corollary 11)");
    let mut t = Table::new(&["n", "p(n)", "|V'2|/n mean", "trend"]);
    let mut prev: Option<f64> = None;
    for n in [128usize, 256, 512, 1024, 2048, 4096] {
        let row =
            random_graph_statistics(n, EdgeProbability::SubCritical { exponent: 1.5 }, 24, 11);
        let trend = prev.map_or("-".to_string(), |p| {
            if row.minor_fraction_mean <= p {
                "↓".into()
            } else {
                "↑".into()
            }
        });
        prev = Some(row.minor_fraction_mean);
        t.row(vec![
            n.to_string(),
            format!("{:.2e}", row.p),
            f4(row.minor_fraction_mean),
            trend,
        ]);
    }
    t.print();

    section("critical p(n) = a/n: |V'2|/n vs Lemma 12 bound 1-(1-a/n)^n");
    let mut t2 = Table::new(&["a", "n", "|V'2|/n mean", "Lemma 12 bound", "under bound"]);
    for a in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
        for n in [256usize, 1024, 4096] {
            let row = random_graph_statistics(n, EdgeProbability::Critical { a }, 24, 13);
            // Lemma 12 is an a.a.s. *upper* bound with an o(n) slack; at
            // finite n allow a 5% + 1/sqrt(n) tolerance.
            let slack = 0.05 + 1.0 / (n as f64).sqrt();
            let ok = row.minor_fraction_mean <= row.lemma12_bound + slack;
            assert!(
                ok,
                "Lemma 12 violated beyond slack: a={a}, n={n}: {} > {}",
                row.minor_fraction_mean, row.lemma12_bound
            );
            t2.row(vec![
                format!("{a}"),
                n.to_string(),
                f4(row.minor_fraction_mean),
                f4(row.lemma12_bound),
                ok.to_string(),
            ]);
        }
    }
    t2.print();
    println!(
        "\nReading: the sub-critical fraction decays toward 0; the critical\n\
         fraction sits under the 1-(1-a/n)^n curve for every a."
    );
}
