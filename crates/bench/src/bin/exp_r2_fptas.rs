//! E9 — Theorem 22: Algorithm 5 is an FPTAS for
//! `R2 | G = bipartite | C_max`.
//!
//! Sweeps `ε` × `n`: the measured ratio against the exact oracle must stay
//! within `1 + ε` (it is usually exact), and the running time scales
//! polynomially in `n` and `1/ε`.

use bisched_bench::{f4, section, timed, Table};
use bisched_core::r2_fptas;
use bisched_exact::r2_bipartite_exact;
use bisched_graph::gilbert_bipartite;
use bisched_model::{Instance, UnrelatedFamily};
use bisched_random::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

fn main() {
    section("guarantee sweep: ratio vs exact oracle (24 seeds per cell)");
    let mut t = Table::new(&["eps", "n", "ratio mean", "ratio max", "1+eps"]);
    for &eps in &[1.0, 0.5, 0.25, 0.1, 0.05, 0.02] {
        for n in [20usize, 60, 120] {
            let ratios: Vec<f64> = (0..24u64)
                .into_par_iter()
                .map(|seed| {
                    let mut rng = StdRng::seed_from_u64(9100 + seed);
                    let g = gilbert_bipartite(n / 2, n / 2, 2.0 / n as f64, &mut rng);
                    let inst = Instance::unrelated(
                        UnrelatedFamily::Uncorrelated { lo: 1, hi: 100 }.sample(2, n, &mut rng),
                        g,
                    )
                    .unwrap();
                    let s = r2_fptas(&inst, eps).unwrap();
                    s.validate(&inst).unwrap();
                    let opt = r2_bipartite_exact(&inst).unwrap();
                    s.makespan(&inst).ratio_to(&opt.makespan)
                })
                .collect();
            let sm = Summary::of(ratios.iter().copied());
            assert!(
                sm.max <= 1.0 + eps + 1e-9,
                "Theorem 22 violated at eps={eps}: {}",
                sm.max
            );
            t.row(vec![
                format!("{eps}"),
                n.to_string(),
                f4(sm.mean()),
                f4(sm.max),
                f4(1.0 + eps),
            ]);
        }
    }
    t.print();

    section("time scaling in 1/eps (n = 400, single thread)");
    let mut t2 = Table::new(&["eps", "time (ms)", "makespan"]);
    let mut rng = StdRng::seed_from_u64(9200);
    let n = 400usize;
    let g = gilbert_bipartite(n / 2, n / 2, 2.0 / n as f64, &mut rng);
    let inst = Instance::unrelated(
        UnrelatedFamily::Uncorrelated { lo: 1, hi: 1000 }.sample(2, n, &mut rng),
        g,
    )
    .unwrap();
    for &eps in &[1.0, 0.5, 0.25, 0.1, 0.05, 0.02] {
        let (s, dt) = timed(|| r2_fptas(&inst, eps).unwrap());
        t2.row(vec![
            format!("{eps}"),
            format!("{:.1}", dt * 1e3),
            s.makespan(&inst).to_string(),
        ]);
    }
    t2.print();
    println!(
        "\nReading: every (ε, n) cell respects the 1+ε contract; the time\n\
         column grows smoothly as ε shrinks — the FPTAS trade-off dial."
    );
}
