//! E4 — Theorem 4: the `O(n³)` exact algorithm for
//! `Q2 | G = bipartite, p_j = 1 | C_max`.
//!
//! Panel 1 cross-validates three independent routes to the optimum (brute
//! force ≡ direct component-DP ≡ the paper's FPTAS-per-split route).
//! Panel 2 measures the scaling of both polynomial routes — the FPTAS
//! route's growth should track the advertised `O(n³)` while the direct DP
//! stays quadratic-ish.

use bisched_bench::{f4, section, timed, Table};
use bisched_core::thm4_fptas_route;
use bisched_exact::{brute_force, q2_bipartite_exact};
use bisched_graph::gilbert_bipartite;
use bisched_model::Instance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    section("cross-validation: brute force = direct DP = FPTAS route (24 instances)");
    let mut rng = StdRng::seed_from_u64(404);
    let mut agreements = 0;
    for _ in 0..24 {
        let n = rng.gen_range(2..=10);
        let g = gilbert_bipartite(n / 2, n - n / 2, 0.5, &mut rng);
        let s1 = rng.gen_range(1..=5);
        let s2 = rng.gen_range(1..=s1);
        let inst = Instance::uniform(vec![s1, s2], vec![1; n], g).unwrap();
        let bf = brute_force(&inst).unwrap().makespan;
        let dp = q2_bipartite_exact(&inst).unwrap().makespan;
        let fp = thm4_fptas_route(&inst).unwrap().makespan;
        assert_eq!(bf, dp, "DP disagrees with brute force (n={n})");
        assert_eq!(bf, fp, "FPTAS route disagrees with brute force (n={n})");
        agreements += 1;
    }
    println!("{agreements}/24 instances: all three routes agree exactly.");

    section("scaling: direct DP vs FPTAS route (speeds 3:1, p = 2/n)");
    let mut t = Table::new(&[
        "n",
        "C*_max",
        "direct DP (s)",
        "FPTAS route (s)",
        "route ratio vs prev n (≈8 ⇒ n³)",
    ]);
    let mut prev_time: Option<f64> = None;
    for n in [50usize, 100, 200, 400] {
        let mut rng = StdRng::seed_from_u64(500 + n as u64);
        let g = gilbert_bipartite(n / 2, n / 2, 2.0 / n as f64, &mut rng);
        let inst = Instance::uniform(vec![3, 1], vec![1; n], g).unwrap();
        let (dp, dp_t) = timed(|| q2_bipartite_exact(&inst).unwrap());
        let (fp, fp_t) = timed(|| thm4_fptas_route(&inst).unwrap());
        assert_eq!(dp.makespan, fp.makespan);
        let growth = prev_time.map(|p| fp_t / p);
        prev_time = Some(fp_t);
        t.row(vec![
            n.to_string(),
            dp.makespan.to_string(),
            f4(dp_t),
            f4(fp_t),
            growth.map_or("-".into(), f4),
        ]);
    }
    t.print();
    println!(
        "\nReading: both routes return identical optima; the FPTAS route's\n\
         time multiplies by ≈8 per doubling, i.e. the Theorem 4 O(n³)."
    );
}
