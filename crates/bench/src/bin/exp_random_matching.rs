//! E6 — Lemmas 13/14 and Theorems 15/17: maximum matchings in
//! `G_{n,n,p(n)}` and the `|V'_2|/μ ≤ 1.6` ratio.
//!
//! * `p = a/n`: `μ/n ≥ 1 − e^{e^{−a}−1} − o(1)` (Lemma 13, Mastin–Jaillet);
//! * `p = ω(1/n)`: `μ/n → 1` (Theorem 15 / Corollary 18 via Zito's
//!   Theorem 17);
//! * the Lemma 14 ratio `|V'_2|/μ` stays below the curve
//!   `(1−e^{−a})/(1−e^{e^{−a}−1})` and its limit `e/(e−1) < 1.6`.

use bisched_bench::{f4, section, Table};
use bisched_graph::EdgeProbability;
use bisched_random::{lemma14_limit, lemma14_ratio_curve, random_graph_statistics};

fn main() {
    section("critical p = a/n: matching fraction vs Lemma 13 lower bound");
    let mut t = Table::new(&["a", "n", "mu/n mean", "Lemma 13 bound", "above bound"]);
    for a in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
        for n in [256usize, 1024, 4096] {
            let row = random_graph_statistics(n, EdgeProbability::Critical { a }, 24, 17);
            let slack = 1.0 / (n as f64).sqrt();
            let ok = row.matching_fraction_mean >= row.lemma13_bound - slack;
            assert!(
                ok,
                "Lemma 13 violated: a={a}, n={n}: {} < {}",
                row.matching_fraction_mean, row.lemma13_bound
            );
            t.row(vec![
                format!("{a}"),
                n.to_string(),
                f4(row.matching_fraction_mean),
                f4(row.lemma13_bound),
                ok.to_string(),
            ]);
        }
    }
    t.print();

    section("super-critical regimes: mu/n -> 1 (Theorems 15/17)");
    let mut t2 = Table::new(&["regime", "n", "mu/n mean", "1 - mu/n"]);
    for regime in [
        EdgeProbability::SuperCritical {
            c: 1.0,
            exponent: 0.5,
        },
        EdgeProbability::Constant { p: 0.1 },
    ] {
        for n in [256usize, 1024, 4096] {
            let row = random_graph_statistics(n, regime, 16, 19);
            t2.row(vec![
                row.regime.clone(),
                n.to_string(),
                f4(row.matching_fraction_mean),
                format!("{:.2e}", 1.0 - row.matching_fraction_mean),
            ]);
        }
    }
    t2.print();

    section("Lemma 14 ratio |V'2|/mu vs its limit curve (n = 4096)");
    let mut t3 = Table::new(&[
        "a",
        "ratio mean",
        "ratio max",
        "curve (1-e^-a)/(1-e^(e^-a -1))",
        "limit e/(e-1)",
    ]);
    for a in [0.5f64, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let row = random_graph_statistics(4096, EdgeProbability::Critical { a }, 24, 23);
        assert!(
            row.ratio_max <= 1.6 + 0.05,
            "Lemma 14's 1.6 exceeded: a={a}: {}",
            row.ratio_max
        );
        t3.row(vec![
            format!("{a}"),
            f4(row.ratio_mean),
            f4(row.ratio_max),
            f4(lemma14_ratio_curve(a)),
            f4(lemma14_limit()),
        ]);
    }
    t3.print();
    println!(
        "\nReading: mu/n clears the Lemma 13 curve from above; the Lemma 14\n\
         ratio tracks its analytic curve and never crosses e/(e-1) < 1.6."
    );
}
