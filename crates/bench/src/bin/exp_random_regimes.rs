//! E7 — Theorem 19: Algorithm 2 is a.a.s. a 2-approximation for
//! `Q | G = G_{n,n,p(n)}, p_j = 1 | C_max`, in *every* `p(n)` regime and
//! for every speed shape.
//!
//! The ratio is measured against the graph-aware lower bound
//! `max(cover(2n, all machines), cover(μ, M_2..M_m), 1/s_1)` — exactly the
//! quantity the proof of Theorem 19 compares against. The `2 + o(1)`
//! promise shows up as the max column staying at/below 2 with the
//! overshoot shrinking as `n` doubles.

use bisched_bench::{f4, section, Table};
use bisched_graph::EdgeProbability;
use bisched_model::SpeedProfile;
use bisched_random::alg2_ratio_experiment;

fn main() {
    let regimes = [
        EdgeProbability::SubCritical { exponent: 1.5 },
        EdgeProbability::Critical { a: 1.0 },
        EdgeProbability::Critical { a: 4.0 },
        EdgeProbability::SuperCritical {
            c: 1.0,
            exponent: 0.5,
        },
        EdgeProbability::Constant { p: 0.1 },
    ];
    let profiles = [
        SpeedProfile::Equal,
        SpeedProfile::Geometric { ratio: 2 },
        SpeedProfile::OneFast { factor: 16 },
        SpeedProfile::TwoTier {
            fast_count: 2,
            factor: 8,
        },
    ];

    section("Algorithm 2 vs graph-aware LB (m = 6, 16 seeds per cell)");
    let mut t = Table::new(&["regime", "speeds", "n", "ratio mean", "ratio max", "k mean"]);
    let mut global_max: f64 = 0.0;
    for regime in regimes {
        for profile in profiles {
            for n in [128usize, 512, 2048] {
                let row = alg2_ratio_experiment(n, regime, profile, 6, 16, 29);
                global_max = global_max.max(row.ratio_max);
                t.row(vec![
                    row.regime.clone(),
                    row.speeds.clone(),
                    n.to_string(),
                    f4(row.ratio_mean),
                    f4(row.ratio_max),
                    f4(row.k_mean),
                ]);
            }
        }
    }
    t.print();
    println!("\nglobal worst ratio over all cells: {global_max:.4}");
    assert!(
        global_max <= 2.0 + 0.25,
        "Theorem 19's a.a.s. 2-approximation violated far beyond finite-n slack"
    );
    println!(
        "Reading: every regime × speed shape stays at ratio ≤ 2 (+ finite-n\n\
         slack); the a.a.s. claim of Theorem 19 is visible as the max column\n\
         tightening with n."
    );
}
