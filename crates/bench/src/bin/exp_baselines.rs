//! E11 — prior art and the price of a guarantee.
//!
//! Panel 1 (benign random instances): the Bodlaender–Jansen–Woeginger
//! 2-approximation [3] and plain graph-aware LPT actually *win* on
//! friendly inputs — Algorithm 1 pays a constant-factor "insurance
//! premium" for its worst-case machinery (reserved machine groups, the
//! two-machine `S1` fallback).
//!
//! Panel 2 (adversarial stars): a single heavy job conflicting with
//! everything, plus a fast machine, makes greedy LPT collapse — its ratio
//! grows linearly with the star width, while Algorithm 1 (whose `S1`
//! FPTAS sees the trap) and BJW stay bounded. This is exactly the regime
//! the paper's guarantees are for.

use bisched_baselines::{bjw_two_approx, coloring_split, greedy_lpt};
use bisched_bench::{f4, section, Table};
use bisched_core::alg1_sqrt_approx;
use bisched_exact::branch_and_bound;
use bisched_graph::{gilbert_bipartite, GraphBuilder};
use bisched_model::{Instance, JobSizes, Rat, SpeedProfile};
use bisched_random::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

fn main() {
    section("benign panel: ratio vs exact OPT (n = 9, m = 4, 24 seeds)");
    let mut t = Table::new(&[
        "speeds",
        "Alg1 mean",
        "BJW mean",
        "greedy-LPT mean",
        "color-split mean",
    ]);
    for profile in [
        SpeedProfile::Equal,
        SpeedProfile::OneFast { factor: 4 },
        SpeedProfile::OneFast { factor: 16 },
        SpeedProfile::Geometric { ratio: 2 },
    ] {
        let rows: Vec<(f64, f64, f64, f64)> = (0..24u64)
            .into_par_iter()
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(1100 + seed);
                let n = 9;
                let g = gilbert_bipartite(4, 5, 0.35, &mut rng);
                let p = JobSizes::Uniform { lo: 1, hi: 15 }.sample(n, &mut rng);
                let inst = Instance::uniform(profile.speeds(4), p, g).unwrap();
                let out = branch_and_bound(&inst, 50_000_000);
                assert!(out.complete);
                let opt = out.optimum.unwrap().makespan;
                let a1 = alg1_sqrt_approx(&inst).unwrap().makespan.ratio_to(&opt);
                let bjw = bjw_two_approx(&inst)
                    .unwrap()
                    .makespan(&inst)
                    .ratio_to(&opt);
                let lpt = greedy_lpt(&inst).unwrap().makespan(&inst).ratio_to(&opt);
                let split = coloring_split(&inst)
                    .unwrap()
                    .makespan(&inst)
                    .ratio_to(&opt);
                (a1, bjw, lpt, split)
            })
            .collect();
        t.row(vec![
            profile.label(),
            f4(Summary::of(rows.iter().map(|r| r.0)).mean()),
            f4(Summary::of(rows.iter().map(|r| r.1)).mean()),
            f4(Summary::of(rows.iter().map(|r| r.2)).mean()),
            f4(Summary::of(rows.iter().map(|r| r.3)).mean()),
        ]);
    }
    t.print();

    section("adversarial panel: heavy-center star, speeds (t, 1, 1)");
    // One heavy job (size t) conflicts with t medium jobs (size t-1 each).
    // OPT parks the mediums on the fast machine and the heavy job on a
    // slow one (C* = t); greedy LPT grabs the fast machine for the heavy
    // job first and strands the mediums on the slow tail.
    let mut t2 = Table::new(&[
        "t (star width)",
        "OPT",
        "Alg1 ratio",
        "BJW ratio",
        "greedy-LPT ratio",
    ]);
    for t_width in [4usize, 8, 16, 32, 64] {
        let mut b = GraphBuilder::new(1);
        let first = b.add_vertices(t_width);
        for leaf in first..first + t_width as u32 {
            b.add_edge(0, leaf);
        }
        let g = b.build();
        let mut p = vec![(t_width as u64 - 1).max(1); t_width + 1];
        p[0] = t_width as u64;
        let inst = Instance::uniform(vec![t_width as u64, 1, 1], p, g).unwrap();
        // OPT: mediums on the fast machine (t*(t-1)/t = t-1 .. ceil), heavy
        // on a slow one (t). Verify with the oracle at small t.
        let opt = if t_width <= 16 {
            branch_and_bound(&inst, 100_000_000)
                .optimum
                .unwrap()
                .makespan
        } else {
            Rat::integer(t_width as u64)
        };
        let a1 = alg1_sqrt_approx(&inst).unwrap().makespan.ratio_to(&opt);
        let bjw = bjw_two_approx(&inst)
            .unwrap()
            .makespan(&inst)
            .ratio_to(&opt);
        let lpt = greedy_lpt(&inst).unwrap().makespan(&inst).ratio_to(&opt);
        t2.row(vec![
            t_width.to_string(),
            opt.to_string(),
            f4(a1),
            f4(bjw),
            f4(lpt),
        ]);
    }
    t2.print();
    println!(
        "\nReading: on benign inputs the cheap heuristics win and Algorithm 1\n\
         pays its worst-case insurance premium; on the adversarial star the\n\
         premium pays out — greedy LPT's ratio grows with the star width\n\
         while Algorithm 1 stays bounded (Theorem 9's whole point)."
    );
}
