//! E3 — Theorem 9: Algorithm 1's approximation quality for
//! `Q | G = bipartite | C_max`.
//!
//! Two panels:
//!
//! * **oracle panel** (small n): ratio against the exact branch-and-bound
//!   optimum, swept over edge density × speed profile × job sizes — every
//!   ratio must sit below the `√Σp_j` budget, and typically far below;
//! * **scale panel** (large n): ratio against the exact `C**_max` lower
//!   bound, where no oracle can follow — shows the algorithm stays
//!   constant-factor-ish on natural inputs even though the worst case
//!   cannot be beaten (Theorem 8).

use bisched_bench::{f2, f4, section, Table};
use bisched_core::alg1_sqrt_approx;
use bisched_exact::branch_and_bound;
use bisched_graph::gilbert_bipartite;
use bisched_model::{Instance, JobSizes, SpeedProfile};
use bisched_random::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

fn main() {
    let profiles = [
        SpeedProfile::Equal,
        SpeedProfile::Geometric { ratio: 2 },
        SpeedProfile::OneFast { factor: 8 },
    ];
    let sizes = [
        JobSizes::Unit,
        JobSizes::Uniform { lo: 1, hi: 20 },
        JobSizes::Bimodal {
            small: (1, 4),
            big: (30, 60),
            big_percent: 15,
        },
    ];

    section("oracle panel: ratio vs exact OPT (n = 10, m = 4, 24 seeds)");
    let mut t = Table::new(&[
        "p",
        "speeds",
        "sizes",
        "ratio mean",
        "ratio max",
        "sqrt(sum p) mean",
        "S2 wins",
    ]);
    for p in [0.1, 0.3, 0.6] {
        for profile in profiles {
            for size in sizes {
                let results: Vec<(f64, f64, bool)> = (0..24u64)
                    .into_par_iter()
                    .map(|seed| {
                        let mut rng = StdRng::seed_from_u64(7000 + seed);
                        let n = 10;
                        let g = gilbert_bipartite(n / 2, n - n / 2, p, &mut rng);
                        let pj = size.sample(n, &mut rng);
                        let inst = Instance::uniform(profile.speeds(4), pj, g).unwrap();
                        let r = alg1_sqrt_approx(&inst).unwrap();
                        r.schedule.validate(&inst).unwrap();
                        let opt = branch_and_bound(&inst, 50_000_000);
                        assert!(opt.complete);
                        let opt = opt.optimum.unwrap();
                        let ratio = r.makespan.ratio_to(&opt.makespan);
                        let budget = (inst.total_processing() as f64).sqrt();
                        assert!(ratio <= budget + 1e-9, "Theorem 9 violated");
                        (ratio, budget, r.winner == "S2")
                    })
                    .collect();
                let ratio = Summary::of(results.iter().map(|r| r.0));
                let budget = Summary::of(results.iter().map(|r| r.1));
                let s2 = results.iter().filter(|r| r.2).count();
                t.row(vec![
                    f2(p),
                    profile.label(),
                    size.label(),
                    f4(ratio.mean()),
                    f4(ratio.max),
                    f2(budget.mean()),
                    format!("{s2}/24"),
                ]);
            }
        }
    }
    t.print();

    section("scale panel: ratio vs C** lower bound (m = 8, 8 seeds)");
    let mut t2 = Table::new(&["n", "p", "speeds", "ratio mean", "ratio max", "sqrt(sum p)"]);
    for n in [100usize, 400, 1600] {
        for profile in profiles {
            let p = 2.0 / n as f64;
            let results: Vec<(f64, f64)> = (0..8u64)
                .into_par_iter()
                .map(|seed| {
                    let mut rng = StdRng::seed_from_u64(9000 + seed);
                    let g = gilbert_bipartite(n / 2, n - n / 2, p, &mut rng);
                    let pj = JobSizes::Uniform { lo: 1, hi: 20 }.sample(n, &mut rng);
                    let inst = Instance::uniform(profile.speeds(8), pj, g).unwrap();
                    let r = alg1_sqrt_approx(&inst).unwrap();
                    r.schedule.validate(&inst).unwrap();
                    let lb = r.cstar_lower.expect("main path runs at this size");
                    (
                        r.makespan.ratio_to(&lb),
                        (inst.total_processing() as f64).sqrt(),
                    )
                })
                .collect();
            let ratio = Summary::of(results.iter().map(|r| r.0));
            let budget = Summary::of(results.iter().map(|r| r.1));
            t2.row(vec![
                n.to_string(),
                format!("2/n"),
                profile.label(),
                f4(ratio.mean()),
                f4(ratio.max),
                f2(budget.mean()),
            ]);
        }
    }
    t2.print();
    println!(
        "\nReading: worst-case theory allows ratios up to √Σp (right column);\n\
         measured ratios stay near 1–2 on all natural workloads."
    );
}
