//! E12 (ablation) — why each moving part of the paper's algorithms is
//! there. Three studies:
//!
//! 1. **Algorithm 1 candidates**: `S1` (two-machine FPTAS) vs `S2` (the
//!    machine carve) vs best-of-both, across speed shapes. The paper's
//!    proof needs *both*: `S1` covers "optimum concentrated on the two
//!    fast machines", `S2` covers the spread case. The table shows each
//!    candidate alone losing somewhere.
//! 2. **Algorithm 2's split rule**: the paper's `k`-rule (capacity
//!    prefix covering `|V'_2|/2`) vs naive alternatives (one machine for
//!    `V'_2`; half the machines). The rule dominates both.
//! 3. **FPTAS trimming**: Pareto width and time with/without the
//!    `(1+ε/2n)` grid — the trim is what makes big-value instances
//!    tractable at bounded error.

use bisched_bench::{f4, section, timed, Table};
use bisched_core::{alg1_sqrt_approx, alg2_balanced, alg2_random_graph};
use bisched_fptas::{rm_cmax_exact, rm_cmax_fptas};
use bisched_graph::gilbert_bipartite;
use bisched_model::{
    assign_min_completion_uniform, Instance, JobSizes, Rat, SpeedProfile, UnrelatedFamily,
};
use bisched_random::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

fn main() {
    ablation_alg1_candidates();
    ablation_alg2_split_rule();
    ablation_alg2_balanced_extension();
    ablation_fptas_trimming();
}

/// The paper's Section 6 improvement: re-balancing isolated jobs. Shines
/// exactly where the paper predicts — the sub-critical regime, where
/// almost every job is isolated and vanilla Algorithm 2 skips `M_2`.
fn ablation_alg2_balanced_extension() {
    section("Section 6 extension: Algorithm 2 vs isolated-rebalanced variant (m = 6, 16 seeds)");
    let mut t = Table::new(&["regime", "speeds", "alg2/LB", "balanced/LB", "improvement"]);
    type Regime = (&'static str, fn(usize) -> f64);
    let regimes: [Regime; 3] = [
        ("n^-1.5 (o(1/n))", |n| (n as f64).powf(-1.5)),
        ("1/n", |n| 1.0 / n as f64),
        ("p=0.1", |_| 0.1),
    ];
    for (label, p_of_n) in regimes {
        for profile in [SpeedProfile::Equal, SpeedProfile::Geometric { ratio: 2 }] {
            let rows: Vec<(f64, f64)> = (0..16u64)
                .into_par_iter()
                .map(|seed| {
                    let mut rng = StdRng::seed_from_u64(15_000 + seed);
                    let n = 512;
                    let g = gilbert_bipartite(n, n, p_of_n(n), &mut rng);
                    let inst = Instance::uniform(profile.speeds(6), vec![1; 2 * n], g).unwrap();
                    let base = alg2_random_graph(&inst).unwrap();
                    let bal = alg2_balanced(&inst).unwrap();
                    let lb = base.cstar;
                    (base.makespan.ratio_to(&lb), bal.makespan.ratio_to(&lb))
                })
                .collect();
            let base = Summary::of(rows.iter().map(|r| r.0));
            let bal = Summary::of(rows.iter().map(|r| r.1));
            t.row(vec![
                label.to_string(),
                profile.label(),
                f4(base.mean()),
                f4(bal.mean()),
                format!("{:.1}%", 100.0 * (base.mean() - bal.mean()) / base.mean()),
            ]);
        }
    }
    t.print();
    println!("The rebalance closes the sub-critical gap the paper's Section 6 predicts.");
}

fn ablation_alg1_candidates() {
    section("Algorithm 1: S1 alone vs S2 alone vs best-of (vs C** LB, n = 200, 16 seeds)");
    let mut t = Table::new(&[
        "speeds",
        "S1/LB mean",
        "S2/LB mean",
        "best/LB mean",
        "S1 wins",
        "S2 wins",
    ]);
    for profile in [
        SpeedProfile::Equal,
        SpeedProfile::Geometric { ratio: 2 },
        SpeedProfile::OneFast { factor: 32 },
        SpeedProfile::TwoTier {
            fast_count: 2,
            factor: 16,
        },
    ] {
        let rows: Vec<(f64, f64, f64)> = (0..16u64)
            .into_par_iter()
            .filter_map(|seed| {
                let mut rng = StdRng::seed_from_u64(12_000 + seed);
                let n = 200;
                let g = gilbert_bipartite(n / 2, n / 2, 2.0 / n as f64, &mut rng);
                let p = JobSizes::Uniform { lo: 1, hi: 30 }.sample(n, &mut rng);
                let inst = Instance::uniform(profile.speeds(6), p, g).unwrap();
                let r = alg1_sqrt_approx(&inst).unwrap();
                let lb = r.cstar_lower?;
                let s1 = r.s1_makespan?;
                let s2 = r.s2_makespan?;
                Some((s1.ratio_to(&lb), s2.ratio_to(&lb), r.makespan.ratio_to(&lb)))
            })
            .collect();
        let s1 = Summary::of(rows.iter().map(|r| r.0));
        let s2 = Summary::of(rows.iter().map(|r| r.1));
        let best = Summary::of(rows.iter().map(|r| r.2));
        let s1_wins = rows.iter().filter(|r| r.0 < r.1).count();
        let s2_wins = rows.iter().filter(|r| r.1 < r.0).count();
        t.row(vec![
            profile.label(),
            f4(s1.mean()),
            f4(s2.mean()),
            f4(best.mean()),
            format!("{s1_wins}/{}", rows.len()),
            format!("{s2_wins}/{}", rows.len()),
        ]);
    }
    t.print();
    println!("Neither candidate dominates: dropping either breaks a speed regime.");
}

/// Naive alternative split rules for Algorithm 2, sharing its skeleton.
fn alg2_naive_split(inst: &Instance, half_machines: bool) -> Rat {
    let speeds = inst.speeds();
    let m = speeds.len();
    let n = inst.num_jobs();
    let coloring = bisched_graph::inequitable_coloring(inst.graph()).unwrap();
    let (major, minor) = (coloring.major(), coloring.minor());
    let k = if half_machines { (m / 2).max(2) } else { 2 };
    let group_minor: Vec<u32> = (1..k as u32).collect();
    let mut group_major: Vec<u32> = vec![0];
    group_major.extend(k as u32..m as u32);
    let mut loads = vec![0u64; m];
    let mut out = vec![u32::MAX; n];
    let p = inst.processing_all();
    assign_min_completion_uniform(&speeds, p, &minor, &group_minor, &mut loads, &mut out);
    assign_min_completion_uniform(&speeds, p, &major, &group_major, &mut loads, &mut out);
    let s = bisched_model::Schedule::new(out);
    debug_assert!(s.validate(inst).is_ok());
    s.makespan(inst)
}

fn ablation_alg2_split_rule() {
    section("Algorithm 2: paper k-rule vs naive splits (ratios vs C**, m = 8, 16 seeds)");
    let mut t = Table::new(&[
        "speeds",
        "a",
        "paper k-rule",
        "V'2 -> M2 only",
        "half machines",
    ]);
    for profile in [
        SpeedProfile::Geometric { ratio: 2 },
        SpeedProfile::OneFast { factor: 16 },
    ] {
        for a in [1.0f64, 4.0] {
            let rows: Vec<(f64, f64, f64)> = (0..16u64)
                .into_par_iter()
                .map(|seed| {
                    let mut rng = StdRng::seed_from_u64(13_000 + seed);
                    let n = 256;
                    let g = gilbert_bipartite(n, n, a / n as f64, &mut rng);
                    let inst = Instance::uniform(profile.speeds(8), vec![1; 2 * n], g).unwrap();
                    let paper = alg2_random_graph(&inst).unwrap();
                    let lb = paper.cstar;
                    (
                        paper.makespan.ratio_to(&lb),
                        alg2_naive_split(&inst, false).ratio_to(&lb),
                        alg2_naive_split(&inst, true).ratio_to(&lb),
                    )
                })
                .collect();
            t.row(vec![
                profile.label(),
                format!("{a}"),
                f4(Summary::of(rows.iter().map(|r| r.0)).mean()),
                f4(Summary::of(rows.iter().map(|r| r.1)).mean()),
                f4(Summary::of(rows.iter().map(|r| r.2)).mean()),
            ]);
        }
    }
    t.print();
    println!("The capacity-driven k keeps the ratio ≤ 2 where fixed rules drift.");
}

fn ablation_fptas_trimming() {
    section("FPTAS trimming: Pareto width and time, big-value R2 (n = 26)");
    let mut t = Table::new(&["mode", "peak states", "time (ms)", "makespan", "vs exact"]);
    let mut rng = StdRng::seed_from_u64(14_000);
    let times = UnrelatedFamily::Uncorrelated {
        lo: 10_000,
        hi: 1_000_000,
    }
    .sample(2, 26, &mut rng);
    let (exact, t_exact) = timed(|| rm_cmax_exact(&times));
    t.row(vec![
        "exact (no trim)".into(),
        exact.peak_states.to_string(),
        format!("{:.1}", t_exact * 1e3),
        exact.makespan.to_string(),
        "1.0000".into(),
    ]);
    for eps in [0.5f64, 0.1, 0.01] {
        let (r, dt) = timed(|| rm_cmax_fptas(&times, eps));
        let ratio = r.makespan as f64 / exact.makespan as f64;
        assert!(ratio <= 1.0 + eps + 1e-9);
        t.row(vec![
            format!("trim eps={eps}"),
            r.peak_states.to_string(),
            format!("{:.1}", dt * 1e3),
            r.makespan.to_string(),
            f4(ratio),
        ]);
    }
    t.print();
    println!("Trimming collapses the Pareto frontier by orders of magnitude at bounded error.");
}
