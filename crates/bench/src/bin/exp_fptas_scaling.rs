//! `exp_fptas_scaling` — the pinned eps × n × m grid behind the
//! `BENCH_baseline.md` seed-vs-optimized FPTAS table.
//!
//! For every cell of a fixed grid (seeded `R` matrices, the eps ladder the
//! `fptas-scaling` lab suite also runs) this prints the p50 wall time over
//! `REPS` solves, the DP's peak live width, and the number of heap
//! allocations one solve performs (counted by a wrapping global
//! allocator). Rerun after any change to `bisched_fptas::rm_cmax` and
//! refresh the table at the bottom of `BENCH_baseline.md`.

use bisched_fptas::rm_cmax_fptas;
use bisched_model::UnrelatedFamily;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every allocation the process makes; reads are coarse but the
/// per-solve deltas below are measured single-threaded.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates verbatim to `System` (same layout, same
// pointer discipline); the only addition is a Relaxed counter bump, which
// allocates nothing and cannot reenter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

const REPS: usize = 9;

fn main() {
    println!("| m | n | eps | p50 ms | peak states | allocs/solve |");
    println!("|--:|--:|--:|--:|--:|--:|");
    let grid: &[(usize, usize, u64)] = &[
        (2, 40, 9001),
        (2, 80, 9002),
        (2, 160, 9003),
        (3, 20, 9004),
        (3, 40, 9005),
    ];
    for &(m, n, seed) in grid {
        let mut rng = StdRng::seed_from_u64(seed);
        let times = UnrelatedFamily::Uncorrelated { lo: 1, hi: 2_000 }.sample(m, n, &mut rng);
        for &eps in &[1.0f64, 0.25, 0.05] {
            // m = 3 at fine eps is the slow corner; keep the grid honest
            // but bounded.
            if m == 3 && eps < 0.25 {
                continue;
            }
            let _ = rm_cmax_fptas(&times, eps); // warmup
            let a0 = ALLOCS.load(Ordering::Relaxed);
            let mut wall_ms: Vec<f64> = Vec::with_capacity(REPS);
            let mut peak = 0usize;
            for _ in 0..REPS {
                let t0 = Instant::now();
                let r = rm_cmax_fptas(&times, eps);
                wall_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                peak = r.peak_states;
            }
            let allocs = (ALLOCS.load(Ordering::Relaxed) - a0) / REPS as u64;
            wall_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let p50 = wall_ms[REPS / 2];
            println!("| {m} | {n} | {eps} | {p50:.3} | {peak} | {allocs} |");
        }
    }
}
