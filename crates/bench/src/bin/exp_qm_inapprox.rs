//! E2 — Theorem 8: the gap reduction 1-PrExt →
//! `Qm | G = bipartite, p_j = 1 | C_max`, `m ≥ 3`.
//!
//! For YES instances the coloring-derived schedule must undercut the YES
//! bound `(n+2)/(kn)`; for NO instances every schedule any of our solvers
//! can produce must sit at or above the NO bound `1` (= `kn` unscaled) —
//! otherwise the decoded machine labels would be a proper 3-coloring
//! extension, which the exact 1-PrExt decider certifies cannot exist.
//! The widening `k ↦ gap` column is the inapproximability dial.

use bisched_bench::{f4, section, Table};
use bisched_core::{alg1_sqrt_approx, alg2_random_graph, reduce_1prext_to_qm};
use bisched_exact::{
    claw_no_instance, greedy_incumbent, path_yes_instance, precoloring_extension, standard_pins,
};
use bisched_graph::{gilbert_bipartite, Graph, Vertex};
use bisched_model::Rat;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn labeled_instances() -> Vec<(&'static str, Graph, [Vertex; 3], bool)> {
    let mut out: Vec<(&'static str, Graph, [Vertex; 3], bool)> = Vec::new();
    let (g, pins) = path_yes_instance(3);
    out.push(("path+pad (YES)", g, pins, true));
    let (g, pins) = claw_no_instance(3);
    out.push(("claw+pad (NO)", g, pins, false));
    let mut rng = StdRng::seed_from_u64(33);
    for i in 0..4 {
        let g = gilbert_bipartite(4, 4, 0.5, &mut rng);
        let pins = [0u32, 1, 4];
        let yes = precoloring_extension(&g, &standard_pins(&pins), 3).is_some();
        let name: &'static str = match (i, yes) {
            (0, true) | (1, true) | (2, true) | (3, true) => "random G(4,4,.5) YES",
            _ => "random G(4,4,.5) NO",
        };
        out.push((name, g, pins, yes));
    }
    out
}

fn main() {
    section("Theorem 8 gap instances (makespans in scaled time; NO bound = 1)");
    let mut t = Table::new(&[
        "instance",
        "answer",
        "k",
        "m",
        "n'",
        "yes_bound",
        "no_bound/yes_bound",
        "best schedule found",
        "forcing ok",
    ]);
    for (name, g, pins, yes) in labeled_instances() {
        for k in [1u64, 2, 4] {
            let m = 4;
            let red = reduce_1prext_to_qm(&g, pins, k, m);
            let yes_bound = red.yes_bound();
            let gap = red.no_bound().ratio_to(&yes_bound);

            // Candidate schedules: the constructive witness when YES, plus
            // what our solvers reach on their own.
            let mut best: Option<Rat> = None;
            let mut forcing_ok = true;
            let mut consider = |mk: Rat, s: &bisched_model::Schedule| {
                if mk < red.no_bound() && !red.decodes_to_yes(s, &g) {
                    forcing_ok = false;
                }
                if best.is_none_or(|b| mk < b) {
                    best = Some(mk);
                }
            };
            if yes {
                let coloring = precoloring_extension(&g, &standard_pins(&pins), 3).expect("YES");
                let s = red.schedule_from_coloring(&coloring);
                consider(s.makespan(&red.instance), &s);
            }
            let greedy = greedy_incumbent(&red.instance).expect("feasible");
            consider(greedy.makespan, &greedy.schedule);
            let a1 = alg1_sqrt_approx(&red.instance).expect("bipartite");
            consider(a1.makespan, &a1.schedule);
            let a2 = alg2_random_graph(&red.instance).expect("bipartite");
            consider(a2.makespan, &a2.schedule);

            let best = best.expect("candidates exist");
            // Consistency: on YES the witness is under the YES bound; on NO
            // nothing may cross the NO bound without decoding.
            if yes {
                assert!(best <= yes_bound, "{name}: witness exceeded the YES bound");
            } else {
                assert!(
                    best >= red.no_bound(),
                    "{name}: NO instance got a schedule below the gap"
                );
            }
            t.row(vec![
                name.to_string(),
                if yes { "YES" } else { "NO" }.to_string(),
                k.to_string(),
                m.to_string(),
                red.instance.num_jobs().to_string(),
                f4(yes_bound.to_f64()),
                f4(gap),
                f4(best.to_f64()),
                forcing_ok.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\nReading: on YES rows the best schedule ≈ yes_bound; on NO rows it is ≥ 1.\n\
         The gap column grows linearly in k — the Θ(n^(1/2-ε)) wall of Theorem 8."
    );
}
