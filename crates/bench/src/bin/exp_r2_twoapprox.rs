//! E8 — Theorem 21: Algorithm 4 is a 2-approximation for
//! `R2 | G = bipartite | C_max` in `O(n)` time.
//!
//! Panel 1: ratio against the exact Pareto-DP oracle over the standard
//! unrelated-times families — never above 2, usually near 1.
//! Panel 2: wall-clock per job stays flat as `n` doubles (the `O(n)`
//! claim), while the exact oracle's pseudo-polynomial cost blows up.

use bisched_bench::{f4, section, timed, Table};
use bisched_core::r2_two_approx;
use bisched_exact::r2_bipartite_exact;
use bisched_graph::gilbert_bipartite;
use bisched_model::{Instance, UnrelatedFamily};
use bisched_random::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

fn main() {
    let families = [
        UnrelatedFamily::Uncorrelated { lo: 1, hi: 100 },
        UnrelatedFamily::JobCorrelated {
            base: (10, 100),
            spread: 20,
        },
        UnrelatedFamily::MachineCorrelated {
            base: (10, 100),
            spread: 20,
        },
    ];

    section("ratio vs exact oracle (32 seeds per cell, p = 2/n)");
    let mut t = Table::new(&["family", "n", "ratio mean", "ratio max", "<= 2"]);
    for fam in families {
        for n in [16usize, 64, 160] {
            let ratios: Vec<f64> = (0..32u64)
                .into_par_iter()
                .map(|seed| {
                    let mut rng = StdRng::seed_from_u64(8100 + seed);
                    let g = gilbert_bipartite(n / 2, n / 2, 2.0 / n as f64, &mut rng);
                    let inst = Instance::unrelated(fam.sample(2, n, &mut rng), g).unwrap();
                    let s = r2_two_approx(&inst).unwrap();
                    s.validate(&inst).unwrap();
                    let opt = r2_bipartite_exact(&inst).unwrap();
                    s.makespan(&inst).ratio_to(&opt.makespan)
                })
                .collect();
            let sm = Summary::of(ratios.iter().copied());
            assert!(sm.max <= 2.0 + 1e-9, "Theorem 21 violated: {}", sm.max);
            t.row(vec![
                fam.label().to_string(),
                n.to_string(),
                f4(sm.mean()),
                f4(sm.max),
                "true".to_string(),
            ]);
        }
    }
    t.print();

    section("runtime: Algorithm 4 O(n) vs exact pseudo-polynomial oracle");
    let mut t2 = Table::new(&["n", "alg4 (µs)", "alg4 µs/job", "exact oracle (ms)"]);
    for n in [1000usize, 4000, 16000, 64000] {
        let mut rng = StdRng::seed_from_u64(8200);
        let g = gilbert_bipartite(n / 2, n / 2, 2.0 / n as f64, &mut rng);
        let inst = Instance::unrelated(
            UnrelatedFamily::Uncorrelated { lo: 1, hi: 50 }.sample(2, n, &mut rng),
            g,
        )
        .unwrap();
        let (_, t4) = timed(|| r2_two_approx(&inst).unwrap());
        // The oracle only at sizes it can stomach.
        let oracle_ms = if n <= 4000 {
            let (_, to) = timed(|| r2_bipartite_exact(&inst).unwrap());
            format!("{:.1}", to * 1e3)
        } else {
            "(skipped)".to_string()
        };
        t2.row(vec![
            n.to_string(),
            format!("{:.0}", t4 * 1e6),
            f4(t4 * 1e6 / n as f64),
            oracle_ms,
        ]);
    }
    t2.print();
    println!(
        "\nReading: ratios never exceed 2 (Theorem 21); Algorithm 4's\n\
         per-job cost is flat — the O(n) of the theorem — while the exact\n\
         oracle grows superlinearly and exits the picture."
    );
}
