//! E10 — Theorem 24: the gap reduction 1-PrExt →
//! `Rm | G = bipartite | C_max`, `m ≥ 3` — verified **exactly**.
//!
//! Unlike Theorem 8's construction, these instances stay small (n jobs,
//! no gadgets), so the branch-and-bound oracle can certify the gap: YES
//! instances have `C*_max ≤ n`, NO instances `C*_max ≥ d`, for every
//! stretch `d`. The gap `d/n` is unbounded in `p_max` — the
//! `O(n^b · p_max^{1-ε})` impossibility.

use bisched_bench::{f4, section, Table};
use bisched_core::reduce_1prext_to_rm;
use bisched_exact::{
    branch_and_bound, claw_no_instance, path_yes_instance, precoloring_extension, standard_pins,
};
use bisched_graph::{gilbert_bipartite, Graph, Vertex};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    section("exact gap verification over 1-PrExt instances (m = 3)");
    let mut t = Table::new(&[
        "instance",
        "answer",
        "d",
        "OPT",
        "yes_bound (n)",
        "gap d/n",
        "verdict",
    ]);
    let mut rng = StdRng::seed_from_u64(55);
    let mut yes_count = 0;
    let mut no_count = 0;
    // Structured YES/NO instances plus random samples labeled by the
    // exact 1-PrExt decider. Random sparse bipartite graphs are almost
    // always YES, so the claw family supplies guaranteed NO rows.
    let mut cases: Vec<(String, Graph, [Vertex; 3])> = Vec::new();
    let (g, pins) = path_yes_instance(3);
    cases.push(("path (YES)".into(), g, pins));
    let (g, pins) = claw_no_instance(4);
    cases.push(("claw (NO)".into(), g, pins));
    for i in 0..6 {
        let g = gilbert_bipartite(4, 4, 0.6, &mut rng);
        cases.push((format!("G(4,4,.6)#{i}"), g, [0u32, 1, 4]));
    }
    for (name, g, pins) in cases {
        let i = name.clone();
        let yes = precoloring_extension(&g, &standard_pins(&pins), 3).is_some();
        if yes {
            yes_count += 1;
        } else {
            no_count += 1;
        }
        for d in [32u64, 256, 2048] {
            let red = reduce_1prext_to_rm(&g, pins, d, 3);
            let out = branch_and_bound(&red.instance, 100_000_000);
            assert!(out.complete, "oracle must finish");
            let opt = out.optimum.unwrap();
            let verdict = if yes {
                assert!(
                    opt.makespan <= red.yes_bound(),
                    "YES but OPT {} > n",
                    opt.makespan
                );
                assert!(
                    red.decodes_to_yes(&opt.schedule, &g),
                    "cheap optimum must decode to a proper extension"
                );
                "OPT <= n, decodes"
            } else {
                assert!(
                    opt.makespan >= red.no_bound(),
                    "NO but OPT {} < d",
                    opt.makespan
                );
                "OPT >= d"
            };
            t.row(vec![
                i.clone(),
                if yes { "YES" } else { "NO" }.to_string(),
                d.to_string(),
                opt.makespan.to_string(),
                red.yes_bound().to_string(),
                f4(d as f64 / red.yes_bound().to_f64()),
                verdict.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\nsampled {} YES and {} NO instances; every row's verdict certified\n\
         by exhaustive search. The gap column scales linearly in d = p_max,\n\
         matching Theorem 24's O(n^b p_max^(1-eps)) impossibility.",
        yes_count, no_count
    );
}
