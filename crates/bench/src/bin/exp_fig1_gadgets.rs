//! E1 — Figure 1: the gadget components `H1(x)`, `H2(x', x)`,
//! `H3(x'', x', x)` and the Lemma 5–7 forcing properties.
//!
//! Regenerates the paper's only figure as DOT sources, verifies the three
//! lemmas exhaustively over all proper colorings at small parameters, and
//! checks the Theorem 8 component inventory (`n' = n + 48k²n + 4kn + 2`).

use bisched_bench::{kv, section, Table};
use bisched_graph::dot::to_dot;
use bisched_graph::gadgets::{
    attach_h1, attach_h2, attach_h3, lemma5_holds, lemma6_holds, lemma7_holds,
};
use bisched_graph::{is_bipartite, Graph, GraphBuilder};

fn all_proper_colorings(g: &Graph, num_colors: u8, mut f: impl FnMut(&[u8])) -> u64 {
    let n = g.num_vertices();
    let mut colors = vec![0u8; n];
    let total = (num_colors as u64).pow(n as u32);
    let mut proper = 0u64;
    'outer: for code in 0..total {
        let mut c = code;
        for slot in colors.iter_mut() {
            *slot = (c % num_colors as u64) as u8;
            c /= num_colors as u64;
        }
        for (u, w) in g.edges() {
            if colors[u as usize] == colors[w as usize] {
                continue 'outer;
            }
        }
        proper += 1;
        f(&colors);
    }
    proper
}

fn main() {
    section("Figure 1 components (DOT render)");
    {
        let mut b = GraphBuilder::new(1);
        let h = attach_h1(&mut b, 0, 3);
        let g = b.build();
        let labels: Vec<String> = g
            .vertices()
            .map(|v| {
                if v == 0 {
                    "v".into()
                } else {
                    format!("v{}", v)
                }
            })
            .collect();
        println!("{}", to_dot(&g, "H1_x3", Some(&labels)));
        kv("H1(3): vertices (excl. attachment)", h.size());
    }
    {
        let mut b = GraphBuilder::new(1);
        let h = attach_h2(&mut b, 0, 2, 3);
        let g = b.build();
        println!("{}", to_dot(&g, "H2_x2_x3", None));
        kv("H2(2,3): vertices", h.size());
    }
    {
        let mut b = GraphBuilder::new(1);
        let h = attach_h3(&mut b, 0, 1, 2, 3);
        let g = b.build();
        println!("{}", to_dot(&g, "H3_x1_x2_x3", None));
        kv("H3(1,2,3): vertices", h.size());
        kv("all components bipartite", is_bipartite(&g));
    }

    section("Lemma 5: H1(x) forcing (exhaustive over proper colorings)");
    let mut t5 = Table::new(&["x", "colors", "proper colorings", "violations"]);
    for x in 1..=4usize {
        for num_colors in 2..=3u8 {
            let mut b = GraphBuilder::new(1);
            let h = attach_h1(&mut b, 0, x);
            let g = b.build();
            let mut bad = 0u64;
            let proper = all_proper_colorings(&g, num_colors, |colors| {
                if !lemma5_holds(colors, &h, 0, 0) {
                    bad += 1;
                }
            });
            t5.row(vec![
                x.to_string(),
                num_colors.to_string(),
                proper.to_string(),
                bad.to_string(),
            ]);
        }
    }
    t5.print();

    section("Lemma 6: H2(x', x) forcing");
    let mut t6 = Table::new(&["x'", "x", "proper colorings", "violations"]);
    for (xp, x) in [(1usize, 1usize), (1, 2), (2, 2), (2, 3), (3, 2)] {
        let mut b = GraphBuilder::new(1);
        let h = attach_h2(&mut b, 0, xp, x);
        let g = b.build();
        let mut bad = 0u64;
        let proper = all_proper_colorings(&g, 3, |colors| {
            if !lemma6_holds(colors, &h, 0, 0, 1) {
                bad += 1;
            }
        });
        t6.row(vec![
            xp.to_string(),
            x.to_string(),
            proper.to_string(),
            bad.to_string(),
        ]);
    }
    t6.print();

    section("Lemma 7: H3(x'', x', x) forcing");
    let mut t7 = Table::new(&["x''", "x'", "x", "proper colorings", "violations"]);
    for (xpp, xp, x) in [(1usize, 1usize, 1usize), (1, 1, 2), (1, 2, 2), (2, 1, 1)] {
        let mut b = GraphBuilder::new(1);
        let h = attach_h3(&mut b, 0, xpp, xp, x);
        let g = b.build();
        let mut bad = 0u64;
        let proper = all_proper_colorings(&g, 4, |colors| {
            if !lemma7_holds(colors, &h, 0, 0, 1, 2) {
                bad += 1;
            }
        });
        t7.row(vec![
            xpp.to_string(),
            xp.to_string(),
            x.to_string(),
            proper.to_string(),
            bad.to_string(),
        ]);
    }
    t7.print();

    section("Theorem 8 component inventory n' = n + 48k^2 n + 4kn + 2");
    let mut t8 = Table::new(&["n", "k", "x=6k^2n", "x'=kn", "n' (formula)", "n' (built)"]);
    for (n, k) in [(3usize, 1usize), (5, 1), (5, 2), (8, 3)] {
        let x = 6 * k * k * n;
        let xp = k * n;
        let mut b = GraphBuilder::new(n);
        // six components on three (arbitrary distinct) attachment vertices
        attach_h2(&mut b, 0, xp, x);
        attach_h3(&mut b, 0, 1, xp, x);
        attach_h1(&mut b, 1, x);
        attach_h3(&mut b, 1, 1, xp, x);
        attach_h1(&mut b, 2, x);
        attach_h2(&mut b, 2, xp, x);
        let g = b.build();
        let formula = n + 48 * k * k * n + 4 * k * n + 2;
        assert_eq!(g.num_vertices(), formula);
        assert!(is_bipartite(&g));
        t8.row(vec![
            n.to_string(),
            k.to_string(),
            x.to_string(),
            xp.to_string(),
            formula.to_string(),
            g.num_vertices().to_string(),
        ]);
    }
    t8.print();
    println!("\nAll lemma checks: 0 violations expected in every row.");
}
