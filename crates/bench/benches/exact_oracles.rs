//! Criterion benches for the exact oracles: the pseudo-polynomial `Q2`
//! subset-sum DP, the `R2` Pareto DP, the 1-PrExt decider, and branch &
//! bound — quantifying the oracle cost that caps how far the ratio
//! experiments can verify against true optima.

use bisched_exact::{
    branch_and_bound, precoloring_extension, q2_bipartite_exact, r2_bipartite_exact, standard_pins,
};
use bisched_graph::gilbert_bipartite;
use bisched_model::{Instance, JobSizes, UnrelatedFamily};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_q2_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("q2_bipartite_exact");
    group.sample_size(10);
    for n in [100usize, 400, 1600] {
        let mut rng = StdRng::seed_from_u64(30);
        let g = gilbert_bipartite(n / 2, n / 2, 2.0 / n as f64, &mut rng);
        let p = JobSizes::Uniform { lo: 1, hi: 20 }.sample(n, &mut rng);
        let inst = Instance::uniform(vec![3, 1], p, g).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(q2_bipartite_exact(&inst).unwrap().makespan))
        });
    }
    group.finish();
}

fn bench_r2_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("r2_bipartite_exact");
    group.sample_size(10);
    for n in [50usize, 200, 800] {
        let mut rng = StdRng::seed_from_u64(31);
        let g = gilbert_bipartite(n / 2, n / 2, 2.0 / n as f64, &mut rng);
        let times = UnrelatedFamily::Uncorrelated { lo: 1, hi: 30 }.sample(2, n, &mut rng);
        let inst = Instance::unrelated(times, g).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(r2_bipartite_exact(&inst).unwrap().makespan))
        });
    }
    group.finish();
}

fn bench_prext(c: &mut Criterion) {
    let mut group = c.benchmark_group("precoloring_extension");
    for n_side in [6usize, 10, 14] {
        let mut rng = StdRng::seed_from_u64(32);
        let g = gilbert_bipartite(n_side, n_side, 0.4, &mut rng);
        let pins = standard_pins(&[0, 1, n_side as u32]);
        group.bench_with_input(BenchmarkId::from_parameter(2 * n_side), &n_side, |b, _| {
            b.iter(|| black_box(precoloring_extension(&g, &pins, 3).is_some()))
        });
    }
    group.finish();
}

fn bench_bnb(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_and_bound");
    group.sample_size(10);
    // The pruned oracle pushes the practical exhaustive range from ~18
    // jobs to the low twenties; 22 here was out of reach for the seed
    // implementation at these budgets.
    for n in [10usize, 14, 18, 22] {
        let mut rng = StdRng::seed_from_u64(33);
        let g = gilbert_bipartite(n / 2, n / 2, 0.3, &mut rng);
        let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(n, &mut rng);
        let inst = Instance::uniform(vec![4, 2, 1], p, g).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(branch_and_bound(&inst, u64::MAX).optimum.unwrap().makespan))
        });
    }
    group.finish();
}

/// The deadline-budgeted form: what a caller pays for a bounded-latency
/// "best effort in 2 ms" oracle probe.
fn bench_bnb_deadline(c: &mut Criterion) {
    use bisched_exact::{branch_and_bound_with, BnbLimits};
    use std::time::Duration;
    let mut group = c.benchmark_group("branch_and_bound_deadline_2ms");
    group.sample_size(10);
    for n in [20usize, 26] {
        let mut rng = StdRng::seed_from_u64(34);
        let g = gilbert_bipartite(n / 2, n / 2, 0.3, &mut rng);
        let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(n, &mut rng);
        let inst = Instance::identical(4, p, g).unwrap();
        let limits = BnbLimits {
            node_limit: u64::MAX,
            deadline: Some(Duration::from_millis(2)),
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    branch_and_bound_with(&inst, &limits)
                        .optimum
                        .unwrap()
                        .makespan,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_q2_dp,
    bench_r2_dp,
    bench_prext,
    bench_bnb,
    bench_bnb_deadline
);
criterion_main!(benches);
