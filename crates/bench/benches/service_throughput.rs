//! Service-level throughput: round-trip latency through a live
//! `bisched-service` daemon on loopback — cache-hit path, miss path
//! (`no_cache`), and the canonicalizer that fronts the cache.

use bisched_graph::gilbert_bipartite;
use bisched_model::{canonicalize, Instance, InstanceData, JobSizes, SpeedProfile};
use bisched_service::{Client, Request, ServeOptions, Service};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(n: usize) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(0xBE9C);
    (0..n)
        .map(|k| {
            let jobs = 10 + k % 4;
            let g = gilbert_bipartite(jobs / 2, jobs - jobs / 2, 0.3, &mut rng);
            let sizes = JobSizes::Uniform { lo: 1, hi: 30 }.sample(jobs, &mut rng);
            Instance::uniform(
                SpeedProfile::Geometric { ratio: 2 }.speeds(2 + k % 3),
                sizes,
                g,
            )
            .unwrap()
        })
        .collect()
}

fn bench_service(c: &mut Criterion) {
    let service = Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        batch: 8,
        ..ServeOptions::default()
    })
    .expect("start service");
    let addr = service.local_addr();
    let instances = workload(8);
    let data: Vec<InstanceData> = instances.iter().map(InstanceData::from_instance).collect();

    // Warm the cache so the hit path measures pure service overhead.
    let mut client = Client::connect(addr).expect("connect");
    for d in &data {
        client.solve(d.clone()).expect("warm");
    }

    c.bench_function("service_roundtrip_cache_hit", |b| {
        let mut k = 0usize;
        b.iter(|| {
            let resp = client.solve(data[k % data.len()].clone()).expect("solve");
            k += 1;
            black_box(resp.makespan_num)
        })
    });

    c.bench_function("service_roundtrip_no_cache", |b| {
        let mut k = 0usize;
        b.iter(|| {
            let mut req = Request::solve(data[k % data.len()].clone());
            req.no_cache = Some(true);
            let resp = client.request(&req).expect("solve");
            k += 1;
            black_box(resp.makespan_num)
        })
    });

    c.bench_function("canonicalize_q_instance", |b| {
        let mut k = 0usize;
        b.iter(|| {
            let canon = canonicalize(&instances[k % instances.len()]);
            k += 1;
            black_box(canon.fingerprint)
        })
    });

    client.shutdown_server().expect("shutdown");
    drop(client);
    service.join();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
