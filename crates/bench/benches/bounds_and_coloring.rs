//! Criterion benches for the `C**_max` machinery: the event-heap minimal
//! covering time must scale `O(m log m)` in the machine count (Lemma 10's
//! last term), independent of the demand's magnitude.

use bisched_model::{cstar_double_max, min_time_to_cover, SpeedProfile};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_min_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_time_to_cover");
    for m in [16usize, 256, 4096] {
        let speeds = SpeedProfile::TwoTier {
            fast_count: m / 8,
            factor: 50,
        }
        .speeds(m);
        let demand: u64 = 1_000_000_007; // large, to stress the heap path
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(min_time_to_cover(&speeds, demand)))
        });
    }
    group.finish();
}

fn bench_cstar(c: &mut Criterion) {
    let mut group = c.benchmark_group("cstar_double_max");
    for m in [16usize, 256, 4096] {
        // Geometric speeds overflow u64 beyond ~63 machines; cap the decay
        // and pad with unit machines.
        let mut speeds = SpeedProfile::Geometric { ratio: 2 }.speeds(m.min(48));
        speeds.resize(m, 1);
        speeds.sort_unstable_by(|a, b| b.cmp(a));
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(cstar_double_max(&speeds, 5_000_000, 1_000_000, 9_999)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_min_cover, bench_cstar);
criterion_main!(benches);
