//! Criterion benches for the paper's algorithms end-to-end: Algorithm 1
//! (`Q`, Theorem 9), Algorithm 2 (random graphs, Theorem 19), and
//! Algorithm 4 (`R2` 2-approx — the `O(n)` claim of Theorem 21).

use bisched_core::{alg1_sqrt_approx, alg2_random_graph, r2_two_approx};
use bisched_graph::gilbert_bipartite;
use bisched_model::{Instance, JobSizes, SpeedProfile, UnrelatedFamily};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_alg1(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1_sqrt_approx");
    group.sample_size(10);
    for n in [100usize, 400, 1600] {
        let mut rng = StdRng::seed_from_u64(10);
        let g = gilbert_bipartite(n / 2, n / 2, 2.0 / n as f64, &mut rng);
        let p = JobSizes::Uniform { lo: 1, hi: 50 }.sample(n, &mut rng);
        let inst = Instance::uniform(SpeedProfile::Geometric { ratio: 2 }.speeds(8), p, g).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(alg1_sqrt_approx(&inst).unwrap().makespan))
        });
    }
    group.finish();
}

fn bench_alg2(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2_random_graph");
    group.sample_size(10);
    for n in [512usize, 2048, 8192] {
        let mut rng = StdRng::seed_from_u64(11);
        let g = gilbert_bipartite(n, n, 2.0 / n as f64, &mut rng);
        let inst = Instance::uniform(
            SpeedProfile::TwoTier {
                fast_count: 2,
                factor: 8,
            }
            .speeds(8),
            vec![1; 2 * n],
            g,
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(alg2_random_graph(&inst).unwrap().makespan))
        });
    }
    group.finish();
}

fn bench_alg4(c: &mut Criterion) {
    let mut group = c.benchmark_group("r2_two_approx_linear_time");
    group.sample_size(10);
    for n in [1000usize, 10_000, 100_000] {
        let mut rng = StdRng::seed_from_u64(12);
        let g = gilbert_bipartite(n / 2, n / 2, 2.0 / n as f64, &mut rng);
        let times = UnrelatedFamily::Uncorrelated { lo: 1, hi: 100 }.sample(2, n, &mut rng);
        let inst = Instance::unrelated(times, g).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(r2_two_approx(&inst).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alg1, bench_alg2, bench_alg4);
criterion_main!(benches);
