//! Criterion benches for the graph substrate: the Hopcroft–Karp
//! `O(E√V)` matching, the Dinic-based max-weight independent set, and the
//! linear-time bipartition — the primitives whose costs dominate
//! Algorithm 1's `O(|J|² + |J||E| + |M| log |M|)` budget (Lemma 10).

use bisched_graph::{
    bipartition, gilbert_bipartite, inequitable_coloring, max_weight_independent_set,
    maximum_matching,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("hopcroft_karp");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gilbert_bipartite(n, n, 3.0 / n as f64, &mut rng);
        let bp = bipartition(&g).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(maximum_matching(&g, &bp).size()))
        });
    }
    group.finish();
}

fn bench_mwis(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_weight_independent_set");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gilbert_bipartite(n, n, 3.0 / n as f64, &mut rng);
        let weights: Vec<u64> = (0..2 * n as u64).map(|i| 1 + i % 17).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(max_weight_independent_set(&g, &weights).weight))
        });
    }
    group.finish();
}

fn bench_bipartition_and_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("bipartition_coloring");
    group.sample_size(20);
    for n in [1024usize, 8192] {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gilbert_bipartite(n, n, 2.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("bipartition", n), &n, |b, _| {
            b.iter(|| black_box(bipartition(&g).unwrap().part_sizes()))
        });
        group.bench_with_input(BenchmarkId::new("inequitable", n), &n, |b, _| {
            b.iter(|| black_box(inequitable_coloring(&g).unwrap().class_sizes()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matching,
    bench_mwis,
    bench_bipartition_and_coloring
);
criterion_main!(benches);
