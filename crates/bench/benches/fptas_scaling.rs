//! Criterion benches for the FPTAS substrate and Algorithm 5: time as a
//! function of `n` and `1/ε` — the `O(n · 1/ε)`-flavored contract of
//! Theorem 22 (our Horowitz–Sahni substitution is `O(n² /ε)`-ish; the
//! *shape* — polynomial in both, smooth in ε — is what matters).

use bisched_core::r2_fptas;
use bisched_fptas::{rm_cmax_fptas, rm_cmax_fptas_with, FptasParams};
use bisched_graph::gilbert_bipartite;
use bisched_model::{Instance, UnrelatedFamily};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_rm_fptas_eps(c: &mut Criterion) {
    let mut group = c.benchmark_group("rm_cmax_fptas_by_eps");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(20);
    let times = UnrelatedFamily::Uncorrelated { lo: 1, hi: 2_000 }.sample(2, 150, &mut rng);
    for eps in [1.0f64, 0.25, 0.05] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &e| {
            b.iter(|| black_box(rm_cmax_fptas(&times, e).makespan))
        });
    }
    group.finish();
}

fn bench_rm_fptas_m3(c: &mut Criterion) {
    let mut group = c.benchmark_group("rm_cmax_fptas_three_machines");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(21);
    for n in [20usize, 40] {
        let times = UnrelatedFamily::Uncorrelated { lo: 1, hi: 50 }.sample(3, n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(rm_cmax_fptas(&times, 0.5).makespan))
        });
    }
    group.finish();
}

fn bench_alg5_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg5_r2_fptas");
    group.sample_size(10);
    for n in [100usize, 400] {
        let mut rng = StdRng::seed_from_u64(22);
        let g = gilbert_bipartite(n / 2, n / 2, 2.0 / n as f64, &mut rng);
        let times = UnrelatedFamily::Uncorrelated { lo: 1, hi: 100 }.sample(2, n, &mut rng);
        let inst = Instance::unrelated(times, g).unwrap();
        for eps in [0.5f64, 0.05] {
            group.bench_with_input(BenchmarkId::new(format!("eps{eps}"), n), &n, |b, _| {
                b.iter(|| black_box(r2_fptas(&inst, eps).unwrap()))
            });
        }
    }
    group.finish();
}

fn bench_rm_fptas_unpruned_ablation(c: &mut Criterion) {
    // The pruning/dominance ablation: the same sweep with the incumbent
    // bound and Pareto filter off — the gap is the win the pruned default
    // must keep.
    let mut group = c.benchmark_group("rm_cmax_fptas_unpruned");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(23);
    let times = UnrelatedFamily::Uncorrelated { lo: 1, hi: 2_000 }.sample(2, 150, &mut rng);
    for eps in [1.0f64, 0.25] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &e| {
            let mut params = FptasParams::new(e);
            params.prune = false;
            b.iter(|| {
                black_box(
                    rm_cmax_fptas_with(&times, &params)
                        .expect("no cap configured")
                        .makespan,
                )
            })
        });
    }
    group.finish();
}

fn bench_rm_fptas_state_cap(c: &mut Criterion) {
    // The memory-lean mode: a width cap with graceful ε-coarsening.
    let mut group = c.benchmark_group("rm_cmax_fptas_state_cap");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(24);
    let times = UnrelatedFamily::JobCorrelated {
        base: (1_000, 100_000),
        spread: 2_000,
    }
    .sample(2, 120, &mut rng);
    for cap in [1024usize, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            let mut params = FptasParams::new(0.05);
            params.state_cap = Some(cap);
            // A cap the coarsest ε still cannot meet is a valid outcome
            // (typed error); bench the full relief path either way.
            b.iter(|| black_box(rm_cmax_fptas_with(&times, &params).map(|r| r.makespan).ok()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rm_fptas_eps,
    bench_rm_fptas_m3,
    bench_alg5_end_to_end,
    bench_rm_fptas_unpruned_ablation,
    bench_rm_fptas_state_cap
);
criterion_main!(benches);
