//! Cross-oracle consistency: every exact engine must agree with every
//! other exact engine on its shared domain, across random instances.

use bisched_exact::{
    branch_and_bound, brute_force, precoloring_extension, q2_bipartite_exact,
    q_complete_bipartite_unit, r2_bipartite_exact,
};
use bisched_graph::{gilbert_bipartite, Graph};
use bisched_model::{Instance, JobSizes};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn q2_oracles_triangle() {
    let mut rng = StdRng::seed_from_u64(301);
    for _ in 0..25 {
        let n = rng.gen_range(2..=9);
        let g = gilbert_bipartite(n / 2, n - n / 2, 0.45, &mut rng);
        let p = JobSizes::Uniform { lo: 1, hi: 7 }.sample(n, &mut rng);
        let inst = Instance::uniform(vec![rng.gen_range(1..=4), 1], p, g).unwrap();
        let a = brute_force(&inst).unwrap().makespan;
        let b = q2_bipartite_exact(&inst).unwrap().makespan;
        let c = branch_and_bound(&inst, u64::MAX).optimum.unwrap().makespan;
        assert_eq!(a, b);
        assert_eq!(a, c);
    }
}

#[test]
fn r2_oracles_triangle() {
    let mut rng = StdRng::seed_from_u64(303);
    for _ in 0..25 {
        let n: usize = rng.gen_range(2..=8);
        let g = gilbert_bipartite(n / 2, n - n / 2, 0.45, &mut rng);
        let times: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..n).map(|_| rng.gen_range(1..=10)).collect())
            .collect();
        let inst = Instance::unrelated(times, g).unwrap();
        let a = brute_force(&inst).unwrap().makespan;
        let b = r2_bipartite_exact(&inst).unwrap().makespan;
        let c = branch_and_bound(&inst, u64::MAX).optimum.unwrap().makespan;
        assert_eq!(a, b);
        assert_eq!(a, c);
    }
}

#[test]
fn complete_bipartite_vs_general_oracles() {
    let mut rng = StdRng::seed_from_u64(307);
    for _ in 0..15 {
        let a = rng.gen_range(1..=4);
        let b = rng.gen_range(1..=4);
        let m = rng.gen_range(2..=3);
        let speeds: Vec<u64> = (0..m).map(|_| rng.gen_range(1..=3)).collect();
        let inst =
            Instance::uniform(speeds, vec![1; a + b], Graph::complete_bipartite(a, b)).unwrap();
        let fast = q_complete_bipartite_unit(&inst).unwrap().makespan;
        let slow = brute_force(&inst).unwrap().makespan;
        assert_eq!(fast, slow, "K_({a},{b})");
    }
}

#[test]
fn unit_q2_complete_bipartite_all_three() {
    // K_{a,b} on two machines is in the domain of *three* exact engines.
    for (a, b, s1, s2) in [(3usize, 5usize, 3u64, 1u64), (4, 4, 2, 2), (1, 6, 5, 2)] {
        let inst = Instance::uniform(
            vec![s1, s2],
            vec![1; a + b],
            Graph::complete_bipartite(a, b),
        )
        .unwrap();
        let x = q2_bipartite_exact(&inst).unwrap().makespan;
        let y = q_complete_bipartite_unit(&inst).unwrap().makespan;
        let z = brute_force(&inst).unwrap().makespan;
        assert_eq!(x, y);
        assert_eq!(x, z);
    }
}

#[test]
fn precolor_decider_consistent_with_schedule_feasibility() {
    // 1-PrExt YES <=> the Theorem-24-style 3-machine pinning instance has
    // a schedule under d. (A miniature of E10, as a standing regression.)
    let mut rng = StdRng::seed_from_u64(311);
    for _ in 0..10 {
        let g = gilbert_bipartite(3, 4, 0.5, &mut rng);
        let pins = [(0u32, 0u8), (1, 1), (3, 2)];
        let yes = precoloring_extension(&g, &pins, 3).is_some();
        let d = 50u64;
        let n = g.num_vertices();
        let mut times = vec![vec![1u64; n]; 3];
        for &(v, c) in &pins {
            for (i, row) in times.iter_mut().enumerate() {
                row[v as usize] = if i == c as usize { 1 } else { d };
            }
        }
        let inst = Instance::unrelated(times, g).unwrap();
        let opt = branch_and_bound(&inst, u64::MAX).optimum.unwrap();
        assert_eq!(
            yes,
            opt.makespan < bisched_model::Rat::integer(d),
            "decider and scheduler disagree"
        );
    }
}

#[test]
fn greedy_incumbent_never_beats_exact() {
    let mut rng = StdRng::seed_from_u64(313);
    for _ in 0..20 {
        let n = rng.gen_range(2..=8);
        let m = rng.gen_range(2..=3);
        let g = gilbert_bipartite(n / 2, n - n / 2, 0.4, &mut rng);
        let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(n, &mut rng);
        let inst = Instance::identical(m, p, g).unwrap();
        let greedy = bisched_exact::greedy_incumbent(&inst).unwrap();
        let exact = brute_force(&inst).unwrap();
        assert!(greedy.makespan >= exact.makespan);
    }
}
