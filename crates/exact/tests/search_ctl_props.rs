//! Property tests for the `SearchCtl` publish/prune round-trip — the
//! float-encoded bound exchange whose interleavings the
//! `cfg(bisched_model)` suite in `crates/analyze` explores; here the
//! *numeric* soundness is hammered over random rationals, including the
//! negative-zero and `INFINITY` edges of the `f64`-bits encoding.
//!
//! The contract (see `bisched_exact::search_ctl` module docs):
//!
//! * `rat_to_f64_up` / `rat_to_f64_down` bracket the exact value;
//! * the published bound never tightens past a published makespan
//!   (`foreign_bound() >= min achieved`, exactly);
//! * `prunes(lb)` never fires for `lb` strictly below every published
//!   makespan — in particular, never for the true optimum;
//! * publishing a makespan never prunes that same makespan
//!   (an engine cannot prune its own incumbent's subtree);
//! * the stored bit pattern is always a nonnegative `f64` (sign bit
//!   clear), which is what makes `fetch_min` on the bits a running
//!   minimum on the values.

use bisched_exact::search_ctl::{rat_to_f64_down, rat_to_f64_up};
use bisched_exact::SearchCtl;
use bisched_model::Rat;
use proptest::prelude::*;

/// A nonnegative rational with moderate numerator (so one f64 ULP is
/// far below 1) — the regime every real makespan lives in.
fn rat() -> impl Strategy<Value = Rat> {
    (0u64..1_000_000_000_000, 1u64..1_000_000).prop_map(|(n, d)| Rat::new(n, d))
}

proptest! {
    #[test]
    fn directed_roundings_bracket_the_exact_value(r in rat()) {
        let up = rat_to_f64_up(&r);
        let down = rat_to_f64_down(&r);
        let mid = r.num() as f64 / r.den() as f64; // nearest-rounded
        prop_assert!(down <= mid && mid <= up, "{down} !<= {mid} !<= {up}");
        prop_assert!(down >= 0.0);
        prop_assert!(!down.is_sign_negative(), "down produced -0.0: its bits would \
            sort above +inf and corrupt a bits-ordered fetch_min");
        prop_assert!(up.is_finite());
    }

    #[test]
    fn bound_is_exactly_the_min_published_and_never_overshoots_downward(
        mks in proptest::collection::vec(rat(), 1..5)
    ) {
        let ctl = SearchCtl::new();
        for mk in &mks {
            ctl.publish_makespan(mk);
        }
        let bound = ctl.foreign_bound();
        let min = mks.iter().cloned().reduce(|a, b| if b < a { b } else { a }).unwrap();
        prop_assert_eq!(bound, rat_to_f64_up(&min),
            "bound must equal the round-up of the minimum published makespan");
        // Never tightens past a published makespan: the bound stays at
        // or above the exact minimum (round-up is one-sided).
        prop_assert!(bound >= rat_to_f64_down(&min));
        prop_assert!(bound.to_bits() <= f64::INFINITY.to_bits());
        prop_assert!(!bound.is_sign_negative());
    }

    #[test]
    fn pruning_never_fires_below_every_published_makespan(
        mks in proptest::collection::vec(rat(), 1..5),
        lb in rat()
    ) {
        let ctl = SearchCtl::new();
        for mk in &mks {
            ctl.publish_makespan(mk);
        }
        let min = mks.iter().cloned().reduce(|a, b| if b < a { b } else { a }).unwrap();
        if lb < min {
            // Exact rational comparison: a subtree that can still beat
            // the best achieved makespan must survive.
            prop_assert!(!ctl.prunes(&lb),
                "pruned lb {}/{} strictly below the published minimum {}/{}",
                lb.num(), lb.den(), min.num(), min.den());
        }
        if ctl.prunes(&lb) {
            // The contrapositive, round-tripped: pruning certifies the
            // subtree cannot beat the winner.
            prop_assert!(lb >= min);
        }
    }

    #[test]
    fn an_engine_never_prunes_its_own_published_makespan(mk in rat()) {
        let ctl = SearchCtl::new();
        ctl.publish_makespan(&mk);
        prop_assert!(!ctl.prunes(&mk),
            "publish-up/prune-down must leave the just-published makespan unpruned");
        // One whole unit above the incumbent (far beyond any ULP slack
        // in this numerator regime) must prune.
        let above = Rat::new(mk.num() + mk.den(), mk.den());
        prop_assert!(ctl.prunes(&above));
    }

    #[test]
    fn cancel_and_bound_are_independent(mk in rat()) {
        let ctl = SearchCtl::new();
        prop_assert!(!ctl.cancelled());
        ctl.publish_makespan(&mk);
        prop_assert!(!ctl.cancelled(), "publishing must not cancel");
        ctl.cancel();
        prop_assert!(ctl.cancelled());
        prop_assert_eq!(ctl.foreign_bound(), rat_to_f64_up(&mk),
            "cancelling must not disturb the bound");
    }
}

/// The `INFINITY` edges, pinned deterministically: the empty bound is
/// `+inf`, publishing the largest representable makespan still tightens
/// it, and `+inf` never prunes anything.
#[test]
fn infinity_edges() {
    let ctl = SearchCtl::new();
    assert_eq!(ctl.foreign_bound(), f64::INFINITY);
    assert!(
        !ctl.prunes(&Rat::new(u64::MAX, 1)),
        "+inf bound must prune nothing"
    );
    ctl.publish_makespan(&Rat::new(u64::MAX, 1));
    let b = ctl.foreign_bound();
    assert!(b.is_finite(), "u64::MAX/1 rounds up to a finite f64");
    assert!(b >= u64::MAX as f64);
    assert!(ctl.prunes(&Rat::new(u64::MAX, 1)) == (rat_to_f64_down(&Rat::new(u64::MAX, 1)) >= b));
}

/// The negative-zero edge, pinned deterministically: zero makespans and
/// zero lower bounds keep positive-sign encodings end to end.
#[test]
fn negative_zero_edges() {
    let zero = Rat::new(0, 7);
    assert!(!rat_to_f64_down(&zero).is_sign_negative());
    assert!(rat_to_f64_up(&zero) >= 0.0);
    let ctl = SearchCtl::new();
    ctl.publish_makespan(&zero);
    let b = ctl.foreign_bound();
    assert!(
        b >= 0.0 && !b.is_sign_negative(),
        "stored bound must stay nonnegative-signed"
    );
    // A zero bound is the tightest possible: everything at or above the
    // round-up prunes, and the zero subtree itself still survives.
    assert!(!ctl.prunes(&zero));
    assert!(ctl.prunes(&Rat::new(1, 1)));
}
