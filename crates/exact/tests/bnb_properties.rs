//! Property tests for the pruned branch-and-bound oracle:
//!
//! * any budget (nodes and/or deadline) yields a schedule that validates;
//! * `complete == true` implies the makespan matches [`brute_force`];
//! * the pruned search expands **no more nodes** than the seed
//!   implementation did on a pinned case set (counts measured on the
//!   pre-rewrite recursion, same node semantics: one count per expanded
//!   node).

use bisched_exact::{branch_and_bound, branch_and_bound_with, brute_force, BnbLimits};
use bisched_graph::{gilbert_bipartite, Graph};
use bisched_model::{Instance, JobSizes, Rat};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Builds a random `{P,Q,R}` instance over a random bipartite graph from
/// one seed; mirrors the shapes of the oracle-consistency tests.
fn random_instance(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..=8);
    let m = rng.gen_range(2..=4);
    let g = gilbert_bipartite(n / 2, n - n / 2, 0.4, &mut rng);
    let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(n, &mut rng);
    match seed % 3 {
        0 => Instance::identical(m, p, g).unwrap(),
        1 => {
            let speeds = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            Instance::uniform(speeds, p, g).unwrap()
        }
        _ => {
            let times = (0..m)
                .map(|_| (0..n).map(|_| rng.gen_range(1..=9)).collect())
                .collect();
            Instance::unrelated(times, g).unwrap()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_budget_yields_valid_schedules_and_complete_means_optimal(
        seed in 0u64..5000,
        // 0..=63 are literal node budgets; 64 selects "unbounded".
        node_limit in (0u64..65).prop_map(|s| if s == 64 { u64::MAX } else { s }),
        // 0..=1999 are literal microsecond deadlines; 2000 selects "none".
        deadline_us in (0u64..2001).prop_map(|s| if s == 2000 { None } else { Some(s) }),
    ) {
        let inst = random_instance(seed);
        let limits = BnbLimits {
            node_limit,
            deadline: deadline_us.map(Duration::from_micros),
        };
        let out = branch_and_bound_with(&inst, &limits);
        prop_assert!(out.nodes <= node_limit);
        if let Some(opt) = &out.optimum {
            prop_assert!(opt.schedule.validate(&inst).is_ok());
            prop_assert_eq!(opt.schedule.makespan(&inst), opt.makespan);
        }
        if out.complete {
            match (brute_force(&inst), &out.optimum) {
                (Some(bf), Some(bb)) => prop_assert_eq!(bf.makespan, bb.makespan),
                (None, None) => {}
                (bf, bb) => prop_assert!(
                    false,
                    "feasibility disagreement on {}: brute={:?} bnb={:?}",
                    inst.describe(),
                    bf.map(|o| o.makespan),
                    bb.as_ref().map(|o| o.makespan)
                ),
            }
        }
    }

    #[test]
    fn truncated_runs_never_beat_the_optimum(seed in 0u64..2000) {
        // An incumbent from a truncated search is feasible, hence >= OPT.
        let inst = random_instance(seed);
        let truncated = branch_and_bound(&inst, 2);
        if let (Some(inc), Some(bf)) = (truncated.optimum, brute_force(&inst)) {
            prop_assert!(inc.makespan >= bf.makespan);
        }
    }
}

/// The pinned case set with the seed implementation's measured node
/// counts. The pruned oracle must not expand more nodes on any of them
/// (it currently expands 1.6–13x fewer).
#[test]
fn pruned_search_expands_no_more_nodes_than_the_seed_implementation() {
    let mut cases: Vec<(&str, Instance, u64)> = Vec::new();
    cases.push((
        "p2-empty7",
        Instance::identical(2, vec![7, 7, 6, 5, 4, 4, 3], Graph::empty(7)).unwrap(),
        25,
    ));
    let mut rng = StdRng::seed_from_u64(9001);
    let g = gilbert_bipartite(7, 7, 0.3, &mut rng);
    let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(14, &mut rng);
    cases.push(("p3-gilbert14", Instance::identical(3, p, g).unwrap(), 1543));

    let mut rng = StdRng::seed_from_u64(9002);
    let g = gilbert_bipartite(7, 7, 0.3, &mut rng);
    let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(14, &mut rng);
    cases.push((
        "q3-gilbert14",
        Instance::uniform(vec![4, 2, 1], p, g).unwrap(),
        4104,
    ));

    let mut rng = StdRng::seed_from_u64(9003);
    let g = gilbert_bipartite(6, 6, 0.3, &mut rng);
    let times: Vec<Vec<u64>> = (0..3)
        .map(|_| (0..12).map(|_| rng.gen_range(1..=9)).collect())
        .collect();
    cases.push(("r3-gilbert12", Instance::unrelated(times, g).unwrap(), 531));

    cases.push((
        "q2-crown6",
        Instance::uniform(
            vec![3, 1],
            vec![5, 4, 4, 3, 3, 2, 6, 5, 4, 3, 2, 2],
            Graph::crown(6),
        )
        .unwrap(),
        31,
    ));
    cases.push((
        "p4-crown8-unit",
        Instance::identical(4, vec![1; 16], Graph::crown(8)).unwrap(),
        10056,
    ));

    for (name, inst, seed_nodes) in &cases {
        let out = branch_and_bound(inst, u64::MAX);
        assert!(out.complete, "{name} must complete without a budget");
        assert!(
            out.nodes <= *seed_nodes,
            "{name}: pruned search expanded {} nodes, seed implementation took {}",
            out.nodes,
            seed_nodes
        );
    }
}

/// The lab's proven-optimum budget (400k nodes) now closes 20–24-job
/// cells the seed implementation could not — the coverage flip behind the
/// re-seeded `BENCH_baseline`.
#[test]
fn lab_budget_proves_the_new_oracle_scenarios() {
    // `p4-gilbert20-oracle` (seed implementation: 400_000 nodes, incomplete).
    let mut rng = StdRng::seed_from_u64(134);
    let g = gilbert_bipartite(10, 10, 0.3, &mut rng);
    let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(20, &mut rng);
    let inst = Instance::identical(4, p, g).unwrap();
    let out = branch_and_bound(&inst, 400_000);
    assert!(out.complete, "pruned oracle must close the 20-job P4 cell");

    // `q4-gilbert24-oracle` (seed implementation: 400_000 nodes, incomplete).
    let mut rng = StdRng::seed_from_u64(141);
    let g = gilbert_bipartite(12, 12, 0.25, &mut rng);
    let p = JobSizes::Uniform { lo: 1, hi: 12 }.sample(24, &mut rng);
    let inst = Instance::uniform(vec![4, 4, 1, 1], p, g).unwrap();
    let out = branch_and_bound(&inst, 400_000);
    assert!(out.complete, "pruned oracle must close the 24-job Q4 cell");
    assert!(out.optimum.unwrap().makespan > Rat::ZERO);
}
