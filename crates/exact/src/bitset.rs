//! A minimal fixed-size bitset for subset-sum style dynamic programs and
//! set-membership hot paths.
//!
//! The exact `Q2 | G = bipartite | C_max` solver walks a per-component
//! two-choice subset-sum; a packed `u64` bitset keeps the DP at
//! `O(c · Σp / 64)` words, which is what makes the oracle usable as a
//! baseline at experiment scales. The branch-and-bound oracle reuses the
//! same type for per-job conflict masks and per-machine job sets, turning
//! the per-node "does job `j` conflict with machine `i`" test into a few
//! word [`intersects`](BitSet::intersects) ANDs.

/// Fixed-capacity bitset over `0..len`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// All-zeros bitset of capacity `len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Whether `self` and `other` share any set bit (`self ∩ other ≠ ∅`).
    #[inline]
    pub fn intersects(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// `self |= other << shift` — the subset-sum transition "add an item of
    /// size `shift`".
    pub fn or_shifted(&mut self, other: &BitSet, shift: usize) {
        debug_assert_eq!(self.len, other.len);
        let word_shift = shift / 64;
        let bit_shift = shift % 64;
        if bit_shift == 0 {
            for i in (word_shift..self.words.len()).rev() {
                self.words[i] |= other.words[i - word_shift];
            }
        } else {
            for i in (word_shift..self.words.len()).rev() {
                let lo = other.words[i - word_shift] << bit_shift;
                let hi = if i > word_shift {
                    other.words[i - word_shift - 1] >> (64 - bit_shift)
                } else {
                    0
                };
                self.words[i] |= lo | hi;
            }
        }
        self.truncate_tail();
    }

    /// Indices of set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn truncate_tail(&mut self) {
        let extra = self.words.len() * 64 - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitSet::new(130);
        for i in [0usize, 63, 64, 65, 128, 129] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 6);
    }

    #[test]
    fn ones_iterates_in_order() {
        let mut b = BitSet::new(200);
        let idx = [3usize, 64, 70, 199];
        for &i in &idx {
            b.set(i);
        }
        assert_eq!(b.ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn or_shifted_word_aligned() {
        let mut a = BitSet::new(256);
        let mut b = BitSet::new(256);
        b.set(0);
        b.set(5);
        a.or_shifted(&b, 128);
        assert!(a.get(128));
        assert!(a.get(133));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn or_shifted_unaligned() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        b.set(0);
        b.set(63);
        a.or_shifted(&b, 7);
        assert!(a.get(7));
        assert!(a.get(70));
    }

    #[test]
    fn or_shifted_drops_overflow() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        b.set(8);
        a.or_shifted(&b, 5); // 13 >= len: dropped
        assert!(a.is_empty());
    }

    #[test]
    fn clear_and_intersects() {
        let mut a = BitSet::new(130);
        let mut b = BitSet::new(130);
        a.set(5);
        a.set(129);
        assert!(!a.intersects(&b));
        b.set(129);
        assert!(a.intersects(&b));
        a.clear(129);
        assert!(!a.intersects(&b));
        assert!(a.get(5) && !a.get(129));
    }

    #[test]
    fn subset_sum_smoke() {
        // Items {3, 5}: reachable sums {0, 3, 5, 8}.
        let cap = 16;
        let mut dp = BitSet::new(cap);
        dp.set(0);
        for item in [3usize, 5] {
            let prev = dp.clone();
            dp.or_shifted(&prev, item);
        }
        assert_eq!(dp.ones().collect::<Vec<_>>(), vec![0, 3, 5, 8]);
    }
}
