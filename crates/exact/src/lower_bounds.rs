//! Incremental lower bounds for the branch-and-bound oracle.
//!
//! [`IncrementalBounds`] owns everything the search needs to (a) answer
//! "may job `j` go on machine `i`" in a few word ANDs and (b) produce a
//! node lower bound that *sees the graph* instead of only the load
//! vector. Three bounds are folded together:
//!
//! * **fractional load** — all work (placed + remaining) spread over the
//!   aggregate speed, the classic graph-blind relaxation;
//! * **max-remaining-job** — the largest unassigned job still has to run
//!   somewhere, at best on the fastest machine; `O(1)` per node via
//!   suffix maxima over the fixed branching order;
//! * **machine-exclusion (bipartition side pressure)** — for each machine
//!   `i`, every unassigned job adjacent to something already on `i` can
//!   never run on `i`, so that work plus the load already on the other
//!   machines must fit into the other machines' aggregate speed. On a
//!   complete-bipartite or crown component this is exactly the opposite
//!   *side sum* being forced off `i` the moment one job lands there,
//!   which is what closes dense bipartite nodes the fractional bound
//!   cannot.
//!
//! A static **edge-pair bound** (two adjacent jobs must occupy two
//! distinct machines, at best the two fastest) is computed once at the
//! root and folded into every query.
//!
//! Updates are `O((deg(j) + m) · ⌈n/64⌉)` per assign/unassign — constant
//! word work per neighbor at oracle scales (`n ≲ 64`) — and the bound
//! query is `O(m)`.

use crate::bitset::BitSet;
use bisched_model::{Instance, MachineEnvironment, Rat};

/// Incrementally maintained state: conflict masks, per-machine job sets,
/// per-machine forbidden remaining work, and the static suffix tables.
#[derive(Clone, Debug)]
pub struct IncrementalBounds {
    /// `conflict[j]`: the jobs adjacent to `j` (its incompatibility row).
    conflict: Vec<BitSet>,
    /// `machine_jobs[i]`: the jobs currently assigned to machine `i`.
    machine_jobs: Vec<BitSet>,
    /// Jobs not yet assigned.
    unassigned: BitSet,
    /// Per-job weight: `p_j`, or the min-row proxy for `R`.
    weight: Vec<u64>,
    /// Machine speeds for `P`/`Q`; all ones for `R` (min-row relaxation).
    speeds: Vec<u64>,
    /// `Σ speeds` (or `m` for `R`).
    total_speed: u64,
    /// Fastest speed (1 for `P`/`R`).
    s_max: u64,
    /// `suffix_sum[d]` = Σ weight over `order[d..]`.
    suffix_sum: Vec<u64>,
    /// `suffix_max[d]` = max weight over `order[d..]` (0 past the end).
    suffix_max: Vec<u64>,
    /// `forbidden[i]` = Σ weight over unassigned jobs that conflict with
    /// machine `i`'s current contents (can never run on `i`).
    forbidden: Vec<u64>,
    /// Static root bound: the best edge-pair bound over all edges.
    root_bound: Rat,
}

impl IncrementalBounds {
    /// Builds the bound state for `inst`, branching in `order`.
    pub fn new(inst: &Instance, order: &[u32]) -> Self {
        let n = inst.num_jobs();
        let m = inst.num_machines();
        let graph = inst.graph();
        let mut conflict = vec![BitSet::new(n); n];
        for j in 0..n as u32 {
            for &u in graph.neighbors(j) {
                conflict[j as usize].set(u as usize);
            }
        }
        let mut unassigned = BitSet::new(n);
        for j in 0..n {
            unassigned.set(j);
        }
        let weight: Vec<u64> = inst.processing_all().to_vec();
        let speeds = match inst.env() {
            MachineEnvironment::Unrelated { .. } => vec![1; m],
            _ => inst.speeds(),
        };
        let total_speed: u64 = speeds.iter().sum();
        let s_max = speeds.iter().copied().max().unwrap_or(1);
        let mut suffix_sum = vec![0u64; n + 1];
        let mut suffix_max = vec![0u64; n + 1];
        for d in (0..n).rev() {
            let w = weight[order[d] as usize];
            suffix_sum[d] = suffix_sum[d + 1] + w;
            suffix_max[d] = suffix_max[d + 1].max(w);
        }
        // Edge-pair bound: two adjacent jobs occupy two distinct machines,
        // at best the two fastest. For `R` the per-job min-row maximum
        // (the `suffix_max` bound at the root) already dominates it.
        let mut root_bound = Rat::ZERO;
        if m >= 2 && !matches!(inst.env(), MachineEnvironment::Unrelated { .. }) {
            let mut top2: Vec<u64> = speeds.clone();
            top2.sort_unstable_by(|a, b| b.cmp(a));
            let pair_speed = top2[0] + top2[1];
            for u in 0..n as u32 {
                for &v in graph.neighbors(u) {
                    if v > u {
                        let b = Rat::new(weight[u as usize] + weight[v as usize], pair_speed);
                        root_bound = root_bound.max(b);
                    }
                }
            }
        }
        IncrementalBounds {
            conflict,
            machine_jobs: vec![BitSet::new(n); m],
            unassigned,
            weight,
            speeds,
            total_speed,
            s_max,
            suffix_sum,
            suffix_max,
            forbidden: vec![0; m],
            root_bound,
        }
    }

    /// Whether job `j` conflicts with machine `i`'s current contents
    /// (some assigned neighbor of `j` sits on `i`).
    #[inline]
    pub fn conflicts(&self, j: u32, i: usize) -> bool {
        self.conflict[j as usize].intersects(&self.machine_jobs[i])
    }

    /// Records `j → i`. Must mirror every call with
    /// [`unassign`](Self::unassign) in LIFO order.
    pub fn assign(&mut self, j: u32, i: usize) {
        let w = self.weight[j as usize];
        // `j` leaves the unassigned pool: it no longer presses on the
        // machines its assigned neighbors had blocked for it.
        for k in 0..self.machine_jobs.len() {
            if self.conflicts(j, k) {
                self.forbidden[k] -= w;
            }
        }
        self.unassigned.clear(j as usize);
        // `j` landing on `i` freshly blocks its still-unassigned
        // neighbors that had no other conflict with `i` yet.
        for u in self.conflict[j as usize].ones() {
            if self.unassigned.get(u) && !self.conflict[u].intersects(&self.machine_jobs[i]) {
                self.forbidden[i] += self.weight[u];
            }
        }
        self.machine_jobs[i].set(j as usize);
    }

    /// Reverts the matching [`assign`](Self::assign).
    pub fn unassign(&mut self, j: u32, i: usize) {
        let w = self.weight[j as usize];
        self.machine_jobs[i].clear(j as usize);
        for u in self.conflict[j as usize].ones() {
            if self.unassigned.get(u) && !self.conflict[u].intersects(&self.machine_jobs[i]) {
                self.forbidden[i] -= self.weight[u];
            }
        }
        self.unassigned.set(j as usize);
        for k in 0..self.machine_jobs.len() {
            if self.conflicts(j, k) {
                self.forbidden[k] += w;
            }
        }
    }

    /// The node lower bound at `depth` (jobs `order[..depth]` assigned),
    /// given the current integer machine loads. Every completion of this
    /// node has makespan `≥` the returned value.
    pub fn lower_bound(&self, loads: &[u64], depth: usize) -> Rat {
        let load_sum: u64 = loads.iter().sum();
        let remaining = self.suffix_sum[depth];
        // Fractional: everything over the aggregate speed.
        let mut lb = Rat::new((load_sum + remaining).max(1), self.total_speed);
        // Max remaining job, at best on the fastest machine.
        if self.suffix_max[depth] > 0 {
            lb = lb.max(Rat::new(self.suffix_max[depth], self.s_max));
        }
        // Machine exclusion: work that can never run on machine `i` must
        // fit into the other machines' aggregate speed.
        for ((&load, &speed), &forbidden) in loads.iter().zip(&self.speeds).zip(&self.forbidden) {
            let off_speed = self.total_speed - speed;
            if off_speed == 0 {
                continue;
            }
            let off_work = load_sum - load + forbidden;
            if off_work > 0 {
                lb = lb.max(Rat::new(off_work, off_speed));
            }
        }
        lb.max(self.root_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_graph::Graph;
    use bisched_model::Instance;

    fn order(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn fractional_and_max_job_at_root() {
        let inst = Instance::uniform(vec![3, 1], vec![8, 4, 4], Graph::empty(3)).unwrap();
        let b = IncrementalBounds::new(&inst, &order(3));
        let lb = b.lower_bound(&[0, 0], 0);
        // Fractional: 16/4 = 4; max job on fastest: 8/3 < 4.
        assert_eq!(lb, Rat::integer(4));
    }

    #[test]
    fn edge_pair_bound_bites_on_uniform_speeds() {
        // Two adjacent size-10 jobs on speeds {4, 1}: fractional gives
        // 20/5 = 4, per-job gives 10/4 = 2.5, but the pair must split
        // over both machines: >= 20/(4+1) = 4... and with a third slow
        // machine the pair bound 20/(4+1) = 4 beats fractional 20/6.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let inst = Instance::uniform(vec![4, 1, 1], vec![10, 10], g).unwrap();
        let b = IncrementalBounds::new(&inst, &order(2));
        assert_eq!(b.lower_bound(&[0, 0, 0], 0), Rat::integer(4));
    }

    #[test]
    fn exclusion_bound_sees_the_opposite_side() {
        // K_{1,3}: job 0 (size 9) adjacent to jobs 1..3 (size 3 each) on
        // two identical machines. Assign job 0 to machine 0: the whole
        // opposite side (9 units) is forbidden there, so the other
        // machine alone must carry >= 9.
        let g = Graph::complete_bipartite(1, 3);
        let inst = Instance::identical(2, vec![9, 3, 3, 3], g).unwrap();
        let ord = vec![0u32, 1, 2, 3];
        let mut b = IncrementalBounds::new(&inst, &ord);
        assert!(!b.conflicts(0, 0));
        b.assign(0, 0);
        assert!(b.conflicts(1, 0));
        assert!(!b.conflicts(1, 1));
        let lb = b.lower_bound(&[9, 0], 1);
        // Exclusion on machine 0: (0 + 9)/1 = 9 (fractional is 18/2 = 9
        // too here; push one side job to see the separation).
        assert_eq!(lb, Rat::integer(9));
        b.assign(1, 1);
        let lb = b.lower_bound(&[9, 3], 2);
        // forbidden(0) = 6 (jobs 2, 3); off-load = 3: (3 + 6)/1 = 9.
        assert_eq!(lb, Rat::integer(9));
        b.unassign(1, 1);
        b.unassign(0, 0);
        // Fully unwound: state is back to the root.
        let root = IncrementalBounds::new(&inst, &ord);
        assert_eq!(b.lower_bound(&[0, 0], 0), root.lower_bound(&[0, 0], 0));
        assert!(!b.conflicts(1, 0));
    }

    #[test]
    fn assign_unassign_roundtrip_restores_forbidden() {
        let g = Graph::crown(3);
        let inst = Instance::identical(3, vec![2, 3, 4, 5, 6, 7], g).unwrap();
        let ord = order(6);
        let mut b = IncrementalBounds::new(&inst, &ord);
        let baseline = b.clone();
        b.assign(0, 0);
        b.assign(4, 1);
        b.assign(2, 0);
        b.unassign(2, 0);
        b.unassign(4, 1);
        b.unassign(0, 0);
        assert_eq!(b.forbidden, baseline.forbidden);
        assert_eq!(b.machine_jobs, baseline.machine_jobs);
        assert_eq!(b.unassigned, baseline.unassigned);
    }
}
