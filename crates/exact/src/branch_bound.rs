//! Branch-and-bound exact solver for `{P,Q,R} | G | C_max`.
//!
//! The reference oracle behind every approximation-ratio experiment at
//! "small but not tiny" sizes (n ≲ 24). Jobs are branched in LPT order
//! (degree breaks ties: heavier, better-connected jobs first); nodes are
//! cut by
//!
//! * the incumbent found by a graph-aware greedy,
//! * the incremental graph-aware bounds of [`crate::lower_bounds`]
//!   (fractional load, max-remaining-job, machine exclusion, edge pair),
//! * per-candidate completion-time cuts (candidates are tried best-first
//!   and abandoned wholesale once one reaches the incumbent), and
//! * identical-machine symmetry breaking: a job may only *open* the
//!   lowest-indexed empty machine among interchangeable machines (equal
//!   speed for `P`/`Q`, identical time rows for `R`).
//!
//! Feasibility tests run on precomputed per-job conflict bitmasks
//! ([`crate::bitset::BitSet`]) instead of per-node neighbor scans, and
//! the candidate list lives in per-depth buffers allocated once per
//! search — the hot loop allocates nothing. Everything is exact rational
//! arithmetic.
//!
//! Budgets: a node budget and an optional wall-clock deadline
//! ([`BnbLimits`]). Exhaustion is tracked explicitly, so
//! [`BnbOutcome::complete`] is `true` exactly when the search ran to
//! completion — including runs that finish on their very last budgeted
//! node.

use crate::bruteforce::Optimum;
use crate::lower_bounds::IncrementalBounds;
use crate::search_ctl::{rat_to_f64_down, SearchCtl};
use bisched_graph::bipartition;
use bisched_model::{Instance, MachineEnvironment, MachineId, Rat, Schedule};
use std::time::{Duration, Instant};

/// Search budgets for [`branch_and_bound_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BnbLimits {
    /// Maximum nodes to expand.
    pub node_limit: u64,
    /// Optional wall-clock budget; checked every few hundred nodes, so
    /// overshoot is bounded by a handful of node expansions.
    pub deadline: Option<Duration>,
}

impl Default for BnbLimits {
    fn default() -> Self {
        BnbLimits {
            node_limit: u64::MAX,
            deadline: None,
        }
    }
}

impl BnbLimits {
    /// A pure node budget (no deadline).
    pub fn nodes(node_limit: u64) -> Self {
        BnbLimits {
            node_limit,
            deadline: None,
        }
    }
}

/// Outcome of a branch-and-bound run.
#[derive(Clone, Debug)]
pub struct BnbOutcome {
    /// Best schedule found (`None` if infeasible).
    pub optimum: Option<Optimum>,
    /// Nodes expanded.
    pub nodes: u64,
    /// `true` iff the search ran to completion (the result is proven
    /// optimal — or proven infeasible when `optimum` is `None`); `false`
    /// iff a budget (nodes or deadline) or a cancellation cut the search
    /// short.
    ///
    /// Under a [`SearchCtl`] with foreign-bound pruning the completed
    /// proof is relative to the control's published bound: no schedule
    /// strictly better than `min(optimum, published bound)` exists. For
    /// a standalone run (no control) this is the usual absolute optimum.
    pub complete: bool,
    /// `true` iff the search stopped because its [`SearchCtl`] was
    /// cancelled (a special case of `!complete`).
    pub cancelled: bool,
    /// Subtrees cut because the incremental lower bound reached the
    /// search's own incumbent.
    pub prunes_incumbent: u64,
    /// Subtrees cut against a racing engine's published (foreign) bound.
    pub prunes_foreign: u64,
    /// Candidate lists abandoned wholesale once a (sorted) candidate's
    /// completion time reached the incumbent.
    pub prunes_candidate: u64,
    /// Incumbent improvements (the search's convergence timeline; each
    /// one also lands in the flight recorder as a `bnb_incumbent`
    /// instant when recording is on).
    pub incumbent_updates: u64,
}

/// Exact branch and bound with a node budget; see
/// [`branch_and_bound_with`] for the deadline-aware form.
pub fn branch_and_bound(inst: &Instance, node_limit: u64) -> BnbOutcome {
    branch_and_bound_with(inst, &BnbLimits::nodes(node_limit))
}

/// Exact branch and bound under [`BnbLimits`]; see
/// [`branch_and_bound_ctl`] for the race-aware form.
///
/// Returns a proven optimum when `complete` is true; otherwise the best
/// incumbent seen (still feasible, not necessarily optimal).
pub fn branch_and_bound_with(inst: &Instance, limits: &BnbLimits) -> BnbOutcome {
    branch_and_bound_ctl(inst, limits, None)
}

/// Exact branch and bound under [`BnbLimits`] and an optional shared
/// [`SearchCtl`].
///
/// With a control attached the search cooperates with a portfolio race:
/// it polls cancellation at the deadline-check cadence (stopping with
/// `cancelled: true`), prunes against the best makespan any racing
/// engine has published, and publishes its own incumbent improvements.
pub fn branch_and_bound_ctl(
    inst: &Instance,
    limits: &BnbLimits,
    ctl: Option<&SearchCtl>,
) -> BnbOutcome {
    let n = inst.num_jobs();
    let m = inst.num_machines();
    // LPT branching order (min-row for R); degree breaks ties so the
    // most-constrained among equal jobs is branched first.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        inst.processing(b)
            .cmp(&inst.processing(a))
            .then(inst.graph().degree(b).cmp(&inst.graph().degree(a)))
            .then(a.cmp(&b))
    });

    let bounds = IncrementalBounds::new(inst, &order);
    let best = greedy_incumbent(inst);
    if let (Some(ctl), Some(b)) = (ctl, &best) {
        ctl.publish_makespan(&b.makespan);
    }
    let mut search = Search {
        inst,
        sym_class: symmetry_classes(inst),
        class_seen: vec![false; m],
        order,
        assignment: vec![u32::MAX; n],
        loads: vec![0; m],
        job_count: vec![0; m],
        cands: vec![Vec::with_capacity(m); n],
        bounds,
        best,
        nodes: 0,
        node_limit: limits.node_limit,
        deadline: limits.deadline.map(|d| Instant::now() + d),
        exhausted: false,
        ctl,
        foreign: f64::INFINITY,
        cancelled: false,
        prunes_incumbent: 0,
        prunes_foreign: 0,
        prunes_candidate: 0,
        incumbent_updates: 0,
    };
    search.run(0);
    BnbOutcome {
        complete: !search.exhausted,
        optimum: search.best,
        nodes: search.nodes,
        cancelled: search.cancelled,
        prunes_incumbent: search.prunes_incumbent,
        prunes_foreign: search.prunes_foreign,
        prunes_candidate: search.prunes_candidate,
        incumbent_updates: search.incumbent_updates,
    }
}

/// Machine interchangeability classes: two machines share a class iff
/// swapping them maps schedules to schedules of identical makespan —
/// equal speed for `P`/`Q`, identical processing-time rows for `R`.
/// Returns `class[i]` = lowest machine index of `i`'s class.
fn symmetry_classes(inst: &Instance) -> Vec<u32> {
    let m = inst.num_machines();
    let mut class: Vec<u32> = (0..m as u32).collect();
    for i in 1..m {
        for k in 0..i {
            let same = match inst.env() {
                MachineEnvironment::Identical { .. } => true,
                MachineEnvironment::Uniform { speeds } => speeds[i] == speeds[k],
                MachineEnvironment::Unrelated { times } => times[i] == times[k],
            };
            if same {
                class[i] = class[k];
                break;
            }
        }
    }
    class
}

/// A feasible incumbent: graph-aware greedy, falling back to a 2-coloring
/// split when the greedy dead-ends. The fallback places the two
/// bipartition sides on the machine pair (and orientation) minimizing the
/// resulting makespan — on uniform machines that is the two fastest, on
/// unrelated machines whichever pair the time matrix favors. Returns
/// `None` if even the coloring fallback is impossible (non-bipartite `G`
/// or fewer than two machines).
pub fn greedy_incumbent(inst: &Instance) -> Option<Optimum> {
    let n = inst.num_jobs();
    let m = inst.num_machines() as MachineId;
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| inst.processing(b).cmp(&inst.processing(a)).then(a.cmp(&b)));

    let mut assignment = vec![u32::MAX; n];
    let mut loads = vec![0u64; m as usize];
    let mut ok = true;
    'outer: for &j in &order {
        let mut best: Option<(Rat, MachineId)> = None;
        for i in 0..m {
            let conflict = inst
                .graph()
                .neighbors(j)
                .iter()
                .any(|&u| assignment[u as usize] == i);
            if conflict {
                continue;
            }
            let c = completion_if(inst, &loads, i, j);
            if best.as_ref().is_none_or(|(bc, _)| c < *bc) {
                best = Some((c, i));
            }
        }
        match best {
            Some((_, i)) => {
                loads[i as usize] += job_cost(inst, i, j);
                assignment[j as usize] = i;
            }
            None => {
                ok = false;
                break 'outer;
            }
        }
    }
    if !ok {
        if m < 2 {
            return None;
        }
        let bp = bipartition(inst.graph()).ok()?;
        // Side cost of each bipartition side on each machine.
        let side_of = |j: u32| match bp.side(j) {
            bisched_graph::Side::Left => 0usize,
            bisched_graph::Side::Right => 1usize,
        };
        let mut side_cost = vec![[0u64; 2]; m as usize];
        for (i, cost) in side_cost.iter_mut().enumerate() {
            for j in 0..n as u32 {
                cost[side_of(j)] += job_cost(inst, i as MachineId, j);
            }
        }
        // Pick the ordered machine pair (left side -> a, right side -> b)
        // minimizing the makespan.
        let time = |i: MachineId, load: u64| match inst.env() {
            MachineEnvironment::Uniform { speeds } => Rat::new(load, speeds[i as usize]),
            _ => Rat::integer(load),
        };
        let mut best_pair: Option<(Rat, MachineId, MachineId)> = None;
        for a in 0..m {
            for b in 0..m {
                if a == b {
                    continue;
                }
                let mk = time(a, side_cost[a as usize][0]).max(time(b, side_cost[b as usize][1]));
                if best_pair.as_ref().is_none_or(|(c, _, _)| mk < *c) {
                    best_pair = Some((mk, a, b));
                }
            }
        }
        let (_, a, b) = best_pair.expect("m >= 2 yields at least one pair");
        loads = vec![0u64; m as usize];
        for j in 0..n as u32 {
            let i = if side_of(j) == 0 { a } else { b };
            assignment[j as usize] = i;
            loads[i as usize] += job_cost(inst, i, j);
        }
    }
    let schedule = Schedule::new(assignment);
    debug_assert!(schedule.validate(inst).is_ok());
    let makespan = schedule.makespan(inst);
    Some(Optimum { schedule, makespan })
}

fn job_cost(inst: &Instance, i: MachineId, j: u32) -> u64 {
    match inst.env() {
        MachineEnvironment::Unrelated { times } => times[i as usize][j as usize],
        _ => inst.processing(j),
    }
}

fn completion_if(inst: &Instance, loads: &[u64], i: MachineId, j: u32) -> Rat {
    let new_load = loads[i as usize] + job_cost(inst, i, j);
    match inst.env() {
        MachineEnvironment::Uniform { speeds } => Rat::new(new_load, speeds[i as usize]),
        _ => Rat::integer(new_load),
    }
}

/// How many nodes pass between wall-clock checks.
const DEADLINE_STRIDE: u64 = 256;

struct Search<'a> {
    inst: &'a Instance,
    order: Vec<u32>,
    assignment: Vec<u32>,
    loads: Vec<u64>,
    /// Jobs per machine; `0` marks an *empty* (interchangeable) machine.
    job_count: Vec<u32>,
    /// Per-depth candidate buffers, allocated once.
    cands: Vec<Vec<(Rat, MachineId)>>,
    /// `sym_class[i]`: lowest machine index interchangeable with `i`.
    sym_class: Vec<u32>,
    /// Scratch: which classes already offered an empty machine.
    class_seen: Vec<bool>,
    bounds: IncrementalBounds,
    best: Option<Optimum>,
    nodes: u64,
    node_limit: u64,
    deadline: Option<Instant>,
    /// Set when a budget cut the search short.
    exhausted: bool,
    /// Shared race controls (cancellation + cross-engine bound).
    ctl: Option<&'a SearchCtl>,
    /// Cached foreign bound, refreshed at the deadline-check cadence.
    foreign: f64,
    /// Set when `ctl` cancellation cut the search short.
    cancelled: bool,
    /// Prune tallies per bound kind plus incumbent improvements; plain
    /// integer bumps on the hot path, surfaced in [`BnbOutcome`].
    prunes_incumbent: u64,
    prunes_foreign: u64,
    prunes_candidate: u64,
    incumbent_updates: u64,
}

impl Search<'_> {
    fn current_makespan(&self) -> Rat {
        match self.inst.env() {
            MachineEnvironment::Uniform { speeds } => self
                .loads
                .iter()
                .zip(speeds)
                .map(|(&l, &s)| Rat::new(l, s))
                .max()
                .unwrap_or(Rat::ZERO),
            _ => Rat::integer(self.loads.iter().copied().max().unwrap_or(0)),
        }
    }

    fn run(&mut self, depth: usize) {
        if self.nodes >= self.node_limit {
            self.exhausted = true;
            return;
        }
        if self.nodes.is_multiple_of(DEADLINE_STRIDE) {
            if let Some(dl) = self.deadline {
                if Instant::now() >= dl {
                    self.exhausted = true;
                    return;
                }
            }
            if let Some(ctl) = self.ctl {
                if ctl.cancelled() {
                    self.exhausted = true;
                    self.cancelled = true;
                    return;
                }
                self.foreign = ctl.foreign_bound();
            }
        }
        self.nodes += 1;
        if depth == self.order.len() {
            let mk = self.current_makespan();
            if self.best.as_ref().is_none_or(|b| mk < b.makespan) {
                if let Some(ctl) = self.ctl {
                    ctl.publish_makespan(&mk);
                }
                self.incumbent_updates += 1;
                // Incumbent-convergence timeline: one instant per
                // improvement — rare by construction, so safe to emit
                // even from the search's hot recursion.
                bisched_obs::instant("bnb_incumbent", "bnb", "makespan_floor", mk.floor());
                self.best = Some(Optimum {
                    schedule: Schedule::new(self.assignment.clone()),
                    makespan: mk,
                });
            }
            return;
        }
        if self.best.is_some() || self.foreign.is_finite() {
            let lb = self
                .bounds
                .lower_bound(&self.loads, depth)
                .max(self.current_makespan());
            if self.best.as_ref().is_some_and(|b| lb >= b.makespan) {
                self.prunes_incumbent += 1;
                return;
            }
            // Foreign-bound cut: a racing engine already achieved a
            // makespan this subtree cannot beat (conservative rounding —
            // see `search_ctl`).
            if rat_to_f64_down(&lb) >= self.foreign {
                self.prunes_foreign += 1;
                return;
            }
        }
        let j = self.order[depth];
        let m = self.inst.num_machines();
        // Collect candidates into this depth's reusable buffer: empty
        // machines are interchangeable within a symmetry class (only the
        // lowest-indexed one may be opened, and it can never conflict);
        // occupied machines are screened by the conflict bitmasks.
        let mut cands = std::mem::take(&mut self.cands[depth]);
        cands.clear();
        self.class_seen.iter_mut().for_each(|x| *x = false);
        for i in 0..m {
            if self.job_count[i] == 0 {
                let class = self.sym_class[i] as usize;
                if self.class_seen[class] {
                    continue;
                }
                self.class_seen[class] = true;
            } else if self.bounds.conflicts(j, i) {
                continue;
            }
            cands.push((
                completion_if(self.inst, &self.loads, i as MachineId, j),
                i as MachineId,
            ));
        }
        // Best-first: try machines in order of resulting completion time.
        cands.sort_unstable();
        for &(c, i) in cands.iter() {
            // Candidate cut: machine `i`'s completion only grows below
            // this node, and candidates are sorted, so the first one at
            // or past the incumbent ends the whole list.
            if self.best.as_ref().is_some_and(|b| c >= b.makespan) {
                self.prunes_candidate += 1;
                break;
            }
            let cost = job_cost(self.inst, i, j);
            self.loads[i as usize] += cost;
            self.job_count[i as usize] += 1;
            self.assignment[j as usize] = i;
            self.bounds.assign(j, i as usize);
            self.run(depth + 1);
            self.bounds.unassign(j, i as usize);
            self.assignment[j as usize] = u32::MAX;
            self.job_count[i as usize] -= 1;
            self.loads[i as usize] -= cost;
            if self.exhausted {
                break;
            }
        }
        self.cands[depth] = cands;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::brute_force;
    use bisched_graph::{gilbert_bipartite, Graph};
    use bisched_model::JobSizes;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_matches_bruteforce(inst: &Instance) {
        let bf = brute_force(inst);
        let bb = branch_and_bound(inst, 10_000_000);
        assert!(bb.complete);
        match (bf, bb.optimum) {
            (Some(a), Some(b)) => {
                assert_eq!(a.makespan, b.makespan, "on {}", inst.describe());
                assert!(b.schedule.validate(inst).is_ok());
            }
            (None, None) => {}
            (a, b) => panic!(
                "feasibility disagreement: brute={:?} bnb={:?}",
                a.map(|o| o.makespan),
                b.map(|o| o.makespan)
            ),
        }
    }

    #[test]
    fn agrees_with_bruteforce_on_fixed_cases() {
        let cases: Vec<Instance> = vec![
            Instance::identical(2, vec![3, 3, 2, 2], Graph::empty(4)).unwrap(),
            Instance::identical(3, vec![1; 5], Graph::cycle(5)).unwrap(),
            Instance::uniform(vec![3, 1], vec![4, 4, 4, 1], Graph::path(4)).unwrap(),
            Instance::uniform(
                vec![5, 2, 1],
                vec![7, 3, 3, 2, 2],
                Graph::complete_bipartite(2, 3),
            )
            .unwrap(),
            Instance::unrelated(
                vec![vec![2, 9, 4, 3], vec![7, 1, 8, 2]],
                Graph::from_edges(4, &[(0, 1), (2, 3)]),
            )
            .unwrap(),
            // Interchangeable-machine shapes (symmetry breaking on).
            Instance::identical(4, vec![5, 4, 3, 3, 2, 2, 1], Graph::path(7)).unwrap(),
            Instance::uniform(vec![3, 3, 1, 1], vec![6, 5, 4, 3, 2, 1], Graph::crown(3)).unwrap(),
            Instance::unrelated(
                vec![vec![4, 2, 3], vec![4, 2, 3], vec![1, 9, 9]],
                Graph::path(3),
            )
            .unwrap(),
        ];
        for inst in &cases {
            assert_matches_bruteforce(inst);
        }
    }

    #[test]
    fn agrees_with_bruteforce_randomized() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let n = rng.gen_range(2..=8);
            let m = rng.gen_range(2..=3);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.4, &mut rng);
            let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(n, &mut rng);
            let inst = match trial % 3 {
                0 => Instance::identical(m, p, g).unwrap(),
                1 => {
                    let speeds = (0..m).map(|_| rng.gen_range(1..=4)).collect();
                    Instance::uniform(speeds, p, g).unwrap()
                }
                _ => {
                    let times = (0..m)
                        .map(|_| (0..n).map(|_| rng.gen_range(1..=9)).collect())
                        .collect();
                    Instance::unrelated(times, g).unwrap()
                }
            };
            assert_matches_bruteforce(&inst);
        }
    }

    #[test]
    fn greedy_incumbent_always_feasible_on_bipartite() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(2..=20);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.3, &mut rng);
            let p = JobSizes::Uniform { lo: 1, hi: 20 }.sample(n, &mut rng);
            let inst = Instance::identical(2, p, g).unwrap();
            let inc = greedy_incumbent(&inst).expect("bipartite on 2 machines is feasible");
            assert!(inc.schedule.validate(&inst).is_ok());
        }
    }

    #[test]
    fn greedy_fallback_picks_the_best_machine_pair() {
        // K_{2,2} forces the coloring fallback path on unrelated machines
        // where machines 2 and 3 are far better than 0 and 1 — the old
        // hardcoded pair (0, 1) would land on makespan 100.
        let g = Graph::complete_bipartite(2, 2);
        let times = vec![
            vec![100, 100, 100, 100],
            vec![100, 100, 100, 100],
            vec![1, 1, 9, 9],
            vec![9, 9, 1, 1],
        ];
        let inst = Instance::unrelated(times, g).unwrap();
        let inc = greedy_incumbent(&inst).expect("feasible");
        assert!(inc.schedule.validate(&inst).is_ok());
        assert!(
            inc.makespan <= Rat::integer(18),
            "fallback used a dominated machine pair: {}",
            inc.makespan
        );
    }

    #[test]
    fn node_limit_returns_incumbent() {
        // LPT greedy lands on 19 here while the optimum is 18, so the
        // relaxed bound (18) cannot close the root and the search must
        // actually expand nodes — the tiny budget then cuts it short.
        let g = Graph::empty(7);
        let inst = Instance::identical(2, vec![7, 7, 6, 5, 4, 4, 3], g).unwrap();
        let out = branch_and_bound(&inst, 3);
        assert!(!out.complete);
        let opt = out.optimum.expect("incumbent exists");
        assert!(opt.schedule.validate(&inst).is_ok());
        // Full search proves the optimum of 18.
        let full = branch_and_bound(&inst, 1_000_000);
        assert!(full.complete);
        assert_eq!(full.optimum.unwrap().makespan, Rat::integer(18));
    }

    #[test]
    fn finishing_on_the_last_budgeted_node_is_still_complete() {
        // The seed implementation inferred completeness from
        // `nodes < node_limit`, spuriously reporting an exact result as
        // truncated whenever the search finished with the counter at the
        // limit. Exhaustion is tracked explicitly now.
        let g = Graph::empty(7);
        let inst = Instance::identical(2, vec![7, 7, 6, 5, 4, 4, 3], g).unwrap();
        let full = branch_and_bound(&inst, u64::MAX);
        assert!(full.complete);
        let exact_budget = branch_and_bound(&inst, full.nodes);
        assert_eq!(exact_budget.nodes, full.nodes);
        assert!(
            exact_budget.complete,
            "search finished with nodes == node_limit and must count as complete"
        );
        assert_eq!(
            exact_budget.optimum.unwrap().makespan,
            full.optimum.unwrap().makespan
        );
        // One node less genuinely truncates.
        let truncated = branch_and_bound(&inst, full.nodes - 1);
        assert!(!truncated.complete);
    }

    #[test]
    fn deadline_budget_cuts_the_search() {
        let mut rng = StdRng::seed_from_u64(99);
        let g = gilbert_bipartite(10, 10, 0.3, &mut rng);
        let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(20, &mut rng);
        let inst = Instance::identical(4, p, g).unwrap();
        let out = branch_and_bound_with(
            &inst,
            &BnbLimits {
                node_limit: u64::MAX,
                deadline: Some(Duration::ZERO),
            },
        );
        assert!(!out.complete, "zero deadline must truncate the search");
        // The greedy incumbent is still returned and valid.
        let opt = out.optimum.expect("incumbent exists");
        assert!(opt.schedule.validate(&inst).is_ok());
    }

    #[test]
    fn cancellation_cuts_the_search_and_is_reported() {
        let mut rng = StdRng::seed_from_u64(99);
        let g = gilbert_bipartite(10, 10, 0.3, &mut rng);
        let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(20, &mut rng);
        let inst = Instance::identical(4, p, g).unwrap();
        // Pre-cancelled control: the search stops at the first stride
        // check (the root) and still returns the greedy incumbent.
        let ctl = SearchCtl::new();
        ctl.cancel();
        let out = branch_and_bound_ctl(&inst, &BnbLimits::default(), Some(&ctl));
        assert!(!out.complete);
        assert!(out.cancelled);
        assert!(out.nodes < DEADLINE_STRIDE);
        let opt = out.optimum.expect("incumbent exists");
        assert!(opt.schedule.validate(&inst).is_ok());
        // An uncancelled control leaves the result identical to the
        // plain run — and publishes the proven optimum.
        let ctl = SearchCtl::new();
        let racing = branch_and_bound_ctl(&inst, &BnbLimits::default(), Some(&ctl));
        let plain = branch_and_bound_with(&inst, &BnbLimits::default());
        assert!(racing.complete && !racing.cancelled);
        assert_eq!(
            racing.optimum.as_ref().unwrap().makespan,
            plain.optimum.as_ref().unwrap().makespan
        );
        let mk = &racing.optimum.unwrap().makespan;
        assert!(ctl.foreign_bound() >= mk.to_f64());
        assert!(ctl.foreign_bound() < mk.to_f64() + 1.0);
    }

    #[test]
    fn foreign_bound_prunes_but_never_below_the_true_optimum() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..10 {
            let n = rng.gen_range(4..=8);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.4, &mut rng);
            let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(n, &mut rng);
            let inst = match trial % 2 {
                0 => Instance::identical(3, p, g).unwrap(),
                _ => Instance::uniform(vec![3, 2, 1], p, g).unwrap(),
            };
            let plain = branch_and_bound(&inst, u64::MAX);
            let Some(opt) = plain.optimum else { continue };
            // Publish the true optimum as a foreign bound: the racing
            // search may prune everything at or above it, but whatever
            // it proves must still be consistent with that bound — the
            // race's `min(optimum, published bound)` claim.
            let ctl = SearchCtl::new();
            ctl.publish_makespan(&opt.makespan);
            let racing = branch_and_bound_ctl(&inst, &BnbLimits::default(), Some(&ctl));
            assert!(racing.complete);
            let best = racing.optimum.expect("feasible instance");
            assert!(best.schedule.validate(&inst).is_ok());
            assert!(
                best.makespan >= opt.makespan,
                "racing search invented a sub-optimal makespan: {} < {}",
                best.makespan,
                opt.makespan
            );
        }
    }

    #[test]
    fn infeasible_detected() {
        let inst = Instance::identical(2, vec![1; 5], Graph::cycle(5)).unwrap();
        let out = branch_and_bound(&inst, 1_000_000);
        assert!(out.complete);
        assert!(out.optimum.is_none());
    }
}
