//! Branch-and-bound exact solver for `{P,Q,R} | G | C_max`.
//!
//! The reference oracle behind every approximation-ratio experiment at
//! "small but not tiny" sizes (n ≲ 24). Jobs are branched in LPT order;
//! nodes are cut by (a) the incumbent found by a graph-aware greedy and
//! (b) a relaxed load bound (remaining work spread fractionally over all
//! machines). Everything is exact rational arithmetic.

use crate::bruteforce::Optimum;
use bisched_graph::bipartition;
use bisched_model::{Instance, MachineEnvironment, MachineId, Rat, Schedule};

/// Outcome of a branch-and-bound run.
#[derive(Clone, Debug)]
pub struct BnbOutcome {
    /// Best schedule found (`None` if infeasible).
    pub optimum: Option<Optimum>,
    /// Nodes expanded.
    pub nodes: u64,
    /// `true` iff the search ran to completion (the result is proven
    /// optimal); `false` if the node budget was exhausted first.
    pub complete: bool,
}

/// Exact branch and bound with a node budget.
///
/// Returns a proven optimum when `complete` is true; otherwise the best
/// incumbent seen (still feasible, not necessarily optimal).
pub fn branch_and_bound(inst: &Instance, node_limit: u64) -> BnbOutcome {
    let n = inst.num_jobs();
    let m = inst.num_machines();
    // LPT branching order (min-row for R).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| inst.processing(b).cmp(&inst.processing(a)).then(a.cmp(&b)));

    let mut search = Search {
        inst,
        order,
        assignment: vec![u32::MAX; n],
        loads: vec![0; m],
        best: greedy_incumbent(inst),
        nodes: 0,
        node_limit,
        total_speed: match inst.env() {
            MachineEnvironment::Unrelated { .. } => m as u64,
            _ => inst.speeds().iter().sum(),
        },
        remaining: inst.processing_all().iter().sum(),
        assigned_work: 0,
    };
    search.run(0);
    BnbOutcome {
        complete: search.nodes < search.node_limit,
        optimum: search.best,
        nodes: search.nodes,
    }
}

/// A feasible incumbent: graph-aware greedy, falling back to a 2-coloring
/// split when the greedy dead-ends. Returns `None` if even the coloring
/// fallback is impossible (non-bipartite `G` on too few machines).
pub fn greedy_incumbent(inst: &Instance) -> Option<Optimum> {
    let n = inst.num_jobs();
    let m = inst.num_machines() as MachineId;
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| inst.processing(b).cmp(&inst.processing(a)).then(a.cmp(&b)));

    let mut assignment = vec![u32::MAX; n];
    let mut loads = vec![0u64; m as usize];
    let mut ok = true;
    'outer: for &j in &order {
        let mut best: Option<(Rat, MachineId)> = None;
        for i in 0..m {
            let conflict = inst
                .graph()
                .neighbors(j)
                .iter()
                .any(|&u| assignment[u as usize] == i);
            if conflict {
                continue;
            }
            let c = completion_if(inst, &loads, i, j);
            if best.as_ref().is_none_or(|(bc, _)| c < *bc) {
                best = Some((c, i));
            }
        }
        match best {
            Some((_, i)) => {
                loads[i as usize] += job_cost(inst, i, j);
                assignment[j as usize] = i;
            }
            None => {
                ok = false;
                break 'outer;
            }
        }
    }
    if !ok {
        // Fallback: bipartition split over the two fastest machines.
        if m < 2 {
            return None;
        }
        let bp = bipartition(inst.graph()).ok()?;
        loads = vec![0u64; m as usize];
        for j in 0..n as u32 {
            let i = match bp.side(j) {
                bisched_graph::Side::Left => 0,
                bisched_graph::Side::Right => 1,
            };
            assignment[j as usize] = i;
            loads[i as usize] += job_cost(inst, i, j);
        }
    }
    let schedule = Schedule::new(assignment);
    debug_assert!(schedule.validate(inst).is_ok());
    let makespan = schedule.makespan(inst);
    Some(Optimum { schedule, makespan })
}

fn job_cost(inst: &Instance, i: MachineId, j: u32) -> u64 {
    match inst.env() {
        MachineEnvironment::Unrelated { times } => times[i as usize][j as usize],
        _ => inst.processing(j),
    }
}

fn completion_if(inst: &Instance, loads: &[u64], i: MachineId, j: u32) -> Rat {
    let new_load = loads[i as usize] + job_cost(inst, i, j);
    match inst.env() {
        MachineEnvironment::Uniform { speeds } => Rat::new(new_load, speeds[i as usize]),
        _ => Rat::integer(new_load),
    }
}

struct Search<'a> {
    inst: &'a Instance,
    order: Vec<u32>,
    assignment: Vec<u32>,
    loads: Vec<u64>,
    best: Option<Optimum>,
    nodes: u64,
    node_limit: u64,
    /// Σ speeds (or `m` for `R`), for the fractional relaxation bound.
    total_speed: u64,
    /// Processing (min-row for `R`) not yet assigned.
    remaining: u64,
    /// Integer work already placed (sum of loads).
    assigned_work: u64,
}

impl Search<'_> {
    fn current_makespan(&self) -> Rat {
        match self.inst.env() {
            MachineEnvironment::Uniform { speeds } => self
                .loads
                .iter()
                .zip(speeds)
                .map(|(&l, &s)| Rat::new(l, s))
                .max()
                .unwrap_or(Rat::ZERO),
            _ => Rat::integer(self.loads.iter().copied().max().unwrap_or(0)),
        }
    }

    fn lower_bound(&self) -> Rat {
        // Fractional relaxation: all work (done + remaining) spread over
        // the aggregate speed, ignoring both integrality and the graph.
        let relaxed = Rat::new(
            (self.assigned_work + self.remaining).max(1),
            self.total_speed,
        );
        self.current_makespan().max(relaxed)
    }

    fn run(&mut self, depth: usize) {
        if self.nodes >= self.node_limit {
            return;
        }
        self.nodes += 1;
        if depth == self.order.len() {
            let mk = self.current_makespan();
            if self.best.as_ref().is_none_or(|b| mk < b.makespan) {
                self.best = Some(Optimum {
                    schedule: Schedule::new(self.assignment.clone()),
                    makespan: mk,
                });
            }
            return;
        }
        if let Some(b) = &self.best {
            if self.lower_bound() >= b.makespan {
                return;
            }
        }
        let j = self.order[depth];
        let m = self.inst.num_machines() as MachineId;
        // Try machines in order of resulting completion time (best-first).
        let mut cands: Vec<(Rat, MachineId)> = (0..m)
            .filter(|&i| {
                !self
                    .inst
                    .graph()
                    .neighbors(j)
                    .iter()
                    .any(|&u| self.assignment[u as usize] == i)
            })
            .map(|i| (completion_if(self.inst, &self.loads, i, j), i))
            .collect();
        cands.sort();
        let p_proxy = self.inst.processing(j);
        for (_, i) in cands {
            let cost = job_cost(self.inst, i, j);
            self.loads[i as usize] += cost;
            self.assigned_work += cost;
            self.remaining -= p_proxy;
            self.assignment[j as usize] = i;
            self.run(depth + 1);
            self.assignment[j as usize] = u32::MAX;
            self.remaining += p_proxy;
            self.assigned_work -= cost;
            self.loads[i as usize] -= cost;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::brute_force;
    use bisched_graph::{gilbert_bipartite, Graph};
    use bisched_model::JobSizes;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_matches_bruteforce(inst: &Instance) {
        let bf = brute_force(inst);
        let bb = branch_and_bound(inst, 10_000_000);
        assert!(bb.complete);
        match (bf, bb.optimum) {
            (Some(a), Some(b)) => {
                assert_eq!(a.makespan, b.makespan, "on {}", inst.describe());
                assert!(b.schedule.validate(inst).is_ok());
            }
            (None, None) => {}
            (a, b) => panic!(
                "feasibility disagreement: brute={:?} bnb={:?}",
                a.map(|o| o.makespan),
                b.map(|o| o.makespan)
            ),
        }
    }

    #[test]
    fn agrees_with_bruteforce_on_fixed_cases() {
        let cases: Vec<Instance> = vec![
            Instance::identical(2, vec![3, 3, 2, 2], Graph::empty(4)).unwrap(),
            Instance::identical(3, vec![1; 5], Graph::cycle(5)).unwrap(),
            Instance::uniform(vec![3, 1], vec![4, 4, 4, 1], Graph::path(4)).unwrap(),
            Instance::uniform(
                vec![5, 2, 1],
                vec![7, 3, 3, 2, 2],
                Graph::complete_bipartite(2, 3),
            )
            .unwrap(),
            Instance::unrelated(
                vec![vec![2, 9, 4, 3], vec![7, 1, 8, 2]],
                Graph::from_edges(4, &[(0, 1), (2, 3)]),
            )
            .unwrap(),
        ];
        for inst in &cases {
            assert_matches_bruteforce(inst);
        }
    }

    #[test]
    fn agrees_with_bruteforce_randomized() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let n = rng.gen_range(2..=8);
            let m = rng.gen_range(2..=3);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.4, &mut rng);
            let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(n, &mut rng);
            let inst = match trial % 3 {
                0 => Instance::identical(m, p, g).unwrap(),
                1 => {
                    let speeds = (0..m).map(|_| rng.gen_range(1..=4)).collect();
                    Instance::uniform(speeds, p, g).unwrap()
                }
                _ => {
                    let times = (0..m)
                        .map(|_| (0..n).map(|_| rng.gen_range(1..=9)).collect())
                        .collect();
                    Instance::unrelated(times, g).unwrap()
                }
            };
            assert_matches_bruteforce(&inst);
        }
    }

    #[test]
    fn greedy_incumbent_always_feasible_on_bipartite() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(2..=20);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.3, &mut rng);
            let p = JobSizes::Uniform { lo: 1, hi: 20 }.sample(n, &mut rng);
            let inst = Instance::identical(2, p, g).unwrap();
            let inc = greedy_incumbent(&inst).expect("bipartite on 2 machines is feasible");
            assert!(inc.schedule.validate(&inst).is_ok());
        }
    }

    #[test]
    fn node_limit_returns_incumbent() {
        // LPT greedy lands on 19 here while the optimum is 18, so the
        // relaxed bound (18) cannot close the root and the search must
        // actually expand nodes — the tiny budget then cuts it short.
        let g = Graph::empty(7);
        let inst = Instance::identical(2, vec![7, 7, 6, 5, 4, 4, 3], g).unwrap();
        let out = branch_and_bound(&inst, 3);
        assert!(!out.complete);
        let opt = out.optimum.expect("incumbent exists");
        assert!(opt.schedule.validate(&inst).is_ok());
        // Full search proves the optimum of 18.
        let full = branch_and_bound(&inst, 1_000_000);
        assert!(full.complete);
        assert_eq!(full.optimum.unwrap().makespan, Rat::integer(18));
    }

    #[test]
    fn infeasible_detected() {
        let inst = Instance::identical(2, vec![1; 5], Graph::cycle(5)).unwrap();
        let out = branch_and_bound(&inst, 1_000_000);
        assert!(out.complete);
        assert!(out.optimum.is_none());
    }
}
