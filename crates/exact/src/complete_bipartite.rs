//! Exact polynomial algorithm for `Q | G = complete bipartite, p_j = 1 |
//! C_max` under unary encoding — the related-work result [24] (Pikies,
//! Turowski, Kubale) that the paper's Section 2 builds on.
//!
//! With `G = K_{n_A,n_B}` every machine serves jobs from exactly one side,
//! so a schedule is a *bipartition of the machines* plus per-side counts.
//! The optimal makespan is the least event time `T = c/s_i` at which the
//! floored capacities `⌊s_i T⌋` admit a machine subset covering `n_A` whose
//! complement covers `n_B` — a subset-sum check. Binary search over the
//! `O(mN)` candidate times with an `O(mN²/64)` bitset feasibility test.
//!
//! (Under *binary* encoding the problem is NP-hard [20]; the unary/unit
//! restriction is exactly what [24] solves and what we implement.)

use crate::bitset::BitSet;
use crate::bruteforce::Optimum;
use bisched_model::{floor_capacities, Instance, MachineEnvironment, Rat, Schedule};

/// Result of the feasibility check: which machines serve side A.
fn feasible_split(caps: &[u64], n_a: usize, n_b: usize) -> Option<Vec<bool>> {
    let total_needed = n_a + n_b;
    // Clamp capacities: more than all jobs is never useful, and clamping
    // keeps the bitset small. sum(min(c_i, N)) >= min(sum c_i, N) per
    // subset, so feasibility is unchanged.
    let clamped: Vec<usize> = caps
        .iter()
        .map(|&c| (c as usize).min(total_needed))
        .collect();
    let total: usize = clamped.iter().sum();
    if total < total_needed {
        return None;
    }
    // Subset sums of clamped capacities, with per-machine layers kept for
    // reconstruction.
    let cap_space = total + 1;
    let mut layers: Vec<BitSet> = Vec::with_capacity(clamped.len() + 1);
    let mut dp = BitSet::new(cap_space);
    dp.set(0);
    layers.push(dp.clone());
    for &c in &clamped {
        let prev = dp.clone();
        dp.or_shifted(&prev, c);
        layers.push(dp.clone());
    }
    // Need a reachable x with x >= n_a and total - x >= n_b.
    let hi = total - n_b;
    let x = (n_a..=hi).find(|&x| dp.get(x))?;
    // Walk back: machine i is in the A-side subset iff its capacity was
    // "taken" on the path to x.
    let mut in_a = vec![false; clamped.len()];
    let mut rest = x;
    for (i, &c) in clamped.iter().enumerate().rev() {
        let without = layers[i].get(rest);
        if !without {
            debug_assert!(rest >= c && layers[i].get(rest - c));
            in_a[i] = true;
            rest -= c;
        }
    }
    debug_assert_eq!(rest, 0);
    Some(in_a)
}

/// Exact optimum for `Q | G = complete bipartite, p_j = 1 | C_max`.
///
/// `inst` must be a unit-job `P`/`Q` instance whose graph is a complete
/// bipartite `K_{n_A,n_B}` (verified; isolated-vertex-free sides). Use
/// `n_a = 0` or `n_b = 0` for the degenerate empty-side case.
pub fn q_complete_bipartite_unit(inst: &Instance) -> Result<Optimum, CompleteBipartiteError> {
    if matches!(inst.env(), MachineEnvironment::Unrelated { .. }) {
        return Err(CompleteBipartiteError::WrongEnvironment);
    }
    if !inst.is_unit() {
        return Err(CompleteBipartiteError::NotUnitJobs);
    }
    let g = inst.graph();
    let n = g.num_vertices();
    // Recognize K_{a,b}: 2-color, then check |E| = a*b.
    let bp = bisched_graph::bipartition(g).map_err(|_| CompleteBipartiteError::NotBipartite)?;
    let side_a = bp.part(bisched_graph::Side::Left);
    let side_b = bp.part(bisched_graph::Side::Right);
    let (n_a, n_b) = (side_a.len(), side_b.len());
    if n_a > 0 && n_b > 0 && g.num_edges() != n_a * n_b {
        return Err(CompleteBipartiteError::NotCompleteBipartite {
            edges: g.num_edges(),
            expected: n_a * n_b,
        });
    }
    let speeds = inst.speeds();
    let m = speeds.len();

    // Degenerate: one empty side — everything is mutually compatible.
    if n_a == 0 || n_b == 0 {
        let t = bisched_model::min_time_to_cover(&speeds, n as u64);
        let caps = floor_capacities(&speeds, &t);
        let schedule = fill(&side_a, &side_b, &vec![true; m], &caps, n, m);
        return Ok(Optimum {
            makespan: schedule.makespan(inst),
            schedule,
        });
    }
    if m < 2 {
        return Err(CompleteBipartiteError::Infeasible);
    }

    // Candidate times: every c/s_i for c in 1..=n; the optimum is the
    // least feasible one. Binary search over the sorted candidate set.
    let mut candidates: Vec<Rat> = Vec::with_capacity(m * n);
    for &s in &speeds {
        for c in 1..=n as u64 {
            candidates.push(Rat::new(c, s));
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    let feasible_at =
        |t: &Rat| -> Option<Vec<bool>> { feasible_split(&floor_capacities(&speeds, t), n_a, n_b) };
    // Invariant: feasibility is monotone in t.
    let mut lo = 0usize;
    let mut hi = candidates.len() - 1;
    if feasible_at(&candidates[hi]).is_none() {
        return Err(CompleteBipartiteError::Infeasible);
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        if feasible_at(&candidates[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let t = candidates[lo];
    let in_a = feasible_at(&t).expect("binary search landed on feasible");
    let caps = floor_capacities(&speeds, &t);
    let schedule = fill(&side_a, &side_b, &in_a, &caps, n, m);
    debug_assert!(schedule.validate(inst).is_ok());
    let makespan = schedule.makespan(inst);
    debug_assert!(makespan <= t);
    Ok(Optimum { schedule, makespan })
}

/// Fills side-A jobs onto the `in_a` machines (by capacity, fastest
/// first) and side-B jobs onto the rest.
fn fill(
    side_a: &[u32],
    side_b: &[u32],
    in_a: &[bool],
    caps: &[u64],
    n: usize,
    m: usize,
) -> Schedule {
    let mut assignment = vec![u32::MAX; n];
    for (side, jobs) in [(true, side_a), (false, side_b)] {
        let mut queue = jobs.iter().copied();
        'machines: for i in 0..m {
            if in_a[i] != side {
                continue;
            }
            for _ in 0..caps[i] {
                match queue.next() {
                    Some(j) => assignment[j as usize] = i as u32,
                    None => break 'machines,
                }
            }
        }
        // All jobs must have been placed (caps cover the side).
        debug_assert!(queue.next().is_none(), "capacity accounting broke");
    }
    Schedule::new(assignment)
}

/// Errors of the complete-bipartite solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompleteBipartiteError {
    /// Unrelated machines are out of scope ([24] shows `R` is hopeless).
    WrongEnvironment,
    /// The algorithm is for unit jobs ([20]: NP-hard otherwise).
    NotUnitJobs,
    /// The graph has an odd cycle.
    NotBipartite,
    /// Bipartite but not complete bipartite.
    NotCompleteBipartite {
        /// Edges found.
        edges: usize,
        /// `n_A * n_B`.
        expected: usize,
    },
    /// No feasible schedule (e.g. one machine, both sides non-empty).
    Infeasible,
}

impl std::fmt::Display for CompleteBipartiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompleteBipartiteError::WrongEnvironment => {
                write!(f, "solver requires identical or uniform machines")
            }
            CompleteBipartiteError::NotUnitJobs => write!(f, "solver requires unit jobs"),
            CompleteBipartiteError::NotBipartite => write!(f, "graph is not bipartite"),
            CompleteBipartiteError::NotCompleteBipartite { edges, expected } => {
                write!(f, "graph has {edges} edges, K_(a,b) needs {expected}")
            }
            CompleteBipartiteError::Infeasible => write!(f, "no feasible schedule"),
        }
    }
}

impl std::error::Error for CompleteBipartiteError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_bound::branch_and_bound;
    use bisched_graph::Graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn kab(a: usize, b: usize, speeds: Vec<u64>) -> Instance {
        Instance::uniform(speeds, vec![1; a + b], Graph::complete_bipartite(a, b)).unwrap()
    }

    #[test]
    fn two_machines_split_sides() {
        // K_{4,4}, speeds (2, 1): A on fast (2), B on slow (4) -> 4.
        let inst = kab(4, 4, vec![2, 1]);
        let opt = q_complete_bipartite_unit(&inst).unwrap();
        assert_eq!(opt.makespan, Rat::integer(4));
        assert!(opt.schedule.validate(&inst).is_ok());
    }

    #[test]
    fn matches_branch_and_bound_randomized() {
        let mut rng = StdRng::seed_from_u64(131);
        for _ in 0..25 {
            let a = rng.gen_range(1..=5);
            let b = rng.gen_range(1..=5);
            let m = rng.gen_range(2..=4);
            let speeds: Vec<u64> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            let inst = kab(a, b, speeds);
            let fast = q_complete_bipartite_unit(&inst).unwrap();
            let slow = branch_and_bound(&inst, 10_000_000);
            assert!(slow.complete);
            assert_eq!(
                fast.makespan,
                slow.optimum.unwrap().makespan,
                "K_({a},{b}) on {:?}",
                inst.speeds()
            );
        }
    }

    #[test]
    fn empty_side_degenerates_to_q_cmax() {
        // No edges at all: pure Q||C_max with unit jobs.
        let inst = Instance::uniform(vec![3, 1], vec![1; 8], Graph::empty(8)).unwrap();
        let opt = q_complete_bipartite_unit(&inst).unwrap();
        // min T with floor(3T)+floor(T) >= 8 -> T = 2.
        assert_eq!(opt.makespan, Rat::integer(2));
    }

    #[test]
    fn one_machine_two_sides_infeasible() {
        let inst = kab(2, 2, vec![5]);
        assert_eq!(
            q_complete_bipartite_unit(&inst).unwrap_err(),
            CompleteBipartiteError::Infeasible
        );
    }

    #[test]
    fn rejects_wrong_shapes() {
        // Not complete bipartite: a path.
        let inst = Instance::uniform(vec![2, 1], vec![1; 4], Graph::path(4)).unwrap();
        assert!(matches!(
            q_complete_bipartite_unit(&inst).unwrap_err(),
            CompleteBipartiteError::NotCompleteBipartite { .. }
        ));
        // Weighted jobs.
        let w = Instance::uniform(vec![2, 1], vec![2, 1], Graph::complete_bipartite(1, 1)).unwrap();
        assert_eq!(
            q_complete_bipartite_unit(&w).unwrap_err(),
            CompleteBipartiteError::NotUnitJobs
        );
        // Odd cycle.
        let odd = Instance::uniform(vec![2, 1, 1], vec![1; 5], Graph::cycle(5)).unwrap();
        assert_eq!(
            q_complete_bipartite_unit(&odd).unwrap_err(),
            CompleteBipartiteError::NotBipartite
        );
        // Unrelated.
        let r = Instance::unrelated(vec![vec![1], vec![1]], Graph::empty(1)).unwrap();
        assert_eq!(
            q_complete_bipartite_unit(&r).unwrap_err(),
            CompleteBipartiteError::WrongEnvironment
        );
    }

    #[test]
    fn uneven_sides_prefer_fast_machines_for_big_side() {
        // K_{9,1}, speeds (5, 1): side A (9 jobs) on the fast machine
        // (9/5), side B (1 job) on the slow one (1) -> makespan 9/5.
        let inst = kab(9, 1, vec![5, 1]);
        let opt = q_complete_bipartite_unit(&inst).unwrap();
        assert_eq!(opt.makespan, Rat::new(9, 5));
    }

    #[test]
    fn many_machines_mix_sides() {
        let mut rng = StdRng::seed_from_u64(137);
        for _ in 0..10 {
            let a = rng.gen_range(3..=8);
            let b = rng.gen_range(3..=8);
            let inst = kab(a, b, vec![4, 3, 2, 1, 1]);
            let fast = q_complete_bipartite_unit(&inst).unwrap();
            assert!(fast.schedule.validate(&inst).is_ok());
            let slow = branch_and_bound(&inst, 50_000_000);
            if slow.complete {
                assert_eq!(fast.makespan, slow.optimum.unwrap().makespan);
            }
        }
    }
}
