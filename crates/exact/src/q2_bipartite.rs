//! Exact pseudo-polynomial solver for `Q2 | G = bipartite | C_max`.
//!
//! On two machines a feasible schedule *is* a proper 2-coloring with the
//! classes sent to the machines, and per connected component the coloring is
//! unique up to a swap. So the solver is a two-choice subset-sum over
//! components: component `k` contributes either `(a_k, b_k)` or `(b_k, a_k)`
//! weight to the machines. A packed-bitset DP enumerates every achievable
//! load on `M_1` in `O(c · Σp / 64)`; the best split under
//! `max(x/s_1, (Σp − x)/s_2)` is exact.
//!
//! With unit jobs this *is* the direct route to Theorem 4's
//! `Q2 | G = bipartite, p_j = 1 | C_max` (the paper reaches the same result
//! through an FPTAS with `ε = 1/(n+1)`; `bisched-core::thm4` cross-checks
//! the two).

use crate::bitset::BitSet;
use crate::bruteforce::Optimum;
use bisched_graph::{bipartition, Components, Side};
use bisched_model::{Instance, MachineEnvironment, Rat, Schedule};

/// Why an oracle cannot run on this instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OracleError {
    /// The oracle handles exactly two machines.
    NotTwoMachines {
        /// Machines in the instance.
        got: usize,
    },
    /// The incompatibility graph has an odd cycle.
    NotBipartite,
    /// The machine environment is not the one the oracle is for.
    WrongEnvironment {
        /// `α` field found.
        got: &'static str,
    },
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::NotTwoMachines { got } => {
                write!(f, "oracle requires exactly 2 machines, instance has {got}")
            }
            OracleError::NotBipartite => write!(f, "incompatibility graph is not bipartite"),
            OracleError::WrongEnvironment { got } => {
                write!(f, "oracle does not support the {got} environment")
            }
        }
    }
}

impl std::error::Error for OracleError {}

/// Exact optimum for `Q2 | G = bipartite | C_max` (also accepts `P2`).
pub fn q2_bipartite_exact(inst: &Instance) -> Result<Optimum, OracleError> {
    if inst.num_machines() != 2 {
        return Err(OracleError::NotTwoMachines {
            got: inst.num_machines(),
        });
    }
    let (s1, s2) = match inst.env() {
        MachineEnvironment::Identical { .. } => (1u64, 1u64),
        MachineEnvironment::Uniform { speeds } => (speeds[0], speeds[1]),
        MachineEnvironment::Unrelated { .. } => {
            return Err(OracleError::WrongEnvironment { got: "R" })
        }
    };
    let g = inst.graph();
    let bp = bipartition(g).map_err(|_| OracleError::NotBipartite)?;
    let comps = Components::of(g);
    let total: u64 = inst.total_processing();

    // Per-component weight pair (left-side weight, right-side weight).
    let pairs: Vec<(u64, u64)> = comps
        .iter()
        .map(|members| {
            let mut a = 0u64;
            let mut b = 0u64;
            for &v in members {
                match bp.side(v) {
                    Side::Left => a += inst.processing(v),
                    Side::Right => b += inst.processing(v),
                }
            }
            (a, b)
        })
        .collect();

    // Layered subset-sum over "load on machine 1".
    let cap = total as usize + 1;
    let mut layers: Vec<BitSet> = Vec::with_capacity(pairs.len() + 1);
    let mut dp = BitSet::new(cap);
    dp.set(0);
    layers.push(dp.clone());
    for &(a, b) in &pairs {
        let prev = dp;
        let mut next = BitSet::new(cap);
        next.or_shifted(&prev, a as usize);
        next.or_shifted(&prev, b as usize);
        dp = next;
        layers.push(dp.clone());
    }

    // Pick the achievable split minimizing max(x/s1, (total-x)/s2).
    let best_x = dp
        .ones()
        .min_by_key(|&x| Rat::new(x as u64, s1).max(Rat::new(total - x as u64, s2)))
        .expect("0 is always achievable");
    let makespan = Rat::new(best_x as u64, s1).max(Rat::new(total - best_x as u64, s2));

    // Reconstruct per-component choices by walking the layers backwards.
    let mut assignment = vec![0u32; inst.num_jobs()];
    let mut x = best_x;
    for (k, &(a, b)) in pairs.iter().enumerate().rev() {
        let take_a = x >= a as usize && layers[k].get(x - a as usize);
        let (m_left, m_right) = if take_a { (0u32, 1u32) } else { (1u32, 0u32) };
        for &v in comps.members(k as u32) {
            assignment[v as usize] = match bp.side(v) {
                Side::Left => m_left,
                Side::Right => m_right,
            };
        }
        x -= if take_a { a as usize } else { b as usize };
    }
    debug_assert_eq!(x, 0);
    let schedule = Schedule::new(assignment);
    debug_assert!(schedule.validate(inst).is_ok());
    debug_assert_eq!(schedule.makespan(inst), makespan);
    Ok(Optimum { schedule, makespan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::brute_force;
    use bisched_graph::{gilbert_bipartite, Graph};
    use bisched_model::JobSizes;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_graph_is_plain_partition() {
        let inst = Instance::uniform(vec![1, 1], vec![3, 3, 2, 2], Graph::empty(4)).unwrap();
        let opt = q2_bipartite_exact(&inst).unwrap();
        assert_eq!(opt.makespan, Rat::integer(5));
    }

    #[test]
    fn single_edge_forces_split() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let inst = Instance::uniform(vec![2, 1], vec![6, 6], g).unwrap();
        // Jobs must split; best: either on fast (6/2=3) + slow (6/1=6) -> 6.
        let opt = q2_bipartite_exact(&inst).unwrap();
        assert_eq!(opt.makespan, Rat::integer(6));
        assert!(opt.schedule.validate(&inst).is_ok());
    }

    #[test]
    fn unit_jobs_theorem4_route() {
        // C8 cycle, unit jobs, speeds 3 and 1: split must be 4/4;
        // makespan = max(4/3, 4) = 4.
        let inst = Instance::uniform(vec![3, 1], vec![1; 8], Graph::cycle(8)).unwrap();
        let opt = q2_bipartite_exact(&inst).unwrap();
        assert_eq!(opt.makespan, Rat::integer(4));
        // Isolated vertices relax the split: 8 isolated + C4 on speeds 3,1.
        let (g, _) = Graph::cycle(4).disjoint_union(&Graph::empty(8));
        let inst2 = Instance::uniform(vec![3, 1], vec![1; 12], g).unwrap();
        // Best split: 9 on fast (9/3 = 3), 3 on slow (3/1 = 3).
        let opt2 = q2_bipartite_exact(&inst2).unwrap();
        assert_eq!(opt2.makespan, Rat::integer(3));
    }

    #[test]
    fn matches_bruteforce_randomized() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..40 {
            let n = rng.gen_range(2..=9);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.5, &mut rng);
            let p = JobSizes::Uniform { lo: 1, hi: 8 }.sample(n, &mut rng);
            let s1 = rng.gen_range(1..=4);
            let s2 = rng.gen_range(1..=s1);
            let inst = Instance::uniform(vec![s1, s2], p, g).unwrap();
            let fast = q2_bipartite_exact(&inst).unwrap();
            let slow = brute_force(&inst).unwrap();
            assert_eq!(
                fast.makespan,
                slow.makespan,
                "mismatch on {} (n={n}, s=({s1},{s2}))",
                inst.describe()
            );
            assert!(fast.schedule.validate(&inst).is_ok());
        }
    }

    #[test]
    fn identical_machines_accepted() {
        let g = Graph::path(5);
        let inst = Instance::identical(2, vec![2, 4, 2, 4, 2], g).unwrap();
        let opt = q2_bipartite_exact(&inst).unwrap();
        let bf = brute_force(&inst).unwrap();
        assert_eq!(opt.makespan, bf.makespan);
    }

    #[test]
    fn errors_are_reported() {
        let inst3 = Instance::uniform(vec![1, 1, 1], vec![1, 1], Graph::empty(2)).unwrap();
        assert_eq!(
            q2_bipartite_exact(&inst3).unwrap_err(),
            OracleError::NotTwoMachines { got: 3 }
        );
        let odd = Instance::identical(2, vec![1; 5], Graph::cycle(5)).unwrap();
        assert_eq!(
            q2_bipartite_exact(&odd).unwrap_err(),
            OracleError::NotBipartite
        );
        let r = Instance::unrelated(vec![vec![1], vec![1]], Graph::empty(1)).unwrap();
        assert_eq!(
            q2_bipartite_exact(&r).unwrap_err(),
            OracleError::WrongEnvironment { got: "R" }
        );
    }

    #[test]
    fn heavy_component_drives_split() {
        // One heavy star and several unit singletons.
        let mut b = bisched_graph::GraphBuilder::new(1);
        let leaves = b.add_vertices(3);
        for l in leaves..leaves + 3 {
            b.add_edge(0, l);
        }
        b.add_vertices(4); // isolated unit jobs
        let g = b.build();
        let p = vec![20, 5, 5, 5, 1, 1, 1, 1];
        let inst = Instance::uniform(vec![2, 1], p, g).unwrap();
        let opt = q2_bipartite_exact(&inst).unwrap();
        let bf = brute_force(&inst).unwrap();
        assert_eq!(opt.makespan, bf.makespan);
    }
}
