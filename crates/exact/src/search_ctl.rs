//! Shared search control for racing engines: a cooperative cancellation
//! flag plus a cross-engine incumbent makespan bound.
//!
//! One [`SearchCtl`] is shared by every engine of a portfolio race. Each
//! budgeted search (branch and bound, the CP propagation solver) polls
//! [`SearchCtl::cancelled`] at its existing budget-check cadence and
//! publishes every incumbent improvement with
//! [`SearchCtl::publish_makespan`]; foreign bounds then feed its pruning
//! via [`SearchCtl::foreign_bound`] / [`SearchCtl::prunes`].
//!
//! ## Why an `f64`-bits bound stays exact
//!
//! The bound lives in an `AtomicU64` holding the bit pattern of a
//! nonnegative `f64` (for nonnegative floats the bit order equals the
//! numeric order, so `fetch_min` is a lock-free running minimum).
//! Publishing rounds the exact rational makespan **up**
//! ([`rat_to_f64_up`]) and pruning compares a lower bound rounded
//! **down** ([`rat_to_f64_down`]), so:
//!
//! * the published value is always ≥ some engine's true achieved
//!   makespan, which is ≥ the race winner's makespan `W`;
//! * a subtree is pruned only when its exact lower bound ≥ that value,
//!   i.e. only when it cannot beat `W`.
//!
//! Hence a search that completes under foreign-bound pruning still
//! proves "nothing strictly better than `W` exists", which is exactly
//! the claim the race's `Optimal` guarantee makes — the (at most a few
//! ULP) slack of the float encoding only ever makes pruning *less*
//! aggressive, never unsound.

use bisched_model::Rat;
// The concurrency facade: std atomics in normal builds, the
// model-checked shims under `--cfg bisched_model` (the race-control
// protocol here is explored exhaustively by crates/analyze's
// `model_search_ctl` suite).
use bisched_obs::sync::{AtomicBool, AtomicU64, Ordering};

/// Converts `r` to an `f64` guaranteed `>=` the exact rational value.
pub fn rat_to_f64_up(r: &Rat) -> f64 {
    // `as f64` rounds to nearest (≤ half ULP off in either direction);
    // one `next_up`/`next_down` step makes each conversion one-sided,
    // and a final `next_up` absorbs the division's own rounding.
    ((r.num() as f64).next_up() / (r.den() as f64).next_down()).next_up()
}

/// Converts `r` to an `f64` guaranteed `<=` the exact rational value.
pub fn rat_to_f64_down(r: &Rat) -> f64 {
    ((r.num() as f64).next_down() / (r.den() as f64).next_up())
        .next_down()
        .max(0.0)
}

/// Cooperative controls shared by the engines of one portfolio race.
#[derive(Debug)]
pub struct SearchCtl {
    cancel: AtomicBool,
    /// Bit pattern of the best published makespan (rounded up); starts
    /// at `+inf`.
    bound: AtomicU64,
}

impl Default for SearchCtl {
    fn default() -> Self {
        SearchCtl {
            cancel: AtomicBool::new(false),
            bound: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }
}

impl SearchCtl {
    /// A fresh control: not cancelled, no published bound.
    pub fn new() -> Self {
        SearchCtl::default()
    }

    /// Requests cancellation of every search sharing this control.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Publishes an achieved makespan: the shared bound becomes the
    /// minimum of itself and `mk` rounded up to the next representable
    /// `f64`.
    pub fn publish_makespan(&self, mk: &Rat) {
        // Nonnegative f64 bit patterns are ordered like the values, so
        // fetch_min on the bits is a running minimum on the floats.
        self.bound
            .fetch_min(rat_to_f64_up(mk).to_bits(), Ordering::Relaxed);
    }

    /// The best published makespan, rounded up (`+inf` when none yet).
    pub fn foreign_bound(&self) -> f64 {
        f64::from_bits(self.bound.load(Ordering::Relaxed))
    }

    /// Whether a subtree with exact lower bound `lb` cannot beat the
    /// best published makespan (conservative: never prunes a subtree
    /// that could still improve on it).
    pub fn prunes(&self, lb: &Rat) -> bool {
        rat_to_f64_down(lb) >= self.foreign_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_rounding_brackets_the_exact_value() {
        for (num, den) in [
            (0, 1),
            (1, 1),
            (7, 2),
            (10, 3),
            (u64::MAX, 1),
            (u64::MAX, 3),
            (1, u64::MAX),
        ] {
            let r = Rat::new(num, den);
            let up = rat_to_f64_up(&r);
            let down = rat_to_f64_down(&r);
            let mid = num as f64 / den as f64;
            assert!(down <= mid && mid <= up, "{num}/{den}: {down} {mid} {up}");
            assert!(down >= 0.0);
        }
    }

    #[test]
    fn bound_is_a_running_minimum_and_pruning_is_conservative() {
        let ctl = SearchCtl::new();
        assert!(!ctl.cancelled());
        assert_eq!(ctl.foreign_bound(), f64::INFINITY);
        // Nothing prunes against an empty bound.
        assert!(!ctl.prunes(&Rat::new(u64::MAX, 1)));

        ctl.publish_makespan(&Rat::new(10, 1));
        ctl.publish_makespan(&Rat::new(7, 2)); // 3.5, the new minimum
        ctl.publish_makespan(&Rat::new(5, 1)); // worse: ignored
        let b = ctl.foreign_bound();
        assert!((3.5..3.5001).contains(&b), "bound = {b}");

        // lb strictly above the bound prunes; lb strictly below survives.
        assert!(ctl.prunes(&Rat::new(4, 1)));
        assert!(!ctl.prunes(&Rat::new(3, 1)));

        ctl.cancel();
        assert!(ctl.cancelled());
    }
}
