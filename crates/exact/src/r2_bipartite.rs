//! Exact pseudo-polynomial solver for `R2 | G = bipartite | C_max`.
//!
//! The two-machine structure is the same as in the `Q2` oracle — per
//! connected component the 2-coloring is fixed up to a swap — but on
//! unrelated machines the two orientations contribute *different* sums:
//! either `(Σ_{j∈L} p_{1,j}, Σ_{j∈R} p_{2,j})` or the crossed pair. The DP
//! tracks, for every achievable load on `M_1`, the minimum possible load on
//! `M_2`, and minimizes `max(load_1, load_2)` at the end. This is the
//! ground-truth oracle for Algorithm 4's 2-approximation and Algorithm 5's
//! FPTAS experiments.

use crate::bruteforce::Optimum;
use crate::q2_bipartite::OracleError;
use bisched_graph::{bipartition, Components, Side};
use bisched_model::{Instance, MachineEnvironment, Rat, Schedule};

const UNREACH: u64 = u64::MAX;

/// Exact optimum for `R2 | G = bipartite | C_max`.
pub fn r2_bipartite_exact(inst: &Instance) -> Result<Optimum, OracleError> {
    if inst.num_machines() != 2 {
        return Err(OracleError::NotTwoMachines {
            got: inst.num_machines(),
        });
    }
    let times = match inst.env() {
        MachineEnvironment::Unrelated { times } => times,
        env => {
            return Err(OracleError::WrongEnvironment { got: env.alpha() });
        }
    };
    let g = inst.graph();
    let bp = bipartition(g).map_err(|_| OracleError::NotBipartite)?;
    let comps = Components::of(g);

    // Per component: the two (load1, load2) contributions.
    // Option A = left part on M1, right part on M2; option B = crossed.
    struct Choice {
        a: (u64, u64),
        b: (u64, u64),
    }
    let choices: Vec<Choice> = comps
        .iter()
        .map(|members| {
            let (mut l1, mut l2, mut r1, mut r2) = (0u64, 0u64, 0u64, 0u64);
            for &v in members {
                let p1 = times[0][v as usize];
                let p2 = times[1][v as usize];
                match bp.side(v) {
                    Side::Left => {
                        l1 += p1;
                        l2 += p2;
                    }
                    Side::Right => {
                        r1 += p1;
                        r2 += p2;
                    }
                }
            }
            Choice {
                a: (l1, r2),
                b: (r1, l2),
            }
        })
        .collect();

    let cap1: usize = times[0].iter().sum::<u64>() as usize + 1;
    // layers[k][x] = minimum load2 achievable with load1 = x after the
    // first k components (UNREACH if impossible).
    let mut layers: Vec<Vec<u64>> = Vec::with_capacity(choices.len() + 1);
    let mut dp = vec![UNREACH; cap1];
    dp[0] = 0;
    layers.push(dp.clone());
    for ch in &choices {
        let mut next = vec![UNREACH; cap1];
        for (x, &l2) in dp.iter().enumerate() {
            if l2 == UNREACH {
                continue;
            }
            for &(d1, d2) in [&ch.a, &ch.b] {
                let nx = x + d1 as usize;
                if nx < cap1 {
                    next[nx] = next[nx].min(l2 + d2);
                }
            }
        }
        dp = next;
        layers.push(dp.clone());
    }

    let (best_x, &best_l2) = dp
        .iter()
        .enumerate()
        .filter(|(_, &l2)| l2 != UNREACH)
        .min_by_key(|&(x, &l2)| (x as u64).max(l2))
        .expect("the all-A assignment is always achievable");
    let makespan = Rat::integer((best_x as u64).max(best_l2));

    // Reconstruct component orientations backwards.
    let mut assignment = vec![0u32; inst.num_jobs()];
    let mut x = best_x;
    let mut l2 = best_l2;
    for (k, ch) in choices.iter().enumerate().rev() {
        let prev = &layers[k];
        let take_a =
            x >= ch.a.0 as usize && l2 >= ch.a.1 && prev[x - ch.a.0 as usize] == l2 - ch.a.1;
        let (d, m_left, m_right) = if take_a {
            (ch.a, 0u32, 1u32)
        } else {
            debug_assert!(
                x >= ch.b.0 as usize && l2 >= ch.b.1 && prev[x - ch.b.0 as usize] == l2 - ch.b.1,
                "one of the two choices must be consistent"
            );
            (ch.b, 1u32, 0u32)
        };
        for &v in comps.members(k as u32) {
            assignment[v as usize] = match bp.side(v) {
                Side::Left => m_left,
                Side::Right => m_right,
            };
        }
        x -= d.0 as usize;
        l2 -= d.1;
    }
    let schedule = Schedule::new(assignment);
    debug_assert!(schedule.validate(inst).is_ok());
    debug_assert_eq!(schedule.makespan(inst), makespan);
    Ok(Optimum { schedule, makespan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::brute_force;
    use bisched_graph::{gilbert_bipartite, Graph};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_graph_min_assignment() {
        // Every job cheap on exactly one machine.
        let inst =
            Instance::unrelated(vec![vec![1, 9, 1], vec![9, 1, 9]], Graph::empty(3)).unwrap();
        let opt = r2_bipartite_exact(&inst).unwrap();
        assert_eq!(opt.makespan, Rat::integer(2));
    }

    #[test]
    fn crossed_orientation_can_win() {
        // Component {0-1}: A = (p10, p21) = (10, 10); B = (p11, p20) = (1, 1).
        let inst = Instance::unrelated(
            vec![vec![10, 1], vec![1, 10]],
            Graph::from_edges(2, &[(0, 1)]),
        )
        .unwrap();
        let opt = r2_bipartite_exact(&inst).unwrap();
        assert_eq!(opt.makespan, Rat::integer(1));
        // Job 0 on machine 1, job 1 on machine 0.
        assert_eq!(opt.schedule.machine_of(0), 1);
        assert_eq!(opt.schedule.machine_of(1), 0);
    }

    #[test]
    fn matches_bruteforce_randomized() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let n: usize = rng.gen_range(2..=9);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.5, &mut rng);
            let times: Vec<Vec<u64>> = (0..2)
                .map(|_| (0..n).map(|_| rng.gen_range(1..=12)).collect())
                .collect();
            let inst = Instance::unrelated(times, g).unwrap();
            let fast = r2_bipartite_exact(&inst).unwrap();
            let slow = brute_force(&inst).unwrap();
            assert_eq!(fast.makespan, slow.makespan, "n={n}");
            assert!(fast.schedule.validate(&inst).is_ok());
        }
    }

    #[test]
    fn rejects_wrong_shapes() {
        let q = Instance::uniform(vec![1, 1], vec![1], Graph::empty(1)).unwrap();
        assert_eq!(
            r2_bipartite_exact(&q).unwrap_err(),
            OracleError::WrongEnvironment { got: "Q" }
        );
        let r3 = Instance::unrelated(vec![vec![1], vec![1], vec![1]], Graph::empty(1)).unwrap();
        assert_eq!(
            r2_bipartite_exact(&r3).unwrap_err(),
            OracleError::NotTwoMachines { got: 3 }
        );
        let odd = Instance::unrelated(vec![vec![1; 5], vec![1; 5]], Graph::cycle(5)).unwrap();
        assert_eq!(
            r2_bipartite_exact(&odd).unwrap_err(),
            OracleError::NotBipartite
        );
    }

    #[test]
    fn multi_component_interplay() {
        // Two components whose best orientations compete for machine 1.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let inst = Instance::unrelated(vec![vec![5, 9, 5, 9], vec![9, 5, 9, 5]], g).unwrap();
        // Best: component {0,1} as (0->M1, 1->M2): loads (5, 5);
        // component {2,3} likewise: total (10, 10) -> makespan 10.
        let opt = r2_bipartite_exact(&inst).unwrap();
        let bf = brute_force(&inst).unwrap();
        assert_eq!(opt.makespan, bf.makespan);
        assert_eq!(opt.makespan, Rat::integer(10));
    }
}
