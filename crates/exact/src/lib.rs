//! # bisched-exact
//!
//! Exact solvers and NP-hard oracles for the `bisched` workspace:
//!
//! * [`bruteforce`] — exhaustive ground truth for tiny instances;
//! * [`branch_bound`] — pruned exact B&B oracle for `{P,Q,R} | G | C_max`
//!   at small-but-not-tiny sizes (conflict bitmasks, symmetry breaking,
//!   node + wall-clock budgets), plus a graph-aware greedy incumbent;
//! * [`lower_bounds`] — the incremental graph-aware bounds the oracle
//!   prunes with;
//! * [`q2_bipartite`] — pseudo-polynomial exact `Q2 | G = bipartite | C_max`
//!   (the direct route to Theorem 4);
//! * [`r2_bipartite`] — pseudo-polynomial exact `R2 | G = bipartite | C_max`
//!   (the oracle behind the Algorithm 4/5 experiments);
//! * [`precolor`] — the 1-PrExt decider (Definition 2) with YES/NO instance
//!   constructors for the Theorem 8/24 reduction experiments;
//! * [`complete_bipartite`] — the exact polynomial algorithm for
//!   `Q | G = complete bipartite, p_j = 1 | C_max` of the related work [24];
//! * [`bitset`] — the packed subset-sum kernel;
//! * [`search_ctl`] — shared cancellation + cross-engine incumbent bound
//!   for portfolio races.

#![warn(missing_docs)]
// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
pub mod bitset;
pub mod branch_bound;
pub mod bruteforce;
pub mod complete_bipartite;
pub mod lower_bounds;
pub mod precolor;
pub mod q2_bipartite;
pub mod r2_bipartite;
pub mod search_ctl;

pub use bitset::BitSet;
pub use branch_bound::{
    branch_and_bound, branch_and_bound_ctl, branch_and_bound_with, greedy_incumbent, BnbLimits,
    BnbOutcome,
};
pub use bruteforce::{brute_force, Optimum};
pub use complete_bipartite::{q_complete_bipartite_unit, CompleteBipartiteError};
pub use lower_bounds::IncrementalBounds;
pub use precolor::{
    claw_no_instance, is_proper_coloring, path_yes_instance, precoloring_extension, standard_pins,
};
pub use q2_bipartite::{q2_bipartite_exact, OracleError};
pub use r2_bipartite::r2_bipartite_exact;
pub use search_ctl::SearchCtl;
