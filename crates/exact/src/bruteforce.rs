//! Exhaustive optimal solver for tiny instances.
//!
//! Enumerates all `m^n` assignments with incremental feasibility and a
//! current-best cut. This is the ground truth the branch-and-bound solver
//! and every approximation ratio in the test suite are checked against;
//! it is deliberately a *different* code path from the smarter solvers.

use bisched_model::{Instance, MachineEnvironment, MachineId, Rat, Schedule};

/// The optimum of an instance: schedule and makespan.
#[derive(Clone, Debug)]
pub struct Optimum {
    /// An optimal schedule.
    pub schedule: Schedule,
    /// Its makespan `C*_max`.
    pub makespan: Rat,
}

/// Exhaustively finds an optimal schedule, or `None` if no feasible
/// schedule exists (possible only when `m` is smaller than the chromatic
/// number of `G`, e.g. one machine and any edge).
///
/// Panics if `m^n` exceeds ~10^8 nodes — use the branch-and-bound solver
/// for anything larger.
pub fn brute_force(inst: &Instance) -> Option<Optimum> {
    let n = inst.num_jobs();
    let m = inst.num_machines();
    assert!(
        (m as f64).powi(n as i32) <= 1e8,
        "brute force limited to m^n <= 1e8 (got {m}^{n})"
    );
    let mut assignment: Vec<MachineId> = vec![0; n];
    let mut loads: Vec<u64> = vec![0; m];
    let mut best: Option<Optimum> = None;
    recurse(inst, 0, &mut assignment, &mut loads, &mut best);
    best
}

fn machine_makespan(inst: &Instance, loads: &[u64]) -> Rat {
    match inst.env() {
        MachineEnvironment::Uniform { speeds } => loads
            .iter()
            .zip(speeds)
            .map(|(&l, &s)| Rat::new(l, s))
            .max()
            .unwrap_or(Rat::ZERO),
        _ => Rat::integer(loads.iter().copied().max().unwrap_or(0)),
    }
}

fn recurse(
    inst: &Instance,
    j: usize,
    assignment: &mut Vec<MachineId>,
    loads: &mut Vec<u64>,
    best: &mut Option<Optimum>,
) {
    let n = inst.num_jobs();
    if j == n {
        let mk = machine_makespan(inst, loads);
        let better = best.as_ref().is_none_or(|b| mk < b.makespan);
        if better {
            *best = Some(Optimum {
                schedule: Schedule::new(assignment.clone()),
                makespan: mk,
            });
        }
        return;
    }
    let graph = inst.graph();
    for i in 0..inst.num_machines() as MachineId {
        // Feasibility: no already-placed neighbor of j on machine i.
        let conflict = graph
            .neighbors(j as u32)
            .iter()
            .any(|&u| (u as usize) < j && assignment[u as usize] == i);
        if conflict {
            continue;
        }
        let p = match inst.env() {
            MachineEnvironment::Unrelated { times } => times[i as usize][j],
            _ => inst.processing(j as u32),
        };
        loads[i as usize] += p;
        // Cut: partial makespan only grows.
        let partial = machine_makespan(inst, loads);
        if best.as_ref().is_none_or(|b| partial < b.makespan) {
            assignment[j] = i;
            recurse(inst, j + 1, assignment, loads, best);
        }
        loads[i as usize] -= p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_graph::Graph;

    #[test]
    fn no_graph_two_identical_machines_partitions() {
        // {3, 3, 2, 2}: optimal split 5/5.
        let inst = Instance::identical(2, vec![3, 3, 2, 2], Graph::empty(4)).unwrap();
        let opt = brute_force(&inst).unwrap();
        assert_eq!(opt.makespan, Rat::integer(5));
        assert!(opt.schedule.validate(&inst).is_ok());
    }

    #[test]
    fn graph_forces_worse_makespan() {
        // Two big jobs connected: they cannot share a machine.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let inst = Instance::identical(2, vec![10, 10], g).unwrap();
        let opt = brute_force(&inst).unwrap();
        assert_eq!(opt.makespan, Rat::integer(10));
        // Without the edge they'd still be split, but with 3 jobs:
        let g2 = Graph::from_edges(3, &[(0, 1), (0, 2)]);
        let inst2 = Instance::identical(2, vec![4, 3, 3], g2).unwrap();
        // 0 alone (4), 1+2 together (6) -> makespan 6.
        let opt2 = brute_force(&inst2).unwrap();
        assert_eq!(opt2.makespan, Rat::integer(6));
    }

    #[test]
    fn uniform_speeds_exact_rational() {
        // speeds 2 and 1; jobs 3,3,3 no edges. Best: two jobs on fast
        // (load 6 -> time 3), one on slow (3) -> C = 3.
        let inst = Instance::uniform(vec![2, 1], vec![3, 3, 3], Graph::empty(3)).unwrap();
        let opt = brute_force(&inst).unwrap();
        assert_eq!(opt.makespan, Rat::integer(3));
    }

    #[test]
    fn unrelated_matrix_respected() {
        let inst = Instance::unrelated(
            vec![vec![1, 100, 100], vec![100, 1, 100], vec![100, 100, 1]],
            Graph::empty(3),
        )
        .unwrap();
        let opt = brute_force(&inst).unwrap();
        assert_eq!(opt.makespan, Rat::integer(1));
    }

    #[test]
    fn infeasible_when_one_machine_and_an_edge() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let inst = Instance::identical(1, vec![1, 1], g).unwrap();
        assert!(brute_force(&inst).is_none());
    }

    #[test]
    fn odd_cycle_needs_three_machines() {
        let g = Graph::cycle(5);
        let inst2 = Instance::identical(2, vec![1; 5], g.clone()).unwrap();
        assert!(brute_force(&inst2).is_none());
        let inst3 = Instance::identical(3, vec![1; 5], g).unwrap();
        let opt = brute_force(&inst3).unwrap();
        assert_eq!(opt.makespan, Rat::integer(2));
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::identical(2, vec![], Graph::empty(0)).unwrap();
        let opt = brute_force(&inst).unwrap();
        assert_eq!(opt.makespan, Rat::ZERO);
    }
}
