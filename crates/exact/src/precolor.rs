//! 1-PrExt: precoloring extension (Definition 2 / Theorem 3).
//!
//! Given a graph, `k ≥ 3` colors, and `k` precolored vertices
//! `f(v_1) = c_1, …, f(v_k) = c_k`, decide whether the precoloring extends
//! to a proper `k`-coloring. For bipartite graphs and `k = 3` the problem is
//! NP-complete [Bodlaender–Jansen–Woeginger]; it is the source problem of
//! both inapproximability reductions (Theorems 8 and 24), so this exact
//! decider is what lets the experiment harness *verify* the reductions
//! end-to-end: solve 1-PrExt directly, solve the produced scheduling
//! instance with the oracle, and confirm the YES/NO gap.
//!
//! The solver is propagation + MRV backtracking — exponential worst case,
//! entirely adequate at gadget-validation sizes.

use bisched_graph::{Graph, GraphBuilder, Vertex};

/// Checks that `colors` is a proper coloring of `g` (no monochromatic edge).
pub fn is_proper_coloring(g: &Graph, colors: &[u8]) -> bool {
    colors.len() == g.num_vertices()
        && g.edges()
            .all(|(u, v)| colors[u as usize] != colors[v as usize])
}

/// Decides 1-PrExt: is there a proper `num_colors`-coloring of `g`
/// extending the `precolored` pins? Returns a witness coloring if so.
pub fn precoloring_extension(
    g: &Graph,
    precolored: &[(Vertex, u8)],
    num_colors: u8,
) -> Option<Vec<u8>> {
    assert!((1..=16).contains(&num_colors));
    let n = g.num_vertices();
    let full: u16 = if num_colors == 16 {
        u16::MAX
    } else {
        (1u16 << num_colors) - 1
    };
    let mut domains = vec![full; n];
    for &(v, c) in precolored {
        assert!(c < num_colors, "precolor {c} out of range");
        let mask = 1u16 << c;
        if domains[v as usize] & mask == 0 {
            return None; // two pins conflict on the same vertex
        }
        domains[v as usize] = mask;
    }
    // Initial propagation from all pinned vertices.
    let mut queue: Vec<Vertex> = precolored.iter().map(|&(v, _)| v).collect();
    if !propagate(g, &mut domains, &mut queue) {
        return None;
    }
    let mut solution = vec![u8::MAX; n];
    if search(g, &mut domains) {
        for (v, d) in domains.iter().enumerate() {
            solution[v] = d.trailing_zeros() as u8;
        }
        debug_assert!(is_proper_coloring(g, &solution));
        Some(solution)
    } else {
        None
    }
}

/// Unit-propagates singleton domains; `false` on a wipe-out.
fn propagate(g: &Graph, domains: &mut [u16], queue: &mut Vec<Vertex>) -> bool {
    while let Some(v) = queue.pop() {
        let mask = domains[v as usize];
        debug_assert_eq!(mask.count_ones(), 1);
        for &u in g.neighbors(v) {
            let old = domains[u as usize];
            if old & mask != 0 {
                let new = old & !mask;
                if new == 0 {
                    return false;
                }
                domains[u as usize] = new;
                if new.count_ones() == 1 {
                    queue.push(u);
                }
            }
        }
    }
    true
}

/// MRV backtracking over the remaining multi-valued domains.
fn search(g: &Graph, domains: &mut [u16]) -> bool {
    // Most-constrained vertex among those not yet fixed.
    let pick = domains
        .iter()
        .enumerate()
        .filter(|(_, d)| d.count_ones() > 1)
        .min_by_key(|(_, d)| d.count_ones());
    let (v, dom) = match pick {
        None => return true, // all singletons; propagation kept it proper
        Some((v, &d)) => (v, d),
    };
    let mut rest = dom;
    while rest != 0 {
        let c = rest.trailing_zeros();
        rest &= rest - 1;
        let mut trial = domains.to_vec();
        trial[v] = 1u16 << c;
        let mut queue = vec![v as Vertex];
        if propagate(g, &mut trial, &mut queue) && search(g, &mut trial) {
            domains.copy_from_slice(&trial);
            return true;
        }
    }
    false
}

/// A guaranteed-NO 1-PrExt instance for 3 colors: a claw `K_{1,3}` whose
/// three leaves are the precolored vertices (the center would need a fourth
/// color), padded with `padding` isolated vertices. Bipartite by
/// construction. Returns `(graph, [v1, v2, v3])`.
pub fn claw_no_instance(padding: usize) -> (Graph, [Vertex; 3]) {
    let mut b = GraphBuilder::new(4 + padding);
    // center 0; leaves 1, 2, 3.
    for leaf in 1..=3 {
        b.add_edge(0, leaf);
    }
    (b.build(), [1, 2, 3])
}

/// A guaranteed-YES 1-PrExt instance: plants a proper 3-coloring on a
/// random-ish bipartite-compatible structure. Builds an even path
/// `v1 - u_1 - v2 - u_2 - v3` plus `padding` isolated vertices, which always
/// extends. Returns `(graph, [v1, v2, v3])`.
pub fn path_yes_instance(padding: usize) -> (Graph, [Vertex; 3]) {
    let mut b = GraphBuilder::new(5 + padding);
    // v1=0, bridge=1, v2=2, bridge=3, v3=4
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 3);
    b.add_edge(3, 4);
    (b.build(), [0, 2, 4])
}

/// Standard pinning for Theorem 8/24 experiments: `v_i` gets color `i-1`.
pub fn standard_pins(vs: &[Vertex; 3]) -> Vec<(Vertex, u8)> {
    vec![(vs[0], 0), (vs[1], 1), (vs[2], 2)]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive reference decider.
    fn brute(g: &Graph, precolored: &[(Vertex, u8)], k: u8) -> bool {
        let n = g.num_vertices();
        assert!(n <= 10);
        let total = (k as u64).pow(n as u32);
        'outer: for code in 0..total {
            let mut colors = vec![0u8; n];
            let mut c = code;
            for slot in colors.iter_mut() {
                *slot = (c % k as u64) as u8;
                c /= k as u64;
            }
            for &(v, pc) in precolored {
                if colors[v as usize] != pc {
                    continue 'outer;
                }
            }
            if is_proper_coloring(g, &colors) {
                return true;
            }
        }
        false
    }

    #[test]
    fn claw_is_no_for_three_colors() {
        let (g, vs) = claw_no_instance(0);
        let pins = standard_pins(&vs);
        assert!(precoloring_extension(&g, &pins, 3).is_none());
        assert!(!brute(&g, &pins, 3));
        // With a 4th color it becomes YES.
        assert!(precoloring_extension(&g, &pins, 4).is_some());
    }

    #[test]
    fn path_is_yes_for_three_colors() {
        let (g, vs) = path_yes_instance(2);
        let pins = standard_pins(&vs);
        let coloring = precoloring_extension(&g, &pins, 3).expect("paths extend");
        assert!(is_proper_coloring(&g, &coloring));
        for &(v, c) in &pins {
            assert_eq!(coloring[v as usize], c);
        }
    }

    #[test]
    fn conflicting_pins_on_same_vertex() {
        let g = Graph::empty(2);
        assert!(precoloring_extension(&g, &[(0, 0), (0, 1)], 3).is_none());
    }

    #[test]
    fn adjacent_pins_same_color() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        assert!(precoloring_extension(&g, &[(0, 0), (1, 0)], 3).is_none());
        assert!(precoloring_extension(&g, &[(0, 0), (1, 1)], 3).is_some());
    }

    #[test]
    fn matches_bruteforce_on_small_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..60 {
            let n = rng.gen_range(3..=8);
            // random graph, not necessarily bipartite — decider is general
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in u + 1..n as u32 {
                    if rng.gen_bool(0.35) {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges);
            let pins: Vec<(Vertex, u8)> = (0..3.min(n))
                .map(|i| (i as Vertex, rng.gen_range(0..3)))
                .collect();
            let got = precoloring_extension(&g, &pins, 3).is_some();
            let want = brute(&g, &pins, 3);
            assert_eq!(got, want, "n={n}, edges={edges:?}, pins={pins:?}");
        }
    }

    #[test]
    fn witness_respects_pins() {
        let g = Graph::cycle(6);
        let pins = vec![(0u32, 2u8), (3u32, 2u8)];
        let col = precoloring_extension(&g, &pins, 3).unwrap();
        assert_eq!(col[0], 2);
        assert_eq!(col[3], 2);
        assert!(is_proper_coloring(&g, &col));
    }

    #[test]
    fn even_cycle_two_colors() {
        let g = Graph::cycle(8);
        assert!(precoloring_extension(&g, &[(0, 0)], 2).is_some());
        // Odd cycles need 3.
        let g5 = Graph::cycle(5);
        assert!(precoloring_extension(&g5, &[], 2).is_none());
        assert!(precoloring_extension(&g5, &[], 3).is_some());
    }
}
