//! Property tests for the model substrate: exact rational arithmetic,
//! serialization roundtrips, bound monotonicity, list-scheduling safety.

use bisched_graph::Graph;
use bisched_model::{
    assign_min_completion_uniform, capacity_lower_bound, floor_capacities, from_text, gcd,
    lpt_order, min_time_to_cover, to_text, Instance, InstanceData, Rat, Schedule,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rat_ordering_is_total_and_consistent(
        (a, b, c, d, e, f) in (1u64..1000, 1u64..1000, 1u64..1000, 1u64..1000, 1u64..1000, 1u64..1000)
    ) {
        let x = Rat::new(a, b);
        let y = Rat::new(c, d);
        let z = Rat::new(e, f);
        // Antisymmetry via exact values.
        prop_assert_eq!(x == y, a * d == c * b);
        // Transitivity (sampled).
        if x <= y && y <= z {
            prop_assert!(x <= z);
        }
        // Cross-check against f64 when far from ties.
        let fx = a as f64 / b as f64;
        let fy = c as f64 / d as f64;
        if (fx - fy).abs() > 1e-6 {
            prop_assert_eq!(x < y, fx < fy);
        }
    }

    #[test]
    fn rat_arithmetic_laws((a, b, c, d) in (0u64..500, 1u64..500, 0u64..500, 1u64..500)) {
        let x = Rat::new(a, b);
        let y = Rat::new(c, d);
        // Commutativity.
        prop_assert_eq!(x.add(&y), y.add(&x));
        prop_assert_eq!(x.mul(&y), y.mul(&x));
        // Identity elements.
        prop_assert_eq!(x.add(&Rat::ZERO), x);
        prop_assert_eq!(x.mul(&Rat::integer(1)), x);
        prop_assert_eq!(x.mul_int(0), Rat::ZERO);
        // floor <= value <= ceil, tight within 1.
        prop_assert!(Rat::integer(x.floor()) <= x);
        prop_assert!(x <= Rat::integer(x.ceil()));
        prop_assert!(x.ceil() - x.floor() <= 1);
        // gcd normalization: num/den coprime.
        prop_assert_eq!(gcd(x.num().max(1), x.den()), if x.num() == 0 { x.den() } else { 1 });
    }

    #[test]
    fn min_cover_scales_with_speed(
        speeds in proptest::collection::vec(1u64..30, 1..8),
        demand in 1u64..500,
        factor in 1u64..5,
    ) {
        // Scaling every speed by `factor` divides the cover time exactly.
        let t1 = min_time_to_cover(&speeds, demand);
        let fast: Vec<u64> = speeds.iter().map(|&s| s * factor).collect();
        let t2 = min_time_to_cover(&fast, demand);
        prop_assert_eq!(t2.mul_int(factor), t1);
        // Capacities at the cover time meet the demand exactly enough.
        let caps: u64 = floor_capacities(&speeds, &t1).iter().sum();
        prop_assert!(caps >= demand);
    }

    #[test]
    fn capacity_lb_never_exceeds_any_schedule(
        speeds in proptest::collection::vec(1u64..10, 1..5),
        processing in proptest::collection::vec(1u64..20, 1..10),
        seed in 0u64..1000,
    ) {
        let n = processing.len();
        let inst = Instance::uniform(speeds.clone(), processing.clone(), Graph::empty(n)).unwrap();
        let lb = capacity_lower_bound(&inst.speeds(), &processing);
        // Any assignment whatsoever has makespan >= lb.
        let assignment: Vec<u32> =
            (0..n).map(|j| ((seed + j as u64) % speeds.len() as u64) as u32).collect();
        let s = Schedule::new(assignment);
        prop_assert!(s.makespan(&inst) >= lb);
    }

    #[test]
    fn text_roundtrip_arbitrary_q(
        speeds in proptest::collection::vec(1u64..50, 1..6),
        processing in proptest::collection::vec(1u64..99, 0..12),
        edge_mask in proptest::collection::vec(any::<bool>(), 66),
    ) {
        let n = processing.len();
        let mut edges = Vec::new();
        let mut idx = 0;
        for u in 0..n {
            for v in u + 1..n {
                if idx < edge_mask.len() && edge_mask[idx] {
                    edges.push((u as u32, v as u32));
                }
                idx += 1;
            }
        }
        let inst = Instance::uniform(speeds, processing, Graph::from_edges(n, &edges)).unwrap();
        let back = from_text(&to_text(&inst)).unwrap();
        prop_assert_eq!(back.speeds(), inst.speeds());
        prop_assert_eq!(back.processing_all(), inst.processing_all());
        prop_assert_eq!(back.graph(), inst.graph());
        // And through the serde mirror.
        let data = InstanceData::from_instance(&inst);
        let back2 = data.into_instance().unwrap();
        prop_assert_eq!(back2.graph(), inst.graph());
    }

    #[test]
    fn list_scheduling_conserves_work(
        speeds in proptest::collection::vec(1u64..8, 2..5),
        processing in proptest::collection::vec(1u64..20, 1..15),
    ) {
        let n = processing.len();
        let jobs: Vec<u32> = (0..n as u32).collect();
        let order = lpt_order(&processing, &jobs);
        // LPT order is a permutation sorted by size.
        prop_assert_eq!(order.len(), n);
        for w in order.windows(2) {
            prop_assert!(processing[w[0] as usize] >= processing[w[1] as usize]);
        }
        let group: Vec<u32> = (0..speeds.len() as u32).collect();
        let mut loads = vec![0u64; speeds.len()];
        let mut out = vec![u32::MAX; n];
        assign_min_completion_uniform(&speeds, &processing, &order, &group, &mut loads, &mut out);
        prop_assert_eq!(loads.iter().sum::<u64>(), processing.iter().sum::<u64>());
        prop_assert!(out.iter().all(|&i| (i as usize) < speeds.len()));
    }
}

/// Deterministic Fisher–Yates driven by a splitmix64 stream, so the
/// relabeling proptests need no extra dependencies.
fn shuffled(n: usize, seed: u64) -> Vec<u32> {
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let k = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, k);
    }
    perm
}

/// Builds the edge list selected by `mask` over all pairs of `n` jobs.
fn edges_from_mask(n: usize, mask: &[bool]) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    let mut idx = 0;
    for u in 0..n {
        for v in u + 1..n {
            if idx < mask.len() && mask[idx] {
                edges.push((u as u32, v as u32));
            }
            idx += 1;
        }
    }
    edges
}

/// Applies the job permutation `perm` (new id of old job `j` is
/// `perm[j]`) to an edge list.
fn relabel_edges(edges: &[(u32, u32)], perm: &[u32]) -> Vec<(u32, u32)> {
    edges
        .iter()
        .map(|&(u, v)| (perm[u as usize], perm[v as usize]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn text_roundtrip_arbitrary_p_and_r(
        m in 1usize..5,
        processing in proptest::collection::vec(1u64..50, 1..10),
        edge_mask in proptest::collection::vec(any::<bool>(), 45),
        times_flat in proptest::collection::vec(1u64..60, 40),
    ) {
        let n = processing.len();
        let edges = edges_from_mask(n, &edge_mask);
        let p = Instance::identical(m, processing, Graph::from_edges(n, &edges)).unwrap();
        let back = from_text(&to_text(&p)).unwrap();
        prop_assert_eq!(back.num_machines(), p.num_machines());
        prop_assert_eq!(back.processing_all(), p.processing_all());
        prop_assert_eq!(back.graph(), p.graph());

        let times: Vec<Vec<u64>> = (0..m)
            .map(|i| (0..n).map(|j| times_flat[(i * n + j) % times_flat.len()]).collect())
            .collect();
        let r = Instance::unrelated(times.clone(), Graph::from_edges(n, &edges)).unwrap();
        let back = from_text(&to_text(&r)).unwrap();
        prop_assert_eq!(back.graph(), r.graph());
        for i in 0..m as u32 {
            for j in 0..n as u32 {
                prop_assert_eq!(back.unrelated_time(i, j), r.unrelated_time(i, j));
            }
        }
    }

    #[test]
    fn canonicalize_twice_equals_canonicalize_once(
        kind in 0u8..3,
        m in 1usize..4,
        processing in proptest::collection::vec(1u64..6, 1..10),
        speeds in proptest::collection::vec(1u64..5, 1..4),
        edge_mask in proptest::collection::vec(any::<bool>(), 45),
        times_flat in proptest::collection::vec(1u64..8, 40),
    ) {
        let n = processing.len();
        let g = Graph::from_edges(n, &edges_from_mask(n, &edge_mask));
        let inst = match kind {
            0 => Instance::identical(m, processing, g).unwrap(),
            1 => Instance::uniform(speeds, processing, g).unwrap(),
            _ => {
                let times: Vec<Vec<u64>> = (0..m)
                    .map(|i| (0..n).map(|j| times_flat[(i * n + j) % times_flat.len()]).collect())
                    .collect();
                Instance::unrelated(times, g).unwrap()
            }
        };
        let once = bisched_model::canonicalize(&inst);
        let twice = bisched_model::canonicalize(&once.instance);
        prop_assert_eq!(&once.certificate, &twice.certificate);
        prop_assert_eq!(once.fingerprint, twice.fingerprint);
        // The canonical instance is its own normal form.
        prop_assert_eq!(
            InstanceData::from_instance(&once.instance),
            InstanceData::from_instance(&twice.instance)
        );
    }

    #[test]
    fn isomorphic_relabelings_share_a_fingerprint(
        kind in 0u8..3,
        m in 1usize..4,
        processing in proptest::collection::vec(1u64..6, 1..10),
        speeds in proptest::collection::vec(1u64..5, 1..4),
        edge_mask in proptest::collection::vec(any::<bool>(), 45),
        times_flat in proptest::collection::vec(1u64..8, 40),
        seed in 0u64..10_000,
    ) {
        let n = processing.len();
        let edges = edges_from_mask(n, &edge_mask);
        let jp = shuffled(n, seed); // new id of old job j
        let relabeled_p: Vec<u64> = {
            let mut p = vec![0u64; n];
            for j in 0..n {
                p[jp[j] as usize] = processing[j];
            }
            p
        };
        let g = Graph::from_edges(n, &edges);
        let rg = Graph::from_edges(n, &relabel_edges(&edges, &jp));
        let (a, b) = match kind {
            0 => (
                Instance::identical(m, processing, g).unwrap(),
                Instance::identical(m, relabeled_p, rg).unwrap(),
            ),
            1 => (
                Instance::uniform(speeds.clone(), processing, g).unwrap(),
                Instance::uniform(speeds, relabeled_p, rg).unwrap(),
            ),
            _ => {
                let times: Vec<Vec<u64>> = (0..m)
                    .map(|i| (0..n).map(|j| times_flat[(i * n + j) % times_flat.len()]).collect())
                    .collect();
                let mp = shuffled(m, seed ^ 0xABCD); // new id of old machine i
                let mut rt = vec![vec![0u64; n]; m];
                for i in 0..m {
                    for j in 0..n {
                        rt[mp[i] as usize][jp[j] as usize] = times[i][j];
                    }
                }
                (
                    Instance::unrelated(times, g).unwrap(),
                    Instance::unrelated(rt, rg).unwrap(),
                )
            }
        };
        let ca = bisched_model::canonicalize(&a);
        let cb = bisched_model::canonicalize(&b);
        prop_assert_eq!(ca.fingerprint, cb.fingerprint);
        prop_assert_eq!(&ca.certificate, &cb.certificate);
        // Both canonical instances are literally the same data.
        prop_assert_eq!(
            InstanceData::from_instance(&ca.instance),
            InstanceData::from_instance(&cb.instance)
        );
    }
}
