//! Lower bounds on the optimal makespan; the paper's `C**_max`.
//!
//! Algorithm 1 (step 5) defines `C**_max` as the smallest time such that
//! *rounded-down* machine capacities cover the work: in a schedule of length
//! `T`, machine `i`'s integer load is at most `⌊s_i · T⌋`, so
//! `Σ_i ⌊s_i · T⌋ ≥ Σ p_j` is necessary — and the same with machines
//! `M_2..M_m` against `Σ_{J∖I} p_j` (no independent set larger than `I` fits
//! on `M_1`), plus `T ≥ p_max / s_1`. All three are computed exactly.
//!
//! The minimal covering time is found by the event-heap procedure described
//! in Lemma 10's proof: start from the relaxed bound `demand / Σ s_i` (at
//! which the floored capacities are short by less than `m`), then advance
//! through per-machine capacity-increment events in time order. `O(m log m)`.

use crate::rational::Rat;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Floored capacity `⌊s · t⌋` of a machine of speed `s` in time `t`.
pub fn floor_capacity(speed: u64, t: &Rat) -> u64 {
    ((speed as u128 * t.num() as u128) / t.den() as u128) as u64
}

/// Floored capacities of all `speeds` in time `t`.
pub fn floor_capacities(speeds: &[u64], t: &Rat) -> Vec<u64> {
    speeds.iter().map(|&s| floor_capacity(s, t)).collect()
}

/// The minimal time `T` (exact) such that `Σ_i ⌊s_i · T⌋ ≥ demand`.
///
/// Panics if `speeds` is empty while `demand > 0` (no machine can ever
/// cover positive demand).
pub fn min_time_to_cover(speeds: &[u64], demand: u64) -> Rat {
    if demand == 0 {
        return Rat::ZERO;
    }
    assert!(
        !speeds.is_empty(),
        "positive demand cannot be covered by zero machines"
    );
    let total_speed: u64 = speeds.iter().sum();
    // Relaxed bound: if capacities were not floored, T0 = demand / Σs_i.
    // For T < T0, Σ⌊s_i T⌋ ≤ Σ s_i T < demand, so T* ≥ T0.
    let t0 = Rat::new(demand, total_speed);
    let mut caps = floor_capacities(speeds, &t0);
    let mut covered: u64 = caps.iter().sum();
    if covered >= demand {
        return t0;
    }
    // Event heap: next time each machine's floored capacity increments.
    // The shortfall is < m (each floor loses < 1), so at most m pops.
    let mut heap: BinaryHeap<Reverse<(Rat, u32)>> = speeds
        .iter()
        .enumerate()
        .map(|(i, &s)| Reverse((Rat::new(caps[i] + 1, s), i as u32)))
        .collect();
    loop {
        let Reverse((t, i)) = heap.pop().expect("heap refilled until demand met");
        caps[i as usize] += 1;
        covered += 1;
        if covered >= demand {
            return t;
        }
        heap.push(Reverse((
            Rat::new(caps[i as usize] + 1, speeds[i as usize]),
            i,
        )));
    }
}

/// Algorithm 1's `C**_max`: the smallest time satisfying all three of
///
/// 1. `Σ_{i∈[m]} ⌊s_i T⌋ ≥ Σ p_j`,
/// 2. `Σ_{i≥2} ⌊s_i T⌋ ≥ uncovered` (work that provably cannot ride on
///    `M_1`, i.e. `Σ p_j` minus the weight of a heaviest independent set),
/// 3. `s_1 T ≥ p_max`.
///
/// This is a valid lower bound on `C*_max` for `Q | G | C_max`.
pub fn cstar_double_max(speeds: &[u64], total: u64, uncovered: u64, pmax: u64) -> Rat {
    assert!(!speeds.is_empty());
    let t1 = min_time_to_cover(speeds, total);
    let t2 = if speeds.len() > 1 {
        min_time_to_cover(&speeds[1..], uncovered)
    } else {
        // With a single machine the uncovered work must be zero for any
        // schedule to exist; the capacity condition degenerates.
        Rat::ZERO
    };
    let t3 = Rat::new(pmax, speeds[0]);
    t1.max(t2).max(t3)
}

/// Capacity lower bound for `Q || C_max`-style instances ignoring the graph:
/// `max(min-cover time, p_max / s_1)`.
pub fn capacity_lower_bound(speeds: &[u64], processing: &[u64]) -> Rat {
    let total: u64 = processing.iter().sum();
    let pmax = processing.iter().copied().max().unwrap_or(0);
    let t1 = min_time_to_cover(speeds, total);
    let t3 = Rat::new(pmax, speeds[0]);
    t1.max(t3)
}

/// Lower bound for `R || C_max` (graph-oblivious): every job costs at least
/// its row minimum, so `C*_max ≥ max(max_j min_i p_{i,j},
/// ⌈Σ_j min_i p_{i,j} / m⌉)`.
pub fn unrelated_lower_bound(times: &[Vec<u64>]) -> u64 {
    let m = times.len();
    assert!(m > 0);
    let n = times[0].len();
    let mut total_min = 0u64;
    let mut max_min = 0u64;
    for j in 0..n {
        let mn = times.iter().map(|row| row[j]).min().expect("m >= 1");
        total_min += mn;
        max_min = max_min.max(mn);
    }
    max_min.max(total_min.div_ceil(m as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: linear scan over candidate times `c / s_i`.
    fn min_cover_oracle(speeds: &[u64], demand: u64) -> Rat {
        let mut candidates: Vec<Rat> = Vec::new();
        for &s in speeds {
            for c in 1..=demand {
                candidates.push(Rat::new(c, s));
            }
        }
        candidates.sort();
        for t in candidates {
            let total: u64 = floor_capacities(speeds, &t).iter().sum();
            if total >= demand {
                return t;
            }
        }
        unreachable!("demand {demand} must be coverable")
    }

    #[test]
    fn floor_capacity_basics() {
        assert_eq!(floor_capacity(3, &Rat::new(7, 2)), 10); // 10.5 -> 10
        assert_eq!(floor_capacity(1, &Rat::integer(4)), 4);
        assert_eq!(floor_capacity(5, &Rat::ZERO), 0);
    }

    #[test]
    fn single_machine_cover() {
        // speed 2, demand 7 -> T = 7/2
        assert_eq!(min_time_to_cover(&[2], 7), Rat::new(7, 2));
        // speed 3, demand 3 -> T = 1
        assert_eq!(min_time_to_cover(&[3], 3), Rat::integer(1));
    }

    #[test]
    fn equal_speed_machines() {
        // 3 unit-speed machines, demand 7: at T = 3, caps (3,3,3) = 9 >= 7;
        // at T = 7/3, caps (2,2,2) = 6 < 7. Minimal integer-step event: 3.
        assert_eq!(min_time_to_cover(&[1, 1, 1], 7), Rat::integer(3));
    }

    #[test]
    fn mixed_speeds_match_oracle() {
        let cases: Vec<(Vec<u64>, u64)> = vec![
            (vec![2, 1], 5),
            (vec![3, 2, 1], 11),
            (vec![5, 1, 1], 9),
            (vec![7, 3], 1),
            (vec![4], 13),
            (vec![2, 2, 2, 2], 9),
            (vec![49, 5, 1], 20),
        ];
        for (speeds, demand) in cases {
            assert_eq!(
                min_time_to_cover(&speeds, demand),
                min_cover_oracle(&speeds, demand),
                "speeds={speeds:?}, demand={demand}"
            );
        }
    }

    #[test]
    fn zero_demand_is_free() {
        assert_eq!(min_time_to_cover(&[3, 1], 0), Rat::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero machines")]
    fn no_machines_positive_demand_panics() {
        min_time_to_cover(&[], 1);
    }

    #[test]
    fn cover_time_is_tight() {
        // Property: at T* the demand is covered; strictly before the last
        // event it is not. Verify via a slightly smaller rational.
        let speeds = [3u64, 2, 2, 1];
        for demand in 1..40u64 {
            let t = min_time_to_cover(&speeds, demand);
            let total: u64 = floor_capacities(&speeds, &t).iter().sum();
            assert!(total >= demand);
            // t - epsilon: scale num/den to make room for subtracting 1.
            let eps_smaller = Rat::new(t.num() * 1000 - 1, t.den() * 1000);
            let total_before: u64 = floor_capacities(&speeds, &eps_smaller).iter().sum();
            assert!(
                total_before < demand,
                "T={t} not minimal for demand {demand}: {total_before} already covered"
            );
        }
    }

    #[test]
    fn cstar_combines_three_conditions() {
        // speeds (4, 1); total 12, uncovered 3, pmax 8.
        // cond1: min T with floor(4T)+floor(T) >= 12 -> around 12/5
        // cond2: floor(T) >= 3 -> T >= 3
        // cond3: T >= 8/4 = 2
        let t = cstar_double_max(&[4, 1], 12, 3, 8);
        assert_eq!(t, Rat::integer(3));
        // Make pmax dominate.
        let t2 = cstar_double_max(&[4, 1], 12, 3, 40);
        assert_eq!(t2, Rat::integer(10));
    }

    #[test]
    fn cstar_single_machine() {
        let t = cstar_double_max(&[2], 10, 0, 6);
        assert_eq!(t, Rat::integer(5));
    }

    #[test]
    fn capacity_lb_examples() {
        // speeds (2,1), jobs 3+3+3=9: min T with floor(2T)+floor(T)>=9 is 3.
        assert_eq!(capacity_lower_bound(&[2, 1], &[3, 3, 3]), Rat::integer(3));
        // One huge job forces pmax/s1.
        assert_eq!(
            capacity_lower_bound(&[2, 1], &[10, 1]),
            Rat::new(10, 2).max(Rat::new(11, 3))
        );
    }

    #[test]
    fn unrelated_lb_examples() {
        // mins per job: 1, 2 -> total 3, m = 2 -> ceil(3/2) = 2 = max_min.
        assert_eq!(unrelated_lower_bound(&[vec![1, 5], vec![9, 2]]), 2);
        // mins 4, 4, 4 on 2 machines: ceil(12/2) = 6.
        assert_eq!(unrelated_lower_bound(&[vec![4, 9, 4], vec![7, 4, 8]]), 6);
    }
}
