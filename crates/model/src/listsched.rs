//! List scheduling onto machine groups.
//!
//! Algorithms 1 and 2 first split jobs into classes (independent sets) and
//! machines into groups, then scatter each class over its group "by a simple
//! list scheduling". Because each class is an independent set, there are no
//! graph constraints *inside* a group — the greedy only has to balance
//! loads. We use min-completion-time greedy (each job to the machine that
//! finishes it earliest), the classical `Q||C_max` list rule.

use crate::instance::{JobId, MachineId};
use crate::rational::Rat;

/// Jobs sorted by non-increasing processing requirement (LPT order); ties
/// broken by id for determinism.
pub fn lpt_order(processing: &[u64], jobs: &[JobId]) -> Vec<JobId> {
    let mut order = jobs.to_vec();
    order.sort_by(|&a, &b| {
        processing[b as usize]
            .cmp(&processing[a as usize])
            .then(a.cmp(&b))
    });
    order
}

/// Assigns `jobs` (in the given order) to machines from `group`, each job to
/// the machine minimizing its completion time `(load + p_j) / s_i`.
///
/// `loads` and `out` cover *all* machines/jobs; only `group` members'
/// loads and `jobs`' assignments are touched. The caller is responsible for
/// `jobs` being pairwise compatible (an independent set).
pub fn assign_min_completion_uniform(
    speeds: &[u64],
    processing: &[u64],
    jobs: &[JobId],
    group: &[MachineId],
    loads: &mut [u64],
    out: &mut [MachineId],
) {
    assert!(!group.is_empty() || jobs.is_empty(), "jobs but no machines");
    for &j in jobs {
        let p = processing[j as usize];
        let best = group
            .iter()
            .copied()
            .min_by_key(|&i| Rat::new(loads[i as usize] + p, speeds[i as usize]))
            .expect("group non-empty");
        loads[best as usize] += p;
        out[j as usize] = best;
    }
}

/// Unrelated-machines variant: job `j` on machine `i` costs `times[i][j]`.
pub fn assign_min_completion_unrelated(
    times: &[Vec<u64>],
    jobs: &[JobId],
    group: &[MachineId],
    loads: &mut [u64],
    out: &mut [MachineId],
) {
    assert!(!group.is_empty() || jobs.is_empty(), "jobs but no machines");
    for &j in jobs {
        let best = group
            .iter()
            .copied()
            .min_by_key(|&i| loads[i as usize] + times[i as usize][j as usize])
            .expect("group non-empty");
        loads[best as usize] += times[best as usize][j as usize];
        out[j as usize] = best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_sorts_descending_with_stable_ties() {
        let p = [3u64, 9, 3, 1];
        let order = lpt_order(&p, &[0, 1, 2, 3]);
        assert_eq!(order, vec![1, 0, 2, 3]);
    }

    #[test]
    fn greedy_balances_equal_speeds() {
        let speeds = [1u64, 1];
        let p = [5u64, 4, 3, 3, 3];
        let jobs = lpt_order(&p, &[0, 1, 2, 3, 4]);
        let mut loads = [0u64; 2];
        let mut out = [u32::MAX; 5];
        assign_min_completion_uniform(&speeds, &p, &jobs, &[0, 1], &mut loads, &mut out);
        // LPT on two machines: 5+3, 4+3+3 -> loads {8, 10} in some order.
        let mut l = loads.to_vec();
        l.sort();
        assert_eq!(l, vec![8, 10]);
    }

    #[test]
    fn greedy_prefers_fast_machine() {
        let speeds = [10u64, 1];
        let p = [10u64, 10, 10];
        let mut loads = [0u64; 2];
        let mut out = [u32::MAX; 3];
        assign_min_completion_uniform(&speeds, &p, &[0, 1, 2], &[0, 1], &mut loads, &mut out);
        // All three jobs complete faster on the speed-10 machine
        // (1, 2, 3 time units) than on the slow one (10).
        assert_eq!(out, [0, 0, 0]);
        assert_eq!(loads, [30, 0]);
    }

    #[test]
    fn group_restriction_respected() {
        let speeds = [100u64, 1, 1];
        let p = [4u64, 4];
        let mut loads = [0u64; 3];
        let mut out = [u32::MAX; 2];
        // Machine 0 is not in the group, so jobs must spread over 1 and 2.
        assign_min_completion_uniform(&speeds, &p, &[0, 1], &[1, 2], &mut loads, &mut out);
        assert_eq!(loads[0], 0);
        assert_eq!(loads[1] + loads[2], 8);
        assert!(out.iter().all(|&i| i == 1 || i == 2));
    }

    #[test]
    fn untouched_jobs_keep_sentinel() {
        let speeds = [1u64];
        let p = [2u64, 3];
        let mut loads = [0u64];
        let mut out = [u32::MAX; 2];
        assign_min_completion_uniform(&speeds, &p, &[1], &[0], &mut loads, &mut out);
        assert_eq!(out[0], u32::MAX);
        assert_eq!(out[1], 0);
    }

    #[test]
    fn unrelated_greedy_uses_matrix() {
        let times = vec![vec![1, 100], vec![100, 1]];
        let mut loads = [0u64; 2];
        let mut out = [u32::MAX; 2];
        assign_min_completion_unrelated(&times, &[0, 1], &[0, 1], &mut loads, &mut out);
        assert_eq!(out, [0, 1]);
        assert_eq!(loads, [1, 1]);
    }

    #[test]
    #[should_panic(expected = "jobs but no machines")]
    fn empty_group_with_jobs_panics() {
        let mut loads: [u64; 0] = [];
        let mut out = [u32::MAX; 1];
        assign_min_completion_uniform(&[], &[1], &[0], &[], &mut loads, &mut out);
    }
}
