//! Canonical normal form and fingerprint for instances.
//!
//! Two instances that differ only in how jobs are numbered (and, for `R`,
//! how machines are numbered) describe the same scheduling problem. The
//! canonicalizer maps every member of such an isomorphism class to one
//! **normal form** — jobs renumbered by an invariant canonical order,
//! `R` machine rows sorted — and hashes its byte certificate to a stable
//! 128-bit [`fingerprint`](Canonical::fingerprint). That key is what lets
//! a solve cache serve a relabeled resubmission without re-solving.
//!
//! The canonical job order comes from iterated color refinement (jobs
//! start with invariant colors derived from their processing data, then
//! repeatedly absorb the multiset of their neighbors' colors) followed by
//! an individualization search over the remaining ties that keeps the
//! lexicographically smallest certificate. Fully interchangeable tie
//! cells — every outside job adjacent to all or none of the cell, the
//! cell itself complete or empty — are ordered directly without
//! branching, which covers the common symmetric families (empty graphs,
//! complete bipartite blocks, equal-size job classes) in linear time.
//! A node budget bounds the search on adversarially symmetric inputs;
//! past it the canonical form is still deterministic and self-consistent
//! but may distinguish some relabelings (costing a cache miss, never a
//! wrong answer — caches must compare [`Canonical::certificate`] bytes
//! on lookup, not just the fingerprint).

use crate::instance::{Instance, MachineEnvironment};
use crate::io::InstanceData;
use crate::schedule::Schedule;
use bisched_graph::Graph;

/// Search budget: maximum number of candidate certificates the
/// individualization search materializes before falling back to
/// first-candidate-only exploration.
const SEARCH_BUDGET: usize = 4096;

/// Maximum number of `R` machine-row orderings enumerated when several
/// rows share the same sorted-multiset key.
const MACHINE_ORDER_BUDGET: usize = 48;

/// The canonical form of an instance plus everything needed to translate
/// answers between the original and canonical labelings.
#[derive(Clone, Debug)]
pub struct Canonical {
    /// The instance in normal form: jobs renumbered canonically and, for
    /// `R`, machine rows sorted.
    pub instance: Instance,
    /// `job_perm[c]` = the original id of the job at canonical position
    /// `c`.
    pub job_perm: Vec<u32>,
    /// `machine_perm[c]` = the original id of the machine at canonical
    /// position `c` (identity for `P`/`Q`, whose machine order is already
    /// canonical).
    pub machine_perm: Vec<u32>,
    /// Byte certificate of the normal form; equal bytes ⇔ identical
    /// canonical instances. Cache lookups must compare this, not only the
    /// fingerprint, so hash collisions degrade to misses.
    pub certificate: Vec<u8>,
    /// 128-bit FNV-1a hash of [`certificate`](Self::certificate).
    pub fingerprint: u128,
}

impl Canonical {
    /// Translates a schedule expressed over the **canonical** labeling
    /// back to the original labeling: original job `job_perm[c]` goes to
    /// original machine `machine_perm[assignment[c]]`.
    pub fn schedule_to_original(&self, canonical: &Schedule) -> Schedule {
        let mut assignment = vec![0u32; canonical.num_jobs()];
        for (c, &machine) in canonical.assignment().iter().enumerate() {
            assignment[self.job_perm[c] as usize] = self.machine_perm[machine as usize];
        }
        Schedule::new(assignment)
    }
}

/// Computes the canonical form of `inst`. Deterministic; invariant under
/// job (and `R` machine) relabelings for all but search-budget-exceeding
/// pathologically symmetric inputs (see the module docs).
pub fn canonicalize(inst: &Instance) -> Canonical {
    match inst.env() {
        MachineEnvironment::Unrelated { times } => canonicalize_unrelated(inst, times),
        _ => canonicalize_pq(inst),
    }
}

/// `P`/`Q`: machines are already canonical (anonymous / speed-sorted), so
/// only the job order is searched.
fn canonicalize_pq(inst: &Instance) -> Canonical {
    let n = inst.num_jobs();
    let init: Vec<u64> = (0..n)
        .map(|j| mix(0x9e37_79b9, inst.processing(j as u32)))
        .collect();
    let order = canonical_job_order(inst.graph(), &init);
    let machine_perm: Vec<u32> = (0..inst.num_machines() as u32).collect();
    build_canonical(inst, order, machine_perm)
}

/// `R`: machine rows are keyed by their sorted multiset; ties between
/// rows are broken by enumerating their orderings (bounded) and keeping
/// the smallest certificate.
fn canonicalize_unrelated(inst: &Instance, times: &[Vec<u64>]) -> Canonical {
    // Invariant machine key: the sorted multiset of the row.
    let mut keyed: Vec<(Vec<u64>, u32)> = times
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut k = row.clone();
            k.sort_unstable();
            (k, i as u32)
        })
        .collect();
    keyed.sort();
    // Tie classes of machines with identical keys.
    let mut classes: Vec<Vec<u32>> = Vec::new();
    for (k, i) in keyed {
        match classes.last_mut() {
            Some(last)
                if {
                    let mut lk = times[last[0] as usize].clone();
                    lk.sort_unstable();
                    lk == k
                } =>
            {
                last.push(i)
            }
            _ => classes.push(vec![i]),
        }
    }
    let mut best: Option<Canonical> = None;
    for machine_perm in enumerate_machine_orders(&classes, MACHINE_ORDER_BUDGET) {
        // With a fixed machine order, a job's exact column is invariant
        // job data; hash it into the initial color.
        let n = inst.num_jobs();
        let init: Vec<u64> = (0..n)
            .map(|j| {
                let mut h = 0xc0de_u64;
                for &i in &machine_perm {
                    h = mix(h, times[i as usize][j]);
                }
                h
            })
            .collect();
        let order = canonical_job_order(inst.graph(), &init);
        let cand = build_canonical(inst, order, machine_perm);
        if best
            .as_ref()
            .is_none_or(|b| cand.certificate < b.certificate)
        {
            best = Some(cand);
        }
    }
    best.expect("at least one machine order")
}

/// All machine orders compatible with the sorted tie classes, capped at
/// `budget` (the identity-within-class order always comes first, so the
/// fallback past the cap stays deterministic).
fn enumerate_machine_orders(classes: &[Vec<u32>], budget: usize) -> Vec<Vec<u32>> {
    let mut orders: Vec<Vec<u32>> = vec![Vec::new()];
    for class in classes {
        let mut next = Vec::new();
        for prefix in &orders {
            for perm in permutations(class, budget.div_ceil(orders.len().max(1))) {
                let mut o = prefix.clone();
                o.extend_from_slice(&perm);
                next.push(o);
                if next.len() >= budget {
                    break;
                }
            }
            if next.len() >= budget {
                break;
            }
        }
        orders = next;
    }
    orders
}

/// Up to `cap` permutations of `items`, in a deterministic order starting
/// from the identity (Heap's algorithm order).
fn permutations(items: &[u32], cap: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut work = items.to_vec();
    let n = work.len();
    let mut c = vec![0usize; n];
    out.push(work.clone());
    let mut i = 0;
    while i < n && out.len() < cap.max(1) {
        if c[i] < i {
            if i % 2 == 0 {
                work.swap(0, i);
            } else {
                work.swap(c[i], i);
            }
            out.push(work.clone());
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    out
}

/// Assembles the canonical instance + certificate from a job order and a
/// machine order.
fn build_canonical(inst: &Instance, order: Vec<u32>, machine_perm: Vec<u32>) -> Canonical {
    let n = inst.num_jobs();
    let mut inv = vec![0u32; n];
    for (c, &j) in order.iter().enumerate() {
        inv[j as usize] = c as u32;
    }
    // Edges in canonical indices, normalized and sorted.
    let mut edges: Vec<(u32, u32)> = inst
        .graph()
        .edges()
        .map(|(u, v)| {
            let (a, b) = (inv[u as usize], inv[v as usize]);
            (a.min(b), a.max(b))
        })
        .collect();
    edges.sort_unstable();
    let data = match inst.env() {
        MachineEnvironment::Identical { m } => InstanceData {
            env: "P".into(),
            machines: Some(*m),
            speeds: None,
            processing: Some(order.iter().map(|&j| inst.processing(j)).collect()),
            times: None,
            jobs: n,
            edges,
        },
        MachineEnvironment::Uniform { speeds } => InstanceData {
            env: "Q".into(),
            machines: None,
            speeds: Some(speeds.clone()),
            processing: Some(order.iter().map(|&j| inst.processing(j)).collect()),
            times: None,
            jobs: n,
            edges,
        },
        MachineEnvironment::Unrelated { times } => InstanceData {
            env: "R".into(),
            machines: None,
            speeds: None,
            processing: None,
            times: Some(
                machine_perm
                    .iter()
                    .map(|&i| {
                        order
                            .iter()
                            .map(|&j| times[i as usize][j as usize])
                            .collect()
                    })
                    .collect(),
            ),
            jobs: n,
            edges,
        },
    };
    let certificate = certificate_bytes(&data);
    let fingerprint = fnv128(&certificate);
    let instance = data.into_instance().expect("canonical relabeling is valid");
    Canonical {
        instance,
        job_perm: order,
        machine_perm,
        certificate,
        fingerprint,
    }
}

/// Stable byte encoding of a canonical [`InstanceData`].
fn certificate_bytes(data: &InstanceData) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(data.env.as_bytes());
    let push = |out: &mut Vec<u8>, x: u64| out.extend_from_slice(&x.to_le_bytes());
    push(&mut out, data.jobs as u64);
    if let Some(m) = data.machines {
        out.push(b'm');
        push(&mut out, m as u64);
    }
    if let Some(speeds) = &data.speeds {
        out.push(b's');
        push(&mut out, speeds.len() as u64);
        speeds.iter().for_each(|&s| push(&mut out, s));
    }
    if let Some(p) = &data.processing {
        out.push(b'p');
        p.iter().for_each(|&x| push(&mut out, x));
    }
    if let Some(times) = &data.times {
        out.push(b't');
        push(&mut out, times.len() as u64);
        for row in times {
            row.iter().for_each(|&x| push(&mut out, x));
        }
    }
    out.push(b'e');
    push(&mut out, data.edges.len() as u64);
    for &(u, v) in &data.edges {
        push(&mut out, u as u64);
        push(&mut out, v as u64);
    }
    out
}

/// 128-bit FNV-1a — the hash behind [`Canonical::fingerprint`], exposed
/// so callers composing cache keys (e.g. the service's config-aware key)
/// use the same construction.
pub fn fnv128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// 64-bit hash combiner (splitmix-style finalization).
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Canonical job order: color refinement, then individualization search
/// over the remaining ties keeping the smallest certificate.
fn canonical_job_order(graph: &Graph, init: &[u64]) -> Vec<u32> {
    let mut budget = SEARCH_BUDGET;
    let mut best: Option<(Vec<u8>, Vec<u32>)> = None;
    search_order(graph, init.to_vec(), &mut budget, &mut best);
    best.expect("search yields at least one order").1
}

/// One search node: refine, shortcut or branch on the first tied cell.
fn search_order(
    graph: &Graph,
    mut colors: Vec<u64>,
    budget: &mut usize,
    best: &mut Option<(Vec<u8>, Vec<u32>)>,
) {
    refine(graph, &mut colors);
    loop {
        let cells = tied_cells(&colors);
        let Some(cell) = cells.first().cloned() else {
            // Discrete: order by color (all distinct).
            let mut order: Vec<u32> = (0..colors.len() as u32).collect();
            order.sort_unstable_by_key(|&j| colors[j as usize]);
            let key = order_key(graph, &colors, &order);
            if best.as_ref().is_none_or(|(bk, _)| key < *bk) {
                *best = Some((key, order));
            }
            return;
        };
        if is_interchangeable_cell(graph, &colors, &cell) {
            // Any ordering of the cell yields the same certificate:
            // individualize all members at once, in current order, and
            // keep refining without branching.
            for (rank, &j) in cell.iter().enumerate() {
                colors[j as usize] = mix(colors[j as usize], rank as u64 + 1);
            }
            refine(graph, &mut colors);
            continue;
        }
        // Branch: individualize each candidate in the cell.
        let candidates: &[u32] = if *budget == 0 { &cell[..1] } else { &cell };
        for &j in candidates {
            if *budget > 0 {
                *budget -= 1;
            }
            let mut next = colors.clone();
            next[j as usize] = mix(next[j as usize], 0x1d1f);
            search_order(graph, next, budget, best);
        }
        return;
    }
}

/// Stable refinement: each round every job absorbs the sorted multiset of
/// its neighbors' colors; stops when the partition stops growing.
fn refine(graph: &Graph, colors: &mut [u64]) {
    let mut distinct = count_distinct(colors);
    loop {
        let mut next = vec![0u64; colors.len()];
        for j in 0..colors.len() {
            let mut nb: Vec<u64> = graph
                .neighbors(j as u32)
                .iter()
                .map(|&v| colors[v as usize])
                .collect();
            nb.sort_unstable();
            let mut h = mix(0xace1, colors[j]);
            for c in nb {
                h = mix(h, c);
            }
            next[j] = h;
        }
        let d = count_distinct(&next);
        colors.copy_from_slice(&next);
        if d == distinct {
            return;
        }
        distinct = d;
    }
}

fn count_distinct(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Non-singleton color classes, ordered by color value, members by id.
fn tied_cells(colors: &[u64]) -> Vec<Vec<u32>> {
    let mut by_color: Vec<(u64, u32)> = colors
        .iter()
        .enumerate()
        .map(|(j, &c)| (c, j as u32))
        .collect();
    by_color.sort_unstable();
    let mut cells = Vec::new();
    let mut i = 0;
    while i < by_color.len() {
        let mut k = i + 1;
        while k < by_color.len() && by_color[k].0 == by_color[i].0 {
            k += 1;
        }
        if k - i > 1 {
            cells.push(by_color[i..k].iter().map(|&(_, j)| j).collect());
        }
        i = k;
    }
    cells
}

/// Whether every job outside the cell is adjacent to all or none of it,
/// and the cell's induced subgraph is complete or empty — i.e. the cell's
/// members are fully interchangeable and need no branching.
fn is_interchangeable_cell(graph: &Graph, colors: &[u64], cell: &[u32]) -> bool {
    let k = cell.len();
    let in_cell: Vec<bool> = {
        let mut mask = vec![false; colors.len()];
        for &j in cell {
            mask[j as usize] = true;
        }
        mask
    };
    let mut inner_edges = 0usize;
    let mut outside_counts = std::collections::HashMap::new();
    for &j in cell {
        for &v in graph.neighbors(j) {
            if in_cell[v as usize] {
                inner_edges += 1;
            } else {
                *outside_counts.entry(v).or_insert(0usize) += 1;
            }
        }
    }
    inner_edges /= 2;
    if inner_edges != 0 && inner_edges != k * (k - 1) / 2 {
        return false;
    }
    outside_counts.values().all(|&c| c == k)
}

/// Certificate key of a discrete order: per-job initial-invariant colors
/// would already be equal inside former ties, so the distinguishing data
/// is the edge relation (plus the colors for cross-cell stability).
fn order_key(graph: &Graph, colors: &[u64], order: &[u32]) -> Vec<u8> {
    let n = order.len();
    let mut inv = vec![0u32; n];
    for (c, &j) in order.iter().enumerate() {
        inv[j as usize] = c as u32;
    }
    let mut edges: Vec<(u32, u32)> = graph
        .edges()
        .map(|(u, v)| {
            let (a, b) = (inv[u as usize], inv[v as usize]);
            (a.min(b), a.max(b))
        })
        .collect();
    edges.sort_unstable();
    let mut key = Vec::with_capacity(n * 8 + edges.len() * 8);
    for &j in order {
        key.extend_from_slice(&colors[j as usize].to_le_bytes());
    }
    for (u, v) in edges {
        key.extend_from_slice(&u.to_le_bytes());
        key.extend_from_slice(&v.to_le_bytes());
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_graph::Graph;

    fn fp(inst: &Instance) -> u128 {
        canonicalize(inst).fingerprint
    }

    #[test]
    fn relabeled_path_shares_fingerprint() {
        // 0-1-2-3 with distinct sizes, vs. the reversed labeling.
        let a = Instance::identical(2, vec![5, 3, 8, 2], Graph::path(4)).unwrap();
        let b = Instance::identical(
            2,
            vec![2, 8, 3, 5],
            Graph::from_edges(4, &[(3, 2), (2, 1), (1, 0)]),
        )
        .unwrap();
        assert_eq!(fp(&a), fp(&b));
    }

    #[test]
    fn different_instances_differ() {
        let a = Instance::identical(2, vec![5, 3, 8, 2], Graph::path(4)).unwrap();
        let b = Instance::identical(2, vec![5, 3, 8, 2], Graph::empty(4)).unwrap();
        let c = Instance::identical(3, vec![5, 3, 8, 2], Graph::path(4)).unwrap();
        assert_ne!(fp(&a), fp(&b));
        assert_ne!(fp(&a), fp(&c));
    }

    #[test]
    fn matching_inside_tied_class_is_resolved_by_search() {
        // Four unit jobs, edges forming a perfect matching 0-1, 2-3 vs the
        // crossed matching 0-2, 1-3: isomorphic, and WL alone cannot pick
        // an invariant order inside the single color class.
        let a =
            Instance::identical(2, vec![1; 4], Graph::from_edges(4, &[(0, 1), (2, 3)])).unwrap();
        let b =
            Instance::identical(2, vec![1; 4], Graph::from_edges(4, &[(0, 2), (1, 3)])).unwrap();
        assert_eq!(fp(&a), fp(&b));
    }

    #[test]
    fn unrelated_machine_rows_are_interchangeable() {
        let a = Instance::unrelated(vec![vec![1, 2, 3], vec![4, 5, 6]], Graph::path(3)).unwrap();
        let b = Instance::unrelated(vec![vec![4, 5, 6], vec![1, 2, 3]], Graph::path(3)).unwrap();
        assert_eq!(fp(&a), fp(&b));
    }

    #[test]
    fn unrelated_job_and_machine_relabeling() {
        // Swap jobs 0 and 2 (columns) and the two machines (rows).
        let a = Instance::unrelated(
            vec![vec![3, 5, 2], vec![7, 1, 9]],
            Graph::from_edges(3, &[(0, 1)]),
        )
        .unwrap();
        let b = Instance::unrelated(
            vec![vec![9, 1, 7], vec![2, 5, 3]],
            Graph::from_edges(3, &[(2, 1)]),
        )
        .unwrap();
        assert_eq!(fp(&a), fp(&b));
    }

    #[test]
    fn schedule_maps_back_to_original_labels() {
        let orig = Instance::uniform(
            vec![3, 1],
            vec![4, 9, 2, 7, 5],
            Graph::from_edges(5, &[(0, 3), (1, 4), (2, 3)]),
        )
        .unwrap();
        let canon = canonicalize(&orig);
        // A feasible canonical schedule: put each edge endpoint apart by
        // 2-coloring the canonical graph greedily.
        let cg = canon.instance.graph();
        let mut assign = vec![0u32; canon.instance.num_jobs()];
        for (u, v) in cg.edges() {
            if assign[u as usize] == assign[v as usize] {
                assign[v as usize] = 1 - assign[v as usize];
            }
        }
        let cs = Schedule::new(assign);
        if cs.validate(&canon.instance).is_ok() {
            let os = canon.schedule_to_original(&cs);
            assert!(os.validate(&orig).is_ok());
            assert_eq!(os.makespan(&orig), cs.makespan(&canon.instance));
        }
    }

    #[test]
    fn empty_graph_symmetric_classes_fast_path() {
        // Fully symmetric tie classes: must resolve via the
        // interchangeable-cell shortcut, not the branching search.
        let mut sizes = vec![7u64; 20];
        sizes.extend(vec![3u64; 20]);
        let a = Instance::identical(4, sizes, Graph::empty(40)).unwrap();
        let interleaved: Vec<u64> = (0..40).map(|j| if j % 2 == 0 { 7 } else { 3 }).collect();
        let b = Instance::identical(4, interleaved, Graph::empty(40)).unwrap();
        assert_eq!(fp(&a), fp(&b));
    }

    #[test]
    fn idempotent() {
        let inst = Instance::unrelated(
            vec![vec![3, 5, 2, 8], vec![7, 1, 9, 2], vec![4, 4, 4, 4]],
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]),
        )
        .unwrap();
        let once = canonicalize(&inst);
        let twice = canonicalize(&once.instance);
        assert_eq!(once.certificate, twice.certificate);
        assert_eq!(once.fingerprint, twice.fingerprint);
        assert_eq!(
            InstanceData::from_instance(&once.instance),
            InstanceData::from_instance(&twice.instance)
        );
    }
}
