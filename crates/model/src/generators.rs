//! Workload generators for experiments and property tests.
//!
//! The paper has no empirical section, so the experiment harness generates
//! the workloads its theorems quantify over: job-size distributions, machine
//! speed profiles (including the adversarial "one very fast machine" shape
//! that drives the `√Σp_j` lower bound), and the standard unrelated-times
//! families from the `R||C_max` literature (uncorrelated, job-correlated,
//! machine-correlated).

use rand::Rng;

/// Job-size distributions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobSizes {
    /// All `p_j = 1` (the `p_j = 1` restriction of Theorems 4, 8, 19).
    Unit,
    /// `p_j ~ U[lo, hi]`.
    Uniform {
        /// Minimum size (≥ 1).
        lo: u64,
        /// Maximum size.
        hi: u64,
    },
    /// Mostly small jobs with a fraction of big ones — exercises
    /// Algorithm 1's `√Σp_j` threshold between "big" and "small".
    Bimodal {
        /// Small-job range.
        small: (u64, u64),
        /// Big-job range.
        big: (u64, u64),
        /// Big-job share in percent (0..=100).
        big_percent: u8,
    },
}

impl JobSizes {
    /// Samples `n` job sizes.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<u64> {
        match *self {
            JobSizes::Unit => vec![1; n],
            JobSizes::Uniform { lo, hi } => {
                assert!(lo >= 1 && lo <= hi);
                (0..n).map(|_| rng.gen_range(lo..=hi)).collect()
            }
            JobSizes::Bimodal {
                small,
                big,
                big_percent,
            } => {
                assert!(small.0 >= 1 && small.0 <= small.1 && big.0 <= big.1);
                (0..n)
                    .map(|_| {
                        if rng.gen_range(0u8..100) < big_percent {
                            rng.gen_range(big.0..=big.1)
                        } else {
                            rng.gen_range(small.0..=small.1)
                        }
                    })
                    .collect()
            }
        }
    }

    /// Table label.
    pub fn label(&self) -> String {
        match *self {
            JobSizes::Unit => "unit".into(),
            JobSizes::Uniform { lo, hi } => format!("U[{lo},{hi}]"),
            JobSizes::Bimodal { big_percent, .. } => format!("bimodal({big_percent}% big)"),
        }
    }
}

/// Machine speed profiles for `Q` environments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpeedProfile {
    /// All speeds 1 — degenerates to identical machines (the `P` baseline
    /// of Bodlaender–Jansen–Woeginger).
    Equal,
    /// Speeds `ratio^(m-1), …, ratio, 1` (geometric decay).
    Geometric {
        /// Ratio between consecutive machines (≥ 2 recommended).
        ratio: u64,
    },
    /// One machine `factor×` faster than the other `m−1` unit machines —
    /// the shape behind the Theorem 8 hardness construction.
    OneFast {
        /// Speed of the fast machine.
        factor: u64,
    },
    /// `fast_count` machines at `factor`, the rest at 1.
    TwoTier {
        /// Number of fast machines.
        fast_count: usize,
        /// Their speed.
        factor: u64,
    },
}

impl SpeedProfile {
    /// Produces the (non-increasing) speed vector for `m` machines.
    pub fn speeds(&self, m: usize) -> Vec<u64> {
        assert!(m >= 1);
        match *self {
            SpeedProfile::Equal => vec![1; m],
            SpeedProfile::Geometric { ratio } => {
                assert!(ratio >= 1);
                (0..m)
                    .map(|i| {
                        ratio
                            .checked_pow((m - 1 - i) as u32)
                            .expect("speed overflow")
                    })
                    .collect()
            }
            SpeedProfile::OneFast { factor } => {
                let mut v = vec![1; m];
                v[0] = factor;
                v
            }
            SpeedProfile::TwoTier { fast_count, factor } => {
                assert!(fast_count <= m);
                let mut v = vec![1; m];
                for s in v.iter_mut().take(fast_count) {
                    *s = factor;
                }
                v
            }
        }
    }

    /// Table label.
    pub fn label(&self) -> String {
        match *self {
            SpeedProfile::Equal => "equal".into(),
            SpeedProfile::Geometric { ratio } => format!("geometric(r={ratio})"),
            SpeedProfile::OneFast { factor } => format!("one-fast({factor}x)"),
            SpeedProfile::TwoTier { fast_count, factor } => {
                format!("two-tier({fast_count}@{factor}x)")
            }
        }
    }
}

/// Unrelated-times matrix families (standard `R||C_max` benchmark shapes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnrelatedFamily {
    /// `p_{i,j} ~ U[lo, hi]` independently.
    Uncorrelated {
        /// Lower bound (≥ 1).
        lo: u64,
        /// Upper bound.
        hi: u64,
    },
    /// `p_{i,j} ~ a_j + U[0, spread]`: job-correlated (a job is inherently
    /// big or small, machines agree).
    JobCorrelated {
        /// Base-cost range for `a_j`.
        base: (u64, u64),
        /// Additive machine noise.
        spread: u64,
    },
    /// `p_{i,j} ~ b_i + U[0, spread]`: machine-correlated (a machine is
    /// inherently slow or fast for everything).
    MachineCorrelated {
        /// Base-cost range for `b_i`.
        base: (u64, u64),
        /// Additive job noise.
        spread: u64,
    },
}

impl UnrelatedFamily {
    /// Samples an `m × n` processing-time matrix.
    pub fn sample<R: Rng + ?Sized>(&self, m: usize, n: usize, rng: &mut R) -> Vec<Vec<u64>> {
        match *self {
            UnrelatedFamily::Uncorrelated { lo, hi } => {
                assert!(lo >= 1 && lo <= hi);
                (0..m)
                    .map(|_| (0..n).map(|_| rng.gen_range(lo..=hi)).collect())
                    .collect()
            }
            UnrelatedFamily::JobCorrelated { base, spread } => {
                assert!(base.0 >= 1 && base.0 <= base.1);
                let a: Vec<u64> = (0..n).map(|_| rng.gen_range(base.0..=base.1)).collect();
                (0..m)
                    .map(|_| a.iter().map(|&aj| aj + rng.gen_range(0..=spread)).collect())
                    .collect()
            }
            UnrelatedFamily::MachineCorrelated { base, spread } => {
                assert!(base.0 >= 1 && base.0 <= base.1);
                (0..m)
                    .map(|_| {
                        let bi = rng.gen_range(base.0..=base.1);
                        (0..n).map(|_| bi + rng.gen_range(0..=spread)).collect()
                    })
                    .collect()
            }
        }
    }

    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            UnrelatedFamily::Uncorrelated { .. } => "uncorrelated",
            UnrelatedFamily::JobCorrelated { .. } => "job-correlated",
            UnrelatedFamily::MachineCorrelated { .. } => "machine-correlated",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_sizes() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(JobSizes::Unit.sample(4, &mut rng), vec![1, 1, 1, 1]);
    }

    #[test]
    fn uniform_sizes_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = JobSizes::Uniform { lo: 5, hi: 9 }.sample(200, &mut rng);
        assert!(p.iter().all(|&x| (5..=9).contains(&x)));
        assert!(p.contains(&5) && p.contains(&9));
    }

    #[test]
    fn bimodal_mixes_modes() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = JobSizes::Bimodal {
            small: (1, 3),
            big: (100, 200),
            big_percent: 30,
        }
        .sample(300, &mut rng);
        let big = p.iter().filter(|&&x| x >= 100).count();
        assert!(big > 40 && big < 160, "got {big} big jobs of 300");
    }

    #[test]
    fn speed_profiles_shapes() {
        assert_eq!(SpeedProfile::Equal.speeds(3), vec![1, 1, 1]);
        assert_eq!(
            SpeedProfile::Geometric { ratio: 3 }.speeds(4),
            vec![27, 9, 3, 1]
        );
        assert_eq!(
            SpeedProfile::OneFast { factor: 50 }.speeds(3),
            vec![50, 1, 1]
        );
        assert_eq!(
            SpeedProfile::TwoTier {
                fast_count: 2,
                factor: 10
            }
            .speeds(4),
            vec![10, 10, 1, 1]
        );
        // All profiles non-increasing.
        for p in [
            SpeedProfile::Equal,
            SpeedProfile::Geometric { ratio: 2 },
            SpeedProfile::OneFast { factor: 7 },
            SpeedProfile::TwoTier {
                fast_count: 3,
                factor: 4,
            },
        ] {
            let s = p.speeds(6);
            assert!(s.windows(2).all(|w| w[0] >= w[1]), "{p:?} not sorted");
        }
    }

    #[test]
    fn unrelated_families_shape_and_positivity() {
        let mut rng = StdRng::seed_from_u64(3);
        for fam in [
            UnrelatedFamily::Uncorrelated { lo: 1, hi: 50 },
            UnrelatedFamily::JobCorrelated {
                base: (10, 90),
                spread: 5,
            },
            UnrelatedFamily::MachineCorrelated {
                base: (10, 90),
                spread: 5,
            },
        ] {
            let t = fam.sample(3, 7, &mut rng);
            assert_eq!(t.len(), 3);
            assert!(t.iter().all(|row| row.len() == 7));
            assert!(t.iter().flatten().all(|&p| p >= 1));
        }
    }

    #[test]
    fn job_correlated_rows_agree() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = UnrelatedFamily::JobCorrelated {
            base: (1, 1000),
            spread: 1,
        }
        .sample(2, 50, &mut rng);
        // Machines nearly agree on job costs: rows differ by at most spread.
        for (a, b) in t[0].iter().zip(&t[1]) {
            assert!(a.abs_diff(*b) <= 1);
        }
    }
}
