//! Exact non-negative rational arithmetic for makespans.
//!
//! On uniform machines a makespan is `load / speed`; comparing two schedules
//! through `f64` invites exactly the kind of tie-breaking bugs that make
//! "optimal" assertions flaky. `Rat` keeps `u64` numerator/denominator in
//! lowest terms and compares via `u128` cross-multiplication, so every
//! optimality and approximation-ratio check in the workspace is exact.
//! Floats appear only when *reporting* ratios in experiment tables.

use std::cmp::Ordering;
use std::fmt;

/// A non-negative rational in lowest terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rat {
    num: u64,
    den: u64,
}

/// Greatest common divisor (binary-free Euclid; inputs fit `u64`).
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };

    /// Constructs `num/den`, normalizing to lowest terms. Panics if `den == 0`.
    pub fn new(num: u64, den: u64) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        if num == 0 {
            return Rat::ZERO;
        }
        let g = gcd(num, den);
        Rat {
            num: num / g,
            den: den / g,
        }
    }

    /// The integer `n`.
    pub const fn integer(n: u64) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (lowest terms).
    pub fn num(&self) -> u64 {
        self.num
    }

    /// Denominator (lowest terms).
    pub fn den(&self) -> u64 {
        self.den
    }

    /// `⌊self⌋`.
    pub fn floor(&self) -> u64 {
        self.num / self.den
    }

    /// `⌈self⌉`.
    pub fn ceil(&self) -> u64 {
        self.num.div_ceil(self.den)
    }

    /// Whether the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Exact sum. Panics on (astronomically unlikely at our scales) overflow.
    pub fn add(&self, other: &Rat) -> Rat {
        let g = gcd(self.den, other.den);
        let den = self.den / g * other.den;
        let num = self
            .num
            .checked_mul(other.den / g)
            .and_then(|a| a.checked_add(other.num.checked_mul(self.den / g).expect("Rat overflow")))
            .expect("Rat overflow");
        Rat::new(num, den)
    }

    /// Exact product with an integer.
    pub fn mul_int(&self, k: u64) -> Rat {
        let g = gcd(k, self.den);
        Rat::new(
            self.num.checked_mul(k / g).expect("Rat overflow"),
            self.den / g,
        )
    }

    /// Exact product.
    pub fn mul(&self, other: &Rat) -> Rat {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.num, other.den);
        let g2 = gcd(other.num, self.den);
        Rat::new(
            (self.num / g1)
                .checked_mul(other.num / g2)
                .expect("Rat overflow"),
            (self.den / g2)
                .checked_mul(other.den / g1)
                .expect("Rat overflow"),
        )
    }

    /// Exact quotient by a non-zero integer.
    pub fn div_int(&self, k: u64) -> Rat {
        assert!(k != 0);
        let g = gcd(self.num, k);
        Rat::new(
            self.num / g,
            self.den.checked_mul(k / g).expect("Rat overflow"),
        )
    }

    /// Lossy conversion for reporting.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact ratio `self / other` as `f64` for reporting (`other > 0`).
    pub fn ratio_to(&self, other: &Rat) -> f64 {
        assert!(other.num != 0, "ratio against zero");
        (self.num as u128 * other.den as u128) as f64
            / (self.den as u128 * other.num as u128) as f64
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = self.num as u128 * other.den as u128;
        let rhs = other.num as u128 * self.den as u128;
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Rat {
    /// Integers print bare (`7`); fractions as `num/den` (`7/2`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(6, 4), Rat::new(3, 2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
        assert_eq!(Rat::new(5, 5), Rat::integer(1));
    }

    #[test]
    fn ordering_is_exact() {
        // 1/3 < 0.3333333333333333 style traps: compare 10^18-scale values.
        let a = Rat::new(333_333_333_333_333_333, 1_000_000_000_000_000_000);
        let b = Rat::new(1, 3);
        assert!(a < b);
        assert!(Rat::new(2, 3) > Rat::new(3, 5));
        assert_eq!(Rat::new(4, 6), Rat::new(2, 3));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::integer(5).floor(), 5);
        assert_eq!(Rat::integer(5).ceil(), 5);
        assert_eq!(Rat::ZERO.ceil(), 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Rat::new(1, 2).add(&Rat::new(1, 3)), Rat::new(5, 6));
        assert_eq!(Rat::new(3, 4).mul_int(8), Rat::integer(6));
        assert_eq!(Rat::new(3, 4).mul(&Rat::new(2, 9)), Rat::new(1, 6));
        assert_eq!(Rat::new(9, 2).div_int(3), Rat::new(3, 2));
    }

    #[test]
    fn ratio_reporting() {
        let two = Rat::integer(2);
        let three = Rat::integer(3);
        assert!((three.ratio_to(&two) - 1.5).abs() < 1e-12);
        assert!((Rat::new(1, 2).ratio_to(&Rat::new(1, 4)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(Rat::integer(7).to_string(), "7");
        assert_eq!(Rat::new(7, 2).to_string(), "7/2");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        Rat::new(1, 0);
    }

    #[test]
    fn big_values_do_not_overflow_comparison() {
        let a = Rat::new(u64::MAX / 2, u64::MAX / 3);
        let b = Rat::new(u64::MAX / 3, u64::MAX / 2);
        assert!(a > b);
    }
}
