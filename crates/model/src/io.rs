//! Instance serialization: a line-oriented text format plus serde support.
//!
//! The text format is what the experiment harness and downstream users
//! exchange instances in:
//!
//! ```text
//! # bisched instance v1          (comments and blank lines ignored)
//! env Q                          (P <m> | Q | R)
//! speeds 4 2 1                   (Q only)
//! jobs 5
//! processing 3 1 4 1 5           (P and Q)
//! times 3 1 4 1 5                (R: one line per machine)
//! times 2 2 2 2 2
//! edges 3
//! 0 1
//! 1 2
//! 3 4
//! ```

use crate::instance::{Instance, MachineEnvironment};
use bisched_graph::Graph;
use serde::{Deserialize, Serialize};

/// Serde-friendly mirror of [`Instance`]; conversion validates.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct InstanceData {
    /// `"P"`, `"Q"`, or `"R"`.
    pub env: String,
    /// Machine count for `P`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub machines: Option<usize>,
    /// Speeds for `Q`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub speeds: Option<Vec<u64>>,
    /// Processing requirements for `P`/`Q`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub processing: Option<Vec<u64>>,
    /// `m × n` times for `R`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub times: Option<Vec<Vec<u64>>>,
    /// Number of jobs (= incompatibility-graph vertices).
    pub jobs: usize,
    /// Incompatibility edges.
    pub edges: Vec<(u32, u32)>,
}

/// Errors of the text parser / converter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoError {
    /// Line-level syntax problem.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Structurally valid data that does not form a valid instance.
    Invalid(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Invalid(m) => write!(f, "invalid instance: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl InstanceData {
    /// Extracts the portable form of an instance.
    pub fn from_instance(inst: &Instance) -> Self {
        let edges = inst.graph().edges().collect();
        let jobs = inst.num_jobs();
        match inst.env() {
            MachineEnvironment::Identical { m } => InstanceData {
                env: "P".into(),
                machines: Some(*m),
                speeds: None,
                processing: Some(inst.processing_all().to_vec()),
                times: None,
                jobs,
                edges,
            },
            MachineEnvironment::Uniform { speeds } => InstanceData {
                env: "Q".into(),
                machines: None,
                speeds: Some(speeds.clone()),
                processing: Some(inst.processing_all().to_vec()),
                times: None,
                jobs,
                edges,
            },
            MachineEnvironment::Unrelated { times } => InstanceData {
                env: "R".into(),
                machines: None,
                speeds: None,
                processing: None,
                times: Some(times.clone()),
                jobs,
                edges,
            },
        }
    }

    /// Validates and builds the real [`Instance`].
    pub fn into_instance(self) -> Result<Instance, IoError> {
        let graph = Graph::from_edges(self.jobs, &self.edges);
        let bad = |m: &str| IoError::Invalid(m.to_string());
        match self.env.as_str() {
            "P" => {
                let m = self.machines.ok_or_else(|| bad("P requires `machines`"))?;
                let p = self
                    .processing
                    .ok_or_else(|| bad("P requires `processing`"))?;
                Instance::identical(m, p, graph).map_err(|e| IoError::Invalid(e.to_string()))
            }
            "Q" => {
                let s = self.speeds.ok_or_else(|| bad("Q requires `speeds`"))?;
                let p = self
                    .processing
                    .ok_or_else(|| bad("Q requires `processing`"))?;
                Instance::uniform(s, p, graph).map_err(|e| IoError::Invalid(e.to_string()))
            }
            "R" => {
                let t = self.times.ok_or_else(|| bad("R requires `times`"))?;
                Instance::unrelated(t, graph).map_err(|e| IoError::Invalid(e.to_string()))
            }
            other => Err(bad(&format!("unknown environment {other:?}"))),
        }
    }
}

/// Writes the line-oriented text form.
pub fn to_text(inst: &Instance) -> String {
    let mut out = String::from("# bisched instance v1\n");
    match inst.env() {
        MachineEnvironment::Identical { m } => {
            out.push_str(&format!("env P {m}\n"));
        }
        MachineEnvironment::Uniform { speeds } => {
            out.push_str("env Q\n");
            out.push_str(&format!("speeds {}\n", join(speeds)));
        }
        MachineEnvironment::Unrelated { .. } => out.push_str("env R\n"),
    }
    out.push_str(&format!("jobs {}\n", inst.num_jobs()));
    match inst.env() {
        MachineEnvironment::Unrelated { times } => {
            for row in times {
                out.push_str(&format!("times {}\n", join(row)));
            }
        }
        _ => out.push_str(&format!("processing {}\n", join(inst.processing_all()))),
    }
    let edges: Vec<(u32, u32)> = inst.graph().edges().collect();
    out.push_str(&format!("edges {}\n", edges.len()));
    for (u, v) in edges {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

fn join(v: &[u64]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parses the text form.
pub fn from_text(text: &str) -> Result<Instance, IoError> {
    let mut env: Option<String> = None;
    let mut machines: Option<usize> = None;
    let mut speeds: Option<Vec<u64>> = None;
    let mut processing: Option<Vec<u64>> = None;
    let mut times: Vec<Vec<u64>> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut edges_expected: Option<usize> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();

    let err = |line: usize, message: &str| IoError::Parse {
        line,
        message: message.to_string(),
    };
    let nums = |s: &str, line: usize| -> Result<Vec<u64>, IoError> {
        s.split_whitespace()
            .map(|t| t.parse::<u64>().map_err(|_| err(line, "expected integers")))
            .collect()
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (kw, rest) = line.split_once(' ').unwrap_or((line, ""));
        match kw {
            "env" => {
                let mut parts = rest.split_whitespace();
                let e = parts
                    .next()
                    .ok_or_else(|| err(line_no, "env needs P/Q/R"))?;
                env = Some(e.to_string());
                if e == "P" {
                    machines = Some(
                        parts
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| err(line_no, "env P needs a machine count"))?,
                    );
                }
            }
            "speeds" => speeds = Some(nums(rest, line_no)?),
            "processing" => processing = Some(nums(rest, line_no)?),
            "times" => times.push(nums(rest, line_no)?),
            "jobs" => {
                jobs = Some(
                    rest.trim()
                        .parse()
                        .map_err(|_| err(line_no, "jobs needs a count"))?,
                )
            }
            "edges" => {
                edges_expected = Some(
                    rest.trim()
                        .parse()
                        .map_err(|_| err(line_no, "edges needs a count"))?,
                )
            }
            _ => {
                // An edge line: "u v".
                let pair = nums(line, line_no)?;
                if pair.len() != 2 {
                    return Err(err(line_no, "expected `u v` edge or a keyword"));
                }
                edges.push((pair[0] as u32, pair[1] as u32));
            }
        }
    }
    if let Some(expected) = edges_expected {
        if edges.len() != expected {
            return Err(IoError::Invalid(format!(
                "declared {expected} edges, found {}",
                edges.len()
            )));
        }
    }
    let data = InstanceData {
        env: env.ok_or_else(|| IoError::Invalid("missing env".into()))?,
        machines,
        speeds,
        processing,
        times: if times.is_empty() { None } else { Some(times) },
        jobs: jobs.ok_or_else(|| IoError::Invalid("missing jobs".into()))?,
        edges,
    };
    data.into_instance()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_graph::Graph;

    fn sample_q() -> Instance {
        Instance::uniform(
            vec![4, 2, 1],
            vec![3, 1, 4, 1, 5],
            Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]),
        )
        .unwrap()
    }

    #[test]
    fn text_roundtrip_q() {
        let inst = sample_q();
        let text = to_text(&inst);
        let back = from_text(&text).unwrap();
        assert_eq!(back.speeds(), inst.speeds());
        assert_eq!(back.processing_all(), inst.processing_all());
        assert_eq!(back.graph(), inst.graph());
    }

    #[test]
    fn text_roundtrip_p_and_r() {
        let p = Instance::identical(3, vec![2, 2], Graph::from_edges(2, &[(0, 1)])).unwrap();
        let back = from_text(&to_text(&p)).unwrap();
        assert_eq!(back.num_machines(), 3);
        assert_eq!(back.env().alpha(), "P");

        let r = Instance::unrelated(vec![vec![1, 2, 3], vec![3, 2, 1]], Graph::path(3)).unwrap();
        let back = from_text(&to_text(&r)).unwrap();
        assert_eq!(back.env().alpha(), "R");
        assert_eq!(back.unrelated_time(1, 0), 3);
        assert_eq!(back.graph(), r.graph());
    }

    #[test]
    fn serde_json_roundtrip() {
        let inst = sample_q();
        let data = InstanceData::from_instance(&inst);
        let json = serde_json::to_string(&data).unwrap();
        let parsed: InstanceData = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, data);
        let back = parsed.into_instance().unwrap();
        assert_eq!(back.speeds(), inst.speeds());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# hello\n\nenv Q\nspeeds 2 1\njobs 2\nprocessing 1 1\nedges 1\n0 1\n";
        let inst = from_text(text).unwrap();
        assert_eq!(inst.num_jobs(), 2);
        assert!(inst.graph().has_edge(0, 1));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "env Q\nspeeds two one\n";
        match from_text(bad) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn structural_errors_reported() {
        assert!(matches!(
            from_text("jobs 2\nedges 0\n"),
            Err(IoError::Invalid(_))
        ));
        assert!(matches!(
            from_text("env Q\njobs 1\nprocessing 1\nedges 2\n"),
            Err(IoError::Invalid(_))
        ));
        // Q without speeds.
        assert!(matches!(
            from_text("env Q\njobs 1\nprocessing 1\nedges 0\n"),
            Err(IoError::Invalid(_))
        ));
        // Zero processing rejected by instance validation.
        assert!(matches!(
            from_text("env Q\nspeeds 1\njobs 1\nprocessing 0\nedges 0\n"),
            Err(IoError::Invalid(_))
        ));
    }

    #[test]
    fn env_p_needs_machine_count() {
        assert!(matches!(
            from_text("env P\njobs 1\nprocessing 1\nedges 0\n"),
            Err(IoError::Parse { line: 1, .. })
        ));
    }
}
