//! Scheduling instances: jobs, machine environments, incompatibility graph.
//!
//! An [`Instance`] bundles the three ingredients of the paper's model —
//! a machine environment (`P`, `Q`, or `R` in three-field notation), the
//! processing requirements, and the incompatibility graph over jobs — and
//! is the single input type of every algorithm in the workspace.

use crate::rational::Rat;
use bisched_graph::Graph;

/// Index of a job (also its vertex id in the incompatibility graph).
pub type JobId = u32;

/// Index of a machine, `0 .. m`.
pub type MachineId = u32;

/// The machine environment (`α` field of the `α|β|γ` notation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineEnvironment {
    /// `P`: identical machines; job `j` takes `p_j` everywhere.
    Identical {
        /// Number of machines.
        m: usize,
    },
    /// `Q`: uniform machines; machine `i` has speed `s_i ≥ 1` and job `j`
    /// takes `p_j / s_i`. The paper assumes `s_1 ≥ … ≥ s_m`; the
    /// constructor enforces it.
    Uniform {
        /// Speeds, non-increasing.
        speeds: Vec<u64>,
    },
    /// `R`: unrelated machines; `times[i][j]` is the processing time of job
    /// `j` on machine `i`, arbitrary.
    Unrelated {
        /// `m × n` processing-time matrix.
        times: Vec<Vec<u64>>,
    },
}

impl MachineEnvironment {
    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        match self {
            MachineEnvironment::Identical { m } => *m,
            MachineEnvironment::Uniform { speeds } => speeds.len(),
            MachineEnvironment::Unrelated { times } => times.len(),
        }
    }

    /// The `α` field of the three-field notation.
    pub fn alpha(&self) -> &'static str {
        match self {
            MachineEnvironment::Identical { .. } => "P",
            MachineEnvironment::Uniform { .. } => "Q",
            MachineEnvironment::Unrelated { .. } => "R",
        }
    }
}

/// Errors raised when assembling an [`Instance`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceError {
    /// Some processing requirement is zero (the paper requires naturals).
    ZeroProcessing {
        /// Offending job.
        job: JobId,
    },
    /// Some speed is zero.
    ZeroSpeed {
        /// Offending machine.
        machine: MachineId,
    },
    /// No machines.
    NoMachines,
    /// The unrelated-times matrix has a row of the wrong length.
    BadMatrixShape {
        /// Offending row (machine).
        machine: MachineId,
        /// Its length.
        got: usize,
        /// Expected length (`n`).
        expected: usize,
    },
    /// Processing vector length differs from the graph's vertex count.
    JobCountMismatch {
        /// Jobs implied by processing data.
        jobs: usize,
        /// Vertices in the incompatibility graph.
        vertices: usize,
    },
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::ZeroProcessing { job } => {
                write!(f, "job {job} has zero processing requirement")
            }
            InstanceError::ZeroSpeed { machine } => write!(f, "machine {machine} has zero speed"),
            InstanceError::NoMachines => write!(f, "instance has no machines"),
            InstanceError::BadMatrixShape {
                machine,
                got,
                expected,
            } => write!(
                f,
                "machine {machine} has {got} processing times, expected {expected}"
            ),
            InstanceError::JobCountMismatch { jobs, vertices } => write!(
                f,
                "{jobs} jobs but {vertices} vertices in the incompatibility graph"
            ),
        }
    }
}

impl std::error::Error for InstanceError {}

/// A scheduling instance `α | G | C_max`.
#[derive(Clone, Debug)]
pub struct Instance {
    graph: Graph,
    /// `p_j` for `P`/`Q`; for `R` this holds `min_i p_{i,j}` (a convenient
    /// lower-bound weight) and the matrix is authoritative.
    processing: Vec<u64>,
    env: MachineEnvironment,
}

impl Instance {
    /// Identical machines: `P m | G | C_max`.
    pub fn identical(m: usize, processing: Vec<u64>, graph: Graph) -> Result<Self, InstanceError> {
        if m == 0 {
            return Err(InstanceError::NoMachines);
        }
        Self::validated(processing, graph, MachineEnvironment::Identical { m })
    }

    /// Uniform machines: `Q | G | C_max`. Speeds are sorted non-increasing
    /// (the paper's convention `s_1 ≥ … ≥ s_m`).
    pub fn uniform(
        mut speeds: Vec<u64>,
        processing: Vec<u64>,
        graph: Graph,
    ) -> Result<Self, InstanceError> {
        if speeds.is_empty() {
            return Err(InstanceError::NoMachines);
        }
        if let Some(i) = speeds.iter().position(|&s| s == 0) {
            return Err(InstanceError::ZeroSpeed {
                machine: i as MachineId,
            });
        }
        speeds.sort_unstable_by(|a, b| b.cmp(a));
        Self::validated(processing, graph, MachineEnvironment::Uniform { speeds })
    }

    /// Unrelated machines: `R | G | C_max` from an `m × n` matrix.
    pub fn unrelated(times: Vec<Vec<u64>>, graph: Graph) -> Result<Self, InstanceError> {
        if times.is_empty() {
            return Err(InstanceError::NoMachines);
        }
        let n = graph.num_vertices();
        for (i, row) in times.iter().enumerate() {
            if row.len() != n {
                return Err(InstanceError::BadMatrixShape {
                    machine: i as MachineId,
                    got: row.len(),
                    expected: n,
                });
            }
            if let Some(j) = row.iter().position(|&p| p == 0) {
                return Err(InstanceError::ZeroProcessing { job: j as JobId });
            }
        }
        let processing = (0..n)
            .map(|j| times.iter().map(|row| row[j]).min().expect("m >= 1"))
            .collect();
        Ok(Instance {
            graph,
            processing,
            env: MachineEnvironment::Unrelated { times },
        })
    }

    fn validated(
        processing: Vec<u64>,
        graph: Graph,
        env: MachineEnvironment,
    ) -> Result<Self, InstanceError> {
        if processing.len() != graph.num_vertices() {
            return Err(InstanceError::JobCountMismatch {
                jobs: processing.len(),
                vertices: graph.num_vertices(),
            });
        }
        if let Some(j) = processing.iter().position(|&p| p == 0) {
            return Err(InstanceError::ZeroProcessing { job: j as JobId });
        }
        Ok(Instance {
            graph,
            processing,
            env,
        })
    }

    /// Number of jobs `n`.
    pub fn num_jobs(&self) -> usize {
        self.processing.len()
    }

    /// Number of machines `m`.
    pub fn num_machines(&self) -> usize {
        self.env.num_machines()
    }

    /// The incompatibility graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The machine environment.
    pub fn env(&self) -> &MachineEnvironment {
        &self.env
    }

    /// Processing requirement `p_j` (for `R`: `min_i p_{i,j}`).
    pub fn processing(&self, j: JobId) -> u64 {
        self.processing[j as usize]
    }

    /// The processing requirement vector.
    pub fn processing_all(&self) -> &[u64] {
        &self.processing
    }

    /// `Σ p_j` (for `R`: sum of per-job minima).
    pub fn total_processing(&self) -> u64 {
        self.processing.iter().sum()
    }

    /// `p_max` (for `R`: max over jobs of the per-job minimum).
    pub fn max_processing(&self) -> u64 {
        self.processing.iter().copied().max().unwrap_or(0)
    }

    /// Whether all jobs are unit (`p_j = 1`, the `β` restriction of
    /// Theorems 4, 8, and 19).
    pub fn is_unit(&self) -> bool {
        self.processing.iter().all(|&p| p == 1)
    }

    /// Speed of machine `i` (1 for identical; panics for unrelated, where
    /// speeds are meaningless).
    pub fn speed(&self, i: MachineId) -> u64 {
        match &self.env {
            MachineEnvironment::Identical { .. } => 1,
            MachineEnvironment::Uniform { speeds } => speeds[i as usize],
            MachineEnvironment::Unrelated { .. } => {
                panic!("unrelated machines have no speeds")
            }
        }
    }

    /// Speeds vector for `P`/`Q` environments (all ones for `P`).
    pub fn speeds(&self) -> Vec<u64> {
        match &self.env {
            MachineEnvironment::Identical { m } => vec![1; *m],
            MachineEnvironment::Uniform { speeds } => speeds.clone(),
            MachineEnvironment::Unrelated { .. } => {
                panic!("unrelated machines have no speeds")
            }
        }
    }

    /// Exact processing time of job `j` on machine `i`.
    pub fn time_on(&self, i: MachineId, j: JobId) -> Rat {
        match &self.env {
            MachineEnvironment::Identical { .. } => Rat::integer(self.processing[j as usize]),
            MachineEnvironment::Uniform { speeds } => {
                Rat::new(self.processing[j as usize], speeds[i as usize])
            }
            MachineEnvironment::Unrelated { times } => Rat::integer(times[i as usize][j as usize]),
        }
    }

    /// Raw unrelated time `p_{i,j}`; panics unless the environment is `R`.
    pub fn unrelated_time(&self, i: MachineId, j: JobId) -> u64 {
        match &self.env {
            MachineEnvironment::Unrelated { times } => times[i as usize][j as usize],
            _ => panic!("unrelated_time on a {} environment", self.env.alpha()),
        }
    }

    /// Three-field descriptor, e.g. `Q3 | G=bipartite, p_j=1 | C_max`.
    pub fn describe(&self) -> String {
        let beta = if self.is_unit() { ", p_j=1" } else { "" };
        format!(
            "{}{} | G{} | C_max",
            self.env.alpha(),
            self.num_machines(),
            beta
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_graph::Graph;

    #[test]
    fn uniform_sorts_speeds() {
        let inst = Instance::uniform(vec![1, 5, 3], vec![1, 1], Graph::empty(2)).unwrap();
        assert_eq!(inst.speeds(), vec![5, 3, 1]);
        assert_eq!(inst.speed(0), 5);
    }

    #[test]
    fn time_on_uniform_is_exact() {
        let inst = Instance::uniform(vec![3, 2], vec![7, 4], Graph::empty(2)).unwrap();
        assert_eq!(inst.time_on(0, 0), Rat::new(7, 3));
        assert_eq!(inst.time_on(1, 1), Rat::integer(2));
    }

    #[test]
    fn unrelated_min_projection() {
        let times = vec![vec![4, 9], vec![6, 2]];
        let inst = Instance::unrelated(times, Graph::empty(2)).unwrap();
        assert_eq!(inst.processing(0), 4);
        assert_eq!(inst.processing(1), 2);
        assert_eq!(inst.unrelated_time(1, 0), 6);
        assert_eq!(inst.time_on(0, 1), Rat::integer(9));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(
            Instance::identical(0, vec![1], Graph::empty(1)),
            Err(InstanceError::NoMachines)
        ));
        assert!(matches!(
            Instance::identical(2, vec![1, 0], Graph::empty(2)),
            Err(InstanceError::ZeroProcessing { job: 1 })
        ));
        assert!(matches!(
            Instance::uniform(vec![2, 0], vec![1], Graph::empty(1)),
            Err(InstanceError::ZeroSpeed { machine: 1 })
        ));
        assert!(matches!(
            Instance::identical(2, vec![1, 1, 1], Graph::empty(2)),
            Err(InstanceError::JobCountMismatch { .. })
        ));
        assert!(matches!(
            Instance::unrelated(vec![vec![1, 2], vec![3]], Graph::empty(2)),
            Err(InstanceError::BadMatrixShape { machine: 1, .. })
        ));
    }

    #[test]
    fn describe_three_field() {
        let inst = Instance::uniform(vec![2, 1, 1], vec![1, 1], Graph::empty(2)).unwrap();
        assert_eq!(inst.describe(), "Q3 | G, p_j=1 | C_max");
        let inst2 = Instance::identical(2, vec![3, 4], Graph::empty(2)).unwrap();
        assert_eq!(inst2.describe(), "P2 | G | C_max");
    }

    #[test]
    fn unit_detection_and_totals() {
        let inst = Instance::identical(1, vec![1, 1, 1], Graph::empty(3)).unwrap();
        assert!(inst.is_unit());
        assert_eq!(inst.total_processing(), 3);
        let inst2 = Instance::identical(1, vec![2, 1], Graph::empty(2)).unwrap();
        assert!(!inst2.is_unit());
        assert_eq!(inst2.max_processing(), 2);
    }
}
