//! # bisched-model
//!
//! Scheduling-model substrate for the `bisched` workspace: instances
//! (`P`/`Q`/`R` environments + incompatibility graph), schedules with exact
//! rational makespans, the paper's `C**_max` lower bound machinery
//! (Lemma 10), list scheduling onto machine groups, and workload generators
//! for the experiment harness.

#![warn(missing_docs)]
// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
pub mod bounds;
pub mod canonical;
pub mod generators;
pub mod instance;
pub mod io;
pub mod listsched;
pub mod rational;
pub mod schedule;

pub use bounds::{
    capacity_lower_bound, cstar_double_max, floor_capacities, floor_capacity, min_time_to_cover,
    unrelated_lower_bound,
};
pub use canonical::{canonicalize, Canonical};
pub use generators::{JobSizes, SpeedProfile, UnrelatedFamily};
pub use instance::{Instance, InstanceError, JobId, MachineEnvironment, MachineId};
pub use io::{from_text, to_text, InstanceData, IoError};
pub use listsched::{assign_min_completion_uniform, assign_min_completion_unrelated, lpt_order};
pub use rational::{gcd, Rat};
pub use schedule::{Schedule, ScheduleError};
