//! Schedules: job → machine assignments, makespans, feasibility.
//!
//! For makespan minimisation without precedence or release dates, a schedule
//! is fully determined by the assignment (jobs on one machine run
//! back-to-back in any order). Feasibility in the paper's model is the
//! incompatibility constraint: the jobs on any machine must form an
//! independent set of `G`.

use crate::instance::{Instance, JobId, MachineEnvironment, MachineId};
use crate::rational::Rat;

/// A complete assignment of jobs to machines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    assignment: Vec<MachineId>,
}

/// Why a schedule is infeasible for an instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// Assignment vector length differs from the number of jobs.
    WrongLength {
        /// Assignments provided.
        got: usize,
        /// Jobs in the instance.
        expected: usize,
    },
    /// Some job is assigned to a machine index `≥ m`.
    MachineOutOfRange {
        /// Offending job.
        job: JobId,
        /// Its machine.
        machine: MachineId,
    },
    /// Two incompatible jobs share a machine — the paper's core constraint.
    IncompatiblePair {
        /// The machine both jobs sit on.
        machine: MachineId,
        /// One endpoint of the violated edge.
        job_a: JobId,
        /// The other endpoint.
        job_b: JobId,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::WrongLength { got, expected } => {
                write!(f, "schedule assigns {got} jobs, instance has {expected}")
            }
            ScheduleError::MachineOutOfRange { job, machine } => {
                write!(f, "job {job} assigned to non-existent machine {machine}")
            }
            ScheduleError::IncompatiblePair {
                machine,
                job_a,
                job_b,
            } => write!(
                f,
                "incompatible jobs {job_a} and {job_b} share machine {machine}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Wraps an assignment vector (`assignment[j]` = machine of job `j`).
    pub fn new(assignment: Vec<MachineId>) -> Self {
        Schedule { assignment }
    }

    /// The machine of job `j`.
    #[inline]
    pub fn machine_of(&self, j: JobId) -> MachineId {
        self.assignment[j as usize]
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[MachineId] {
        &self.assignment
    }

    /// Number of assigned jobs.
    pub fn num_jobs(&self) -> usize {
        self.assignment.len()
    }

    /// Jobs on machine `i`, ascending.
    pub fn jobs_on(&self, i: MachineId) -> Vec<JobId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &mi)| mi == i)
            .map(|(j, _)| j as JobId)
            .collect()
    }

    /// Integer load of every machine: for `P`/`Q` the sum of `p_j`, for `R`
    /// the sum of `p_{i,j}` of the jobs placed there.
    pub fn loads(&self, inst: &Instance) -> Vec<u64> {
        let mut loads = vec![0u64; inst.num_machines()];
        for (j, &i) in self.assignment.iter().enumerate() {
            let p = match inst.env() {
                MachineEnvironment::Unrelated { times } => times[i as usize][j],
                _ => inst.processing(j as JobId),
            };
            loads[i as usize] += p;
        }
        loads
    }

    /// Exact makespan `C_max(S)`: for `Q`, `max_i load_i / s_i`; for `P`/`R`
    /// the maximum integer load.
    pub fn makespan(&self, inst: &Instance) -> Rat {
        let loads = self.loads(inst);
        match inst.env() {
            MachineEnvironment::Uniform { speeds } => loads
                .iter()
                .zip(speeds)
                .map(|(&l, &s)| Rat::new(l, s))
                .max()
                .unwrap_or(Rat::ZERO),
            _ => Rat::integer(loads.into_iter().max().unwrap_or(0)),
        }
    }

    /// Full feasibility check: shape, machine range, and the independence
    /// constraint on every machine.
    pub fn validate(&self, inst: &Instance) -> Result<(), ScheduleError> {
        if self.assignment.len() != inst.num_jobs() {
            return Err(ScheduleError::WrongLength {
                got: self.assignment.len(),
                expected: inst.num_jobs(),
            });
        }
        let m = inst.num_machines() as MachineId;
        for (j, &i) in self.assignment.iter().enumerate() {
            if i >= m {
                return Err(ScheduleError::MachineOutOfRange {
                    job: j as JobId,
                    machine: i,
                });
            }
        }
        for (u, v) in inst.graph().edges() {
            if self.assignment[u as usize] == self.assignment[v as usize] {
                return Err(ScheduleError::IncompatiblePair {
                    machine: self.assignment[u as usize],
                    job_a: u,
                    job_b: v,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_graph::Graph;

    fn simple_q() -> Instance {
        // 3 jobs of sizes 4, 2, 2; speeds 2, 1; edge between jobs 0 and 1.
        Instance::uniform(vec![2, 1], vec![4, 2, 2], Graph::from_edges(3, &[(0, 1)])).unwrap()
    }

    #[test]
    fn loads_and_makespan_uniform() {
        let inst = simple_q();
        let s = Schedule::new(vec![0, 1, 0]);
        assert_eq!(s.loads(&inst), vec![6, 2]);
        // max(6/2, 2/1) = 3
        assert_eq!(s.makespan(&inst), Rat::integer(3));
    }

    #[test]
    fn validate_catches_incompatibility() {
        let inst = simple_q();
        let bad = Schedule::new(vec![0, 0, 1]);
        assert_eq!(
            bad.validate(&inst),
            Err(ScheduleError::IncompatiblePair {
                machine: 0,
                job_a: 0,
                job_b: 1
            })
        );
        let good = Schedule::new(vec![0, 1, 1]);
        assert!(good.validate(&inst).is_ok());
    }

    #[test]
    fn validate_catches_shape_errors() {
        let inst = simple_q();
        assert!(matches!(
            Schedule::new(vec![0, 1]).validate(&inst),
            Err(ScheduleError::WrongLength {
                got: 2,
                expected: 3
            })
        ));
        assert!(matches!(
            Schedule::new(vec![0, 1, 7]).validate(&inst),
            Err(ScheduleError::MachineOutOfRange { job: 2, machine: 7 })
        ));
    }

    #[test]
    fn unrelated_loads_use_matrix() {
        let inst =
            Instance::unrelated(vec![vec![10, 1, 1], vec![1, 10, 10]], Graph::empty(3)).unwrap();
        let s = Schedule::new(vec![1, 0, 0]);
        assert_eq!(s.loads(&inst), vec![2, 1]);
        assert_eq!(s.makespan(&inst), Rat::integer(2));
    }

    #[test]
    fn jobs_on_partition() {
        let inst = simple_q();
        let s = Schedule::new(vec![0, 1, 0]);
        assert!(s.validate(&inst).is_ok());
        assert_eq!(s.jobs_on(0), vec![0, 2]);
        assert_eq!(s.jobs_on(1), vec![1]);
        assert_eq!(s.machine_of(2), 0);
    }

    #[test]
    fn empty_instance_makespan_zero() {
        let inst = Instance::identical(2, vec![], Graph::empty(0)).unwrap();
        let s = Schedule::new(vec![]);
        assert_eq!(s.makespan(&inst), Rat::ZERO);
        assert!(s.validate(&inst).is_ok());
    }
}
