//! Ring-buffer behaviour under real thread concurrency: N producer
//! threads emit into their own rings; the merged stream must be
//! timestamp-ordered, lossless below capacity, and drop-exact above it.

use std::sync::{Barrier, Mutex};

/// The recorder is process-global, so the tests in this file serialize.
static LOCK: Mutex<()> = Mutex::new(());

const THREADS: usize = 8;
const PER_THREAD: u64 = 500;

fn emit_from_threads(events_per_thread: u64) {
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for i in 0..events_per_thread {
                    // Payload encodes (thread, sequence) so the merge
                    // can be audited event by event.
                    bisched_obs::instant("ev", "test", "seq", t * 1_000_000 + i);
                }
            });
        }
    });
}

#[test]
fn merged_stream_is_timestamp_ordered_and_lossless_below_capacity() {
    let _g = LOCK.lock().unwrap();
    bisched_obs::start_recording(PER_THREAD as usize); // exactly enough
    emit_from_threads(PER_THREAD);
    let trace = bisched_obs::stop_recording();

    assert_eq!(trace.dropped, 0, "below capacity nothing may be dropped");
    assert_eq!(trace.events.len(), THREADS * PER_THREAD as usize);

    // Global merge order: non-decreasing timestamps.
    for w in trace.events.windows(2) {
        assert!(
            w[0].ts_us <= w[1].ts_us,
            "merged stream out of order: {} then {}",
            w[0].ts_us,
            w[1].ts_us
        );
    }

    // Per producer: every sequence number present exactly once, and the
    // per-thread substream (same emitting thread ⇒ same tid) preserves
    // both emission order and timestamp order.
    for t in 0..THREADS as u64 {
        let seqs: Vec<u64> = trace
            .events
            .iter()
            .filter(|e| e.arg / 1_000_000 == t)
            .map(|e| e.arg % 1_000_000)
            .collect();
        assert_eq!(seqs.len(), PER_THREAD as usize, "thread {t} lost events");
        let tids: std::collections::BTreeSet<u64> = trace
            .events
            .iter()
            .filter(|e| e.arg / 1_000_000 == t)
            .map(|e| e.tid)
            .collect();
        assert_eq!(tids.len(), 1, "one producer must map to one ring/tid");
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "thread {t} substream reordered");
        assert_eq!(sorted, (0..PER_THREAD).collect::<Vec<_>>());
    }
}

#[test]
fn drop_counter_is_exact_above_capacity() {
    let _g = LOCK.lock().unwrap();
    let capacity = 64u64;
    let overflow = 37u64;
    bisched_obs::start_recording(capacity as usize);
    emit_from_threads(capacity + overflow);
    let trace = bisched_obs::stop_recording();

    // Each thread keeps exactly `capacity` events and drops exactly
    // `overflow` — the counter is an exact tally, not an estimate.
    assert_eq!(trace.events.len(), THREADS * capacity as usize);
    assert_eq!(trace.dropped, THREADS as u64 * overflow);

    // What survives is each thread's prefix (drop-newest policy).
    for t in 0..THREADS as u64 {
        let seqs: Vec<u64> = trace
            .events
            .iter()
            .filter(|e| e.arg / 1_000_000 == t)
            .map(|e| e.arg % 1_000_000)
            .collect();
        let mut sorted = seqs;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..capacity).collect::<Vec<_>>());
    }
}

#[test]
fn concurrent_emission_with_spans_keeps_nesting_sane() {
    let _g = LOCK.lock().unwrap();
    bisched_obs::start_recording(4096);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for i in 0..50u64 {
                    let _s = bisched_obs::span_arg("work", "test", "i", i);
                    bisched_obs::instant("inner", "test", "i", i);
                }
            });
        }
    });
    let trace = bisched_obs::stop_recording();
    assert_eq!(trace.dropped, 0);
    assert_eq!(trace.events.len(), 4 * 50 * 2);
    // Every span's instant (same tid, same i) lies within the span.
    for span in trace
        .events
        .iter()
        .filter(|e| e.kind == bisched_obs::EventKind::Span)
    {
        let inner = trace
            .events
            .iter()
            .find(|e| {
                e.kind == bisched_obs::EventKind::Instant && e.tid == span.tid && e.arg == span.arg
            })
            .expect("each span emitted one instant");
        assert!(span.ts_us <= inner.ts_us && inner.ts_us <= span.ts_us + span.dur_us);
    }
}
