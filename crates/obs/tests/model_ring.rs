//! Model-checked protocol suite for the flight recorder's `Ring`
//! (compiled only under `RUSTFLAGS="--cfg bisched_model"`; an ordinary
//! `cargo test` skips the whole file).
//!
//! Invariants pinned here, each explored over the *complete*
//! interleaving space at the default preemption bound (the `complete`
//! assertion on every report is the coverage claim from the issue):
//!
//! * no torn or stale slot read across the `Release` length store;
//! * `dropped` accounting is exact under producer/drainer contention;
//! * stale-generation rings drain into nothing (mirror of the
//!   recorder's generation handoff, built from the same facade types);
//! * mutation tests: weakening the length publication to `Relaxed`
//!   (producer side) or the drain load to `Relaxed` (consumer side)
//!   MUST be caught — otherwise the checker itself is broken.
#![cfg(bisched_model)]

use bisched_obs::model::{self, Options};
use bisched_obs::ring::{Event, Ring};
use bisched_obs::sync::{AtomicU64, Mutex, Ordering};
use std::sync::Arc;

/// Concurrent drains must observe a consistent prefix: every event
/// below the published length is fully written (probe pattern intact)
/// and in push order.
#[test]
fn ring_drain_sees_only_fully_published_events() {
    let report = model::check("ring_publish", Options::default(), || {
        let ring = Arc::new(Ring::new(2, 7));
        let producer = {
            let ring = Arc::clone(&ring);
            model::spawn(move || {
                ring.push(Event::probe(1));
                ring.push(Event::probe(2));
            })
        };
        let drained = ring.drain();
        for (i, ev) in drained.iter().enumerate() {
            assert_eq!(ev.arg, (i + 1) as u64, "slot {i} torn or out of order");
            assert_eq!(ev.ts_us, (i + 1) as u64, "slot {i} half-written");
            assert_eq!(ev.tid, 7);
        }
        assert!(drained.len() <= 2);
        producer.join();
        let final_drain = ring.drain();
        assert_eq!(final_drain.len(), 2, "post-join drain must see everything");
        assert_eq!(ring.dropped_count(), 0);
    });
    assert!(report.complete, "exploration was budget-cut: {report:?}");
    assert!(report.schedules > 1, "scheduler found no concurrency");
}

/// `dropped` is exact: pushing `cap + k` events counts exactly `k`
/// drops, no matter how a concurrent drain interleaves.
#[test]
fn ring_dropped_accounting_exact_under_contention() {
    let report = model::check("ring_dropped", Options::default(), || {
        let ring = Arc::new(Ring::new(1, 0));
        let producer = {
            let ring = Arc::clone(&ring);
            model::spawn(move || {
                for i in 0..3 {
                    ring.push(Event::probe(i));
                }
            })
        };
        let mid = ring.drain().len();
        assert!(mid <= 1);
        producer.join();
        assert_eq!(ring.drain().len(), 1);
        assert_eq!(
            ring.dropped_count(),
            2,
            "capacity 1, 3 pushes ⇒ exactly 2 drops"
        );
    });
    assert!(report.complete, "exploration was budget-cut: {report:?}");
}

/// Mirror of the recorder's generation handoff (`start_recording` bumps
/// the generation; a thread holding a ring from an older generation
/// re-registers rather than writing into the new recording): a drain of
/// the *new* generation's registry never sees the stale ring's events.
#[test]
fn stale_generation_drains_empty() {
    let report = model::check("ring_generation", Options::default(), || {
        let generation = Arc::new(AtomicU64::new(1));
        let registry: Arc<Mutex<Vec<(u64, Arc<Ring>)>>> = Arc::new(Mutex::new(Vec::new()));

        // An emitting thread whose thread-local ring was minted under
        // generation 1.
        let emitter = {
            let generation = Arc::clone(&generation);
            let registry = Arc::clone(&registry);
            model::spawn(move || {
                let mut local: Option<(u64, Arc<Ring>)> = None;
                for i in 0..2 {
                    let gen_now = generation.load(Ordering::Relaxed);
                    let stale = local.as_ref().map(|(g, _)| *g != gen_now).unwrap_or(true);
                    if stale {
                        let ring = Arc::new(Ring::new(4, i));
                        registry.lock().unwrap().push((gen_now, Arc::clone(&ring)));
                        local = Some((gen_now, ring));
                    }
                    // Tag each event with the generation its ring was
                    // minted under: a cross-generation leak is then a
                    // value mismatch the drain below can assert on.
                    let (g, ring) = local.as_ref().unwrap();
                    ring.push(Event::probe(100 + *g));
                }
            })
        };

        // The controller: bump to generation 2 (a fresh recording) and
        // drain only current-generation rings, as stop_recording does.
        generation.fetch_add(1, Ordering::Relaxed);
        let gen_now = generation.load(Ordering::Relaxed);
        let rings: Vec<Arc<Ring>> = registry
            .lock()
            .unwrap()
            .iter()
            .filter(|(g, _)| *g == gen_now)
            .map(|(_, r)| Arc::clone(r))
            .collect();
        for ring in &rings {
            for ev in ring.drain() {
                assert_eq!(
                    ev.arg,
                    100 + gen_now,
                    "generation-{gen_now} drain observed a stale-generation event"
                );
            }
        }
        emitter.join();
    });
    assert!(report.complete, "exploration was budget-cut: {report:?}");
}

/// Mutation test (producer side): publishing the length with `Relaxed`
/// breaks the happens-before edge to the slot write — the checker must
/// flag the torn read.
#[test]
fn mutation_relaxed_length_publish_is_caught() {
    let violation =
        model::check_expect_violation("ring_relaxed_publish", Options::default(), || {
            let ring = Arc::new(Ring::new(2, 0));
            let producer = {
                let ring = Arc::clone(&ring);
                model::spawn(move || {
                    ring.push_relaxed_for_model(Event::probe(1));
                })
            };
            let _ = ring.drain();
            producer.join();
        });
    assert!(
        violation.message.contains("data race"),
        "expected a torn-read data race, got: {}",
        violation.message
    );
}

/// Mutation test (consumer side): a `Relaxed` length load in the drain
/// is just as broken as a `Relaxed` publish; rebuild the drain by hand
/// from facade parts and check the model still objects.
#[test]
fn mutation_relaxed_drain_load_is_caught() {
    let violation = model::check_expect_violation("ring_relaxed_drain", Options::default(), || {
        use bisched_obs::sync::{AtomicUsize, UnsafeCell};
        struct WeakRing {
            slot: UnsafeCell<u64>,
            len: AtomicUsize,
        }
        // SAFETY: intentionally unsound publication — the model's race
        // detector is expected to reject this type's protocol.
        unsafe impl Send for WeakRing {}
        // SAFETY: as above; this impl exists to be refuted.
        unsafe impl Sync for WeakRing {}

        let ring = Arc::new(WeakRing {
            slot: UnsafeCell::new(0),
            len: AtomicUsize::new(0),
        });
        let producer = {
            let ring = Arc::clone(&ring);
            model::spawn(move || {
                // SAFETY: unpublished slot, single writer (model-checked).
                unsafe { ring.slot.with_mut(|s| *s = 41) };
                ring.len.store(1, Ordering::Release);
            })
        };
        if ring.len.load(Ordering::Relaxed) == 1 {
            // SAFETY: the bug under test — Relaxed gave us no
            // happens-before edge, so this read races the write.
            let v = unsafe { ring.slot.with(|s| *s) };
            assert_eq!(v, 41);
        }
        producer.join();
    });
    assert!(
        violation.message.contains("data race"),
        "expected a data race, got: {}",
        violation.message
    );
}
