//! The flight recorder's per-thread event buffer, ported onto the
//! [`crate::sync`] facade so the `bisched_model` build can exhaustively
//! model-check its publish protocol (see `crates/obs/tests/model_ring.rs`
//! and `crates/analyze/README.md`).
//!
//! The module is `#[doc(hidden)]` public: the supported API is the
//! recorder front end in the crate root; this surface exists for the
//! model-checking and Miri suites, which need to drive a `Ring`
//! directly from multiple threads.
//!
//! ## Why Release/Acquire suffice
//!
//! A `Ring` is single-producer, multi-reader, append-only:
//!
//! 1. Only the owner thread stores to `len`, so its `Relaxed` load of
//!    `len` in [`Ring::push`] reads its own last store — no other
//!    thread ever writes it.
//! 2. A slot is written at most once, by the owner, strictly before the
//!    `Release` store of `len` that covers it; `len` is monotone.
//! 3. A drain `Acquire`-loads `len` and reads only slots below it. Each
//!    such slot's write is sequenced before some `Release` store of a
//!    length `> i`, which synchronizes-with the `Acquire` load the
//!    reader performed (reading from the latest store in the release
//!    sequence headed by it), so the write happens-before the read.
//!    A torn or stale slot read is therefore impossible.
//! 4. `dropped` is owner-incremented only, so `Relaxed` suffices; a
//!    drain that races a straggling producer may undercount *published*
//!    events but never miscounts drops (`stop_recording` reads it after
//!    the registry swap, and exactness under contention is pinned by
//!    the model suite).

use crate::sync::{AtomicU64, AtomicUsize, Ordering, UnsafeCell};
use crate::{EventKind, TraceEvent};

/// One recorded event. `Copy`, fixed-size, `&'static str`-keyed — built
/// and stored without touching the allocator.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Microseconds since the recorder epoch.
    pub ts_us: u64,
    /// Span duration (0 for instants/counters).
    pub dur_us: u64,
    /// How the event renders in the Chrome trace output.
    pub kind: EventKind,
    /// Event name.
    pub name: &'static str,
    /// Event category.
    pub cat: &'static str,
    /// Name of the integer payload.
    pub arg_name: &'static str,
    /// Integer payload.
    pub arg: u64,
}

pub(crate) const EMPTY_EVENT: Event = Event {
    ts_us: 0,
    dur_us: 0,
    kind: EventKind::Instant,
    name: "",
    cat: "",
    arg_name: "",
    arg: 0,
};

impl Event {
    /// A distinguishable test event carrying `i` in both timestamp and
    /// payload — the model/Miri suites use the pattern to detect torn
    /// or misattributed slot reads.
    pub fn probe(i: u64) -> Event {
        Event {
            ts_us: i,
            dur_us: 0,
            kind: EventKind::Instant,
            name: "probe",
            cat: "model",
            arg_name: "i",
            arg: i,
        }
    }
}

/// A single thread's append-only event buffer. The owning thread is the
/// only writer; slots are written once and published by a `Release`
/// store of `len`, making the post-stop drain race-free (the module
/// docs carry the full argument).
pub struct Ring {
    slots: Box<[UnsafeCell<Event>]>,
    /// Number of published events (`Release` on write, `Acquire` on
    /// drain). Monotone, never exceeds `slots.len()`.
    len: AtomicUsize,
    /// Events rejected because the buffer was full.
    dropped: AtomicU64,
    /// Small dense id for the owning thread, stable for the trace.
    tid: u64,
}

// SAFETY: sharing a `&Ring` across threads is sound because the only
// interior-mutable unsynchronized state is `slots`, and the protocol in
// the module docs (single writer, write-once slots, Release-published
// length, readers stay below an Acquire-loaded length) puts every slot
// write in happens-before order with every slot read. The model suite
// (`tests/model_ring.rs`) checks this claim on every interleaving up to
// the preemption bound.
unsafe impl Sync for Ring {}

// SAFETY: moving a `Ring` between threads adds no hazard beyond the
// `Sync` sharing argument above: the heap allocation it owns is
// address-stable, and `Event` is `Copy` `'static` data with no thread
// affinity. ("Owner thread" means whichever thread currently pushes —
// the protocol needs a unique writer, not a fixed one.)
unsafe impl Send for Ring {}

impl Ring {
    /// An empty ring with space for `capacity` events, attributed to
    /// thread id `tid` in drained traces.
    pub fn new(capacity: usize, tid: u64) -> Ring {
        let slots: Vec<UnsafeCell<Event>> = (0..capacity)
            .map(|_| UnsafeCell::new(EMPTY_EVENT))
            .collect();
        Ring {
            slots: slots.into_boxed_slice(),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            tid,
        }
    }

    /// Owner-thread-only append; drops (and counts) when full.
    pub fn push(&self, ev: Event) {
        let at = self.len.load(Ordering::Relaxed);
        if at >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: only the owner thread writes, and `at` has not been
        // published yet, so no reader is looking at this slot.
        unsafe {
            self.slots[at].with_mut(|slot| *slot = ev);
        }
        self.len.store(at + 1, Ordering::Release);
    }

    /// [`Ring::push`] with the length published `Relaxed` instead of
    /// `Release` — a deliberately broken variant the model suite uses as
    /// a mutation test: the checker must flag the resulting torn-read
    /// race, or it has lost its teeth. Model builds only; never a
    /// production code path.
    #[cfg(bisched_model)]
    pub fn push_relaxed_for_model(&self, ev: Event) {
        let at = self.len.load(Ordering::Relaxed);
        if at >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: same single-writer slot access as `push`; the point of
        // this variant is that the *publication* below is too weak, and
        // the model must catch exactly that.
        unsafe {
            self.slots[at].with_mut(|slot| *slot = ev);
        }
        self.len.store(at + 1, Ordering::Relaxed);
    }

    /// Copies out every published event (safe concurrently with a
    /// straggling producer: unpublished slots are simply not read).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let n = self.len.load(Ordering::Acquire).min(self.slots.len());
        (0..n)
            .map(|i| {
                // SAFETY: slot `i < n` was fully written before the
                // Release store that published it.
                let ev = unsafe { self.slots[i].with(|slot| *slot) };
                TraceEvent {
                    ts_us: ev.ts_us,
                    dur_us: ev.dur_us,
                    kind: ev.kind,
                    name: ev.name,
                    cat: ev.cat,
                    arg_name: ev.arg_name,
                    arg: ev.arg,
                    tid: self.tid,
                }
            })
            .collect()
    }

    /// Number of events rejected because the buffer was full.
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}
