//! The workspace's concurrency facade: `std::sync` types by day, a
//! model-checked instrumented runtime by night.
//!
//! Every lock-free protocol in the workspace — the flight recorder's
//! [`Ring`](crate::ring::Ring), `bisched_exact::SearchCtl`'s f64-bits
//! bound exchange, the service's shutdown/queue handoff — imports its
//! atomics, cells, and mutexes from here instead of `std`:
//!
//! * In a **normal build** every name in this module *is* the `std` item
//!   (a re-export) or a `#[repr(transparent)]` zero-cost wrapper whose
//!   accessors are `#[inline(always)]` pass-throughs. Release binaries
//!   compile the facade away entirely; the bench gate pins this.
//! * Under **`--cfg bisched_model`** the same names resolve to
//!   instrumented shims that report every operation to the deterministic
//!   scheduler in [`crate::model`], which exhaustively explores thread
//!   interleavings (DFS over schedule choices, bounded preemptions,
//!   seen-state hashing) and checks happens-before race freedom on every
//!   [`UnsafeCell`] access with vector clocks.
//!
//! The facade deliberately exposes only the subset of the `std` API the
//! workspace's protocols use; growing it is a one-line addition to the
//! instrumented macro below. Code ported onto the facade accesses
//! `UnsafeCell` contents through the loom-style [`UnsafeCell::with`] /
//! [`UnsafeCell::with_mut`] closures so the model build can observe the
//! access; in normal builds both compile to a bare `.get()` dereference.
//!
//! See `crates/analyze/README.md` for the checker's scope and limits.

pub use std::sync::atomic::Ordering;

#[cfg(not(bisched_model))]
mod imp {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
    pub use std::sync::{Mutex, MutexGuard};

    /// [`std::cell::UnsafeCell`] behind loom-style access closures, so
    /// the `bisched_model` build can observe (and race-check) every
    /// read and write. Normal builds inline both accessors down to the
    /// raw pointer dereference they wrap.
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        /// Wraps `value`.
        pub const fn new(value: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(value))
        }

        /// Immutable access to the contents.
        ///
        /// # Safety
        ///
        /// As for reading through [`std::cell::UnsafeCell::get`]: the
        /// caller must guarantee no concurrent mutable access for the
        /// duration of `f` (the model build checks this claim with
        /// vector clocks on every explored interleaving).
        #[inline(always)]
        pub unsafe fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Mutable access to the contents.
        ///
        /// # Safety
        ///
        /// As for writing through [`std::cell::UnsafeCell::get`]: the
        /// caller must guarantee exclusive access for the duration of
        /// `f` (model-checked, as above).
        #[inline(always)]
        pub unsafe fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }

        /// Exclusive access through a unique reference (safe: `&mut self`
        /// proves no aliasing).
        #[inline(always)]
        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut()
        }

        /// Unwraps the contents.
        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }
}

#[cfg(bisched_model)]
mod imp {
    //! Instrumented shims: every operation is a scheduling point of the
    //! controlled scheduler in [`crate::model`], plus the happens-before
    //! bookkeeping that powers its race detector. Outside a model run
    //! (no scheduler registered on this thread) every shim falls through
    //! to the native operation, so `bisched_model` builds still behave
    //! normally in ordinary tests.

    use crate::model;
    use std::sync::atomic::Ordering;

    macro_rules! instrumented_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ty, $val:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                native: $std,
            }

            impl $name {
                /// Creates a new atomic (const, like the `std` type).
                pub const fn new(v: $val) -> Self {
                    Self { native: <$std>::new(v) }
                }

                /// Instrumented `load`.
                pub fn load(&self, order: Ordering) -> $val {
                    model::atomic_op(
                        self as *const _ as usize,
                        model::AtomicKind::Load,
                        order,
                        concat!(stringify!($name), ".load"),
                        || self.native.load(Ordering::SeqCst) as u64,
                    ) as $val
                }

                /// Instrumented `store`.
                pub fn store(&self, v: $val, order: Ordering) {
                    model::atomic_op(
                        self as *const _ as usize,
                        model::AtomicKind::Store,
                        order,
                        concat!(stringify!($name), ".store"),
                        || {
                            self.native.store(v, Ordering::SeqCst);
                            v as u64
                        },
                    );
                }

                /// Instrumented `swap`.
                pub fn swap(&self, v: $val, order: Ordering) -> $val {
                    model::atomic_op(
                        self as *const _ as usize,
                        model::AtomicKind::Rmw,
                        order,
                        concat!(stringify!($name), ".swap"),
                        || self.native.swap(v, Ordering::SeqCst) as u64,
                    ) as $val
                }

                /// Unwraps the current value (unique access).
                pub fn into_inner(self) -> $val {
                    self.native.into_inner()
                }
            }
        };
    }

    instrumented_atomic!(
        /// Model-checked stand-in for [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    instrumented_atomic!(
        /// Model-checked stand-in for [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );

    impl AtomicU64 {
        /// Instrumented `fetch_add`.
        pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
            model::atomic_op(
                self as *const _ as usize,
                model::AtomicKind::Rmw,
                order,
                "AtomicU64.fetch_add",
                || self.native.fetch_add(v, Ordering::SeqCst),
            )
        }

        /// Instrumented `fetch_min`.
        pub fn fetch_min(&self, v: u64, order: Ordering) -> u64 {
            model::atomic_op(
                self as *const _ as usize,
                model::AtomicKind::Rmw,
                order,
                "AtomicU64.fetch_min",
                || self.native.fetch_min(v, Ordering::SeqCst),
            )
        }
    }

    impl AtomicUsize {
        /// Instrumented `fetch_add`.
        pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
            model::atomic_op(
                self as *const _ as usize,
                model::AtomicKind::Rmw,
                order,
                "AtomicUsize.fetch_add",
                || self.native.fetch_add(v, Ordering::SeqCst) as u64,
            ) as usize
        }
    }

    /// Model-checked stand-in for [`std::sync::atomic::AtomicBool`].
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        native: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic (const, like the `std` type).
        pub const fn new(v: bool) -> Self {
            Self {
                native: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Instrumented `load`.
        pub fn load(&self, order: Ordering) -> bool {
            model::atomic_op(
                self as *const _ as usize,
                model::AtomicKind::Load,
                order,
                "AtomicBool.load",
                || self.native.load(Ordering::SeqCst) as u64,
            ) != 0
        }

        /// Instrumented `store`.
        pub fn store(&self, v: bool, order: Ordering) {
            model::atomic_op(
                self as *const _ as usize,
                model::AtomicKind::Store,
                order,
                "AtomicBool.store",
                || {
                    self.native.store(v, Ordering::SeqCst);
                    v as u64
                },
            );
        }

        /// Instrumented `swap`.
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            model::atomic_op(
                self as *const _ as usize,
                model::AtomicKind::Rmw,
                order,
                "AtomicBool.swap",
                || self.native.swap(v, Ordering::SeqCst) as u64,
            ) != 0
        }
    }

    /// Model-checked stand-in for [`std::cell::UnsafeCell`]: every
    /// access is a scheduling point and a vector-clock race check.
    #[derive(Debug, Default)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        /// Wraps `value`.
        pub const fn new(value: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(value))
        }

        /// Immutable access; the model reports a violation if any write
        /// to this cell does not happen-before this read.
        ///
        /// # Safety
        ///
        /// Same contract as the normal-build accessor (no concurrent
        /// mutable access) — here the model enforces it.
        pub unsafe fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            model::cell_access(self as *const _ as usize, false);
            f(self.0.get())
        }

        /// Mutable access; the model reports a violation if any other
        /// access to this cell is concurrent with this write.
        ///
        /// # Safety
        ///
        /// Same contract as the normal-build accessor (exclusive
        /// access) — here the model enforces it.
        pub unsafe fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            model::cell_access(self as *const _ as usize, true);
            f(self.0.get())
        }

        /// Exclusive access through a unique reference.
        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut()
        }

        /// Unwraps the contents.
        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }

    /// Model-checked stand-in for [`std::sync::Mutex`]: `lock` blocks in
    /// the controlled scheduler until the owner releases (never in the
    /// OS), so lock-order deadlocks surface as model violations instead
    /// of hangs.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        native: std::sync::Mutex<T>,
    }

    /// Guard for the instrumented [`Mutex`]; releases at drop through a
    /// scheduler-visible unlock operation.
    pub struct MutexGuard<'a, T> {
        inner: Option<std::sync::MutexGuard<'a, T>>,
        addr: usize,
    }

    impl<T> Mutex<T> {
        /// Creates a new mutex (const, like the `std` type).
        pub const fn new(value: T) -> Self {
            Mutex {
                native: std::sync::Mutex::new(value),
            }
        }

        /// Instrumented `lock`; the error half of the `LockResult` is
        /// never produced inside a model run (the scheduler serializes
        /// lock holders, so the native mutex is never contended or
        /// poisoned there).
        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            let addr = self as *const _ as usize;
            model::mutex_lock(addr);
            match self.native.lock() {
                Ok(inner) => Ok(MutexGuard {
                    inner: Some(inner),
                    addr,
                }),
                Err(poison) => {
                    let inner = poison.into_inner();
                    Err(std::sync::PoisonError::new(MutexGuard {
                        inner: Some(inner),
                        addr,
                    }))
                }
            }
        }

        /// Unwraps the protected value (unique access).
        pub fn into_inner(self) -> std::sync::LockResult<T> {
            self.native.into_inner()
        }

        /// Exclusive access through a unique reference.
        pub fn get_mut(&mut self) -> std::sync::LockResult<&mut T> {
            self.native.get_mut()
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard accessed after drop")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard accessed after drop")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the native guard first so the scheduler-visible
            // unlock hands a genuinely free mutex to the next thread.
            drop(self.inner.take());
            model::mutex_unlock(self.addr);
        }
    }
}

pub use imp::*;
