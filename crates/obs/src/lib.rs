//! # bisched-obs — the workspace flight recorder
//!
//! An in-crate, dependency-free tracing substrate: per-thread lock-free
//! event buffers behind a guard-based span/instant/counter API that
//! compiles down to **one relaxed atomic load** when recording is off.
//! Engines call [`span`], [`instant`], and [`counter`] freely from their
//! hot paths; nothing blocks, nothing allocates after ring creation, and
//! a full buffer drops new events (counted exactly in
//! [`Trace::dropped`]) rather than stalling the producer.
//!
//! ## Life cycle
//!
//! ```
//! bisched_obs::start_recording(4096);          // capacity per thread
//! {
//!     let _s = bisched_obs::span("solve", "engine");
//!     bisched_obs::instant("incumbent", "bnb", "makespan", 17);
//!     bisched_obs::counter("layer_width", "fptas", 123);
//! }
//! let trace = bisched_obs::stop_recording();
//! assert_eq!(trace.dropped, 0);
//! assert_eq!(trace.events.len(), 3);
//! let json = trace.to_chrome_json();           // chrome://tracing / Perfetto
//! assert!(json.starts_with("{\"traceEvents\":["));
//! ```
//!
//! ## Design
//!
//! * One global `ENABLED: AtomicBool`. Every emission site loads it with
//!   `Ordering::Relaxed` and returns immediately when off — the entire
//!   disabled-path cost.
//! * Each emitting thread owns one append-only buffer of `Copy` events
//!   (`Box<[UnsafeCell<Event>]>`). Only the owner thread writes; slots
//!   are written at most once and published by a `Release` store of the
//!   ring's length, so a concurrent drain (`Acquire` load) sees only
//!   fully written events and can never observe a torn slot.
//! * Buffers register themselves in a global registry under a `Mutex`,
//!   taken once per thread per recording generation — never on the
//!   per-event path.
//! * [`stop_recording`] swaps the registry out, merges every thread's
//!   events into one timestamp-ordered stream, and sums the per-ring
//!   drop counters. A new [`start_recording`] bumps the generation, so
//!   stale thread-local rings from a previous recording are ignored.
//!
//! Event payloads are deliberately `Copy` and `&'static str`-keyed: no
//! formatting, hashing, or allocation happens at emission time.

#![warn(missing_docs)]

pub mod log;
#[cfg(bisched_model)]
pub mod model;
pub mod names;
mod profile;
#[doc(hidden)]
pub mod ring;
pub mod sync;
mod trace;

pub use profile::{Profile, ProfileRow};
pub use trace::{Trace, TraceEvent};

use ring::{Event, Ring};
use std::cell::RefCell;
// The recorder's process-global control plane (enable flag, generation,
// registry) deliberately stays on the `std` primitives: model suites
// drive `ring::Ring` instances directly, and keeping the globals native
// means a `bisched_model` build of downstream crates records normally
// outside of model runs.
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// What an [`Event`] renders as in the Chrome trace-event output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span (`ph: "X"`): `ts` + `dur`.
    Span,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`): value plotted over time.
    Counter,
}

/// The one flag every emission site checks. Relaxed is sufficient: a
/// site that narrowly misses a toggle merely records (or skips) one
/// borderline event.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Recording generation; bumped by [`start_recording`] so thread-local
/// rings from an earlier recording are not written into the new one.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// Per-thread ring capacity for the current recording.
static CAPACITY: AtomicUsize = AtomicUsize::new(0);
/// Dense thread ids handed to rings in registration order.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the recorder's first use; the `ts` domain of every
/// event in a process's traces.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

thread_local! {
    /// This thread's ring plus the generation it was created under.
    static LOCAL: RefCell<Option<(u64, Arc<Ring>)>> = const { RefCell::new(None) };
}

/// Is recording on? One relaxed load — the entire disabled-path cost of
/// every instrumentation site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts recording with the given per-thread event capacity. Resets any
/// previous (un-stopped) recording's buffers. Threads allocate their
/// ring lazily on first emission.
pub fn start_recording(capacity_per_thread: usize) {
    let mut reg = REGISTRY.lock().unwrap();
    reg.clear();
    CAPACITY.store(capacity_per_thread.max(1), Ordering::Relaxed);
    GENERATION.fetch_add(1, Ordering::Relaxed);
    epoch(); // pin the timestamp origin before any event
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stops recording and returns the merged, timestamp-ordered trace with
/// the exact count of events dropped to the capacity bound.
pub fn stop_recording() -> Trace {
    ENABLED.store(false, Ordering::Relaxed);
    let rings: Vec<Arc<Ring>> = std::mem::take(&mut *REGISTRY.lock().unwrap());
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut dropped = 0u64;
    for ring in &rings {
        events.extend(ring.drain());
        dropped += ring.dropped_count();
    }
    trace::sort_events(&mut events);
    Trace { events, dropped }
}

/// Runs `f` with this thread's current-generation ring, creating and
/// registering it if needed.
fn with_ring(f: impl FnOnce(&Ring)) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let gen = GENERATION.load(Ordering::Relaxed);
        let stale = match &*slot {
            Some((g, _)) => *g != gen,
            None => true,
        };
        if stale {
            let ring = Arc::new(Ring::new(
                CAPACITY.load(Ordering::Relaxed),
                NEXT_TID.fetch_add(1, Ordering::Relaxed),
            ));
            REGISTRY.lock().unwrap().push(Arc::clone(&ring));
            *slot = Some((gen, ring));
        }
        let (_, ring) = slot.as_ref().unwrap();
        f(ring);
    });
}

fn emit(ev: Event) {
    with_ring(|ring| ring.push(ev));
}

/// Records a point-in-time marker with one integer payload.
#[inline]
pub fn instant(name: &'static str, cat: &'static str, arg_name: &'static str, arg: u64) {
    if !enabled() {
        return;
    }
    emit(Event {
        ts_us: now_us(),
        dur_us: 0,
        kind: EventKind::Instant,
        name,
        cat,
        arg_name,
        arg,
    });
}

/// Records a counter sample (`value` plotted over time under `name`).
#[inline]
pub fn counter(name: &'static str, cat: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    emit(Event {
        ts_us: now_us(),
        dur_us: 0,
        kind: EventKind::Counter,
        name,
        cat,
        arg_name: "value",
        arg: value,
    });
}

/// Opens a span; the returned guard records a complete (`ph: "X"`) event
/// when dropped. Inert — a no-op holding no timestamp — when recording
/// is off at open time.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    span_arg(name, cat, "", 0)
}

/// [`span`] with one integer payload attached to the completed event.
#[inline]
pub fn span_arg(
    name: &'static str,
    cat: &'static str,
    arg_name: &'static str,
    arg: u64,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            start_us: 0,
            name,
            cat,
            arg_name,
            arg,
            active: false,
        };
    }
    SpanGuard {
        start_us: now_us(),
        name,
        cat,
        arg_name,
        arg,
        active: true,
    }
}

/// Guard for an open span; see [`span`].
#[must_use = "a span guard records its event when dropped"]
pub struct SpanGuard {
    start_us: u64,
    name: &'static str,
    cat: &'static str,
    arg_name: &'static str,
    arg: u64,
    active: bool,
}

impl SpanGuard {
    /// Replaces the span's integer payload (e.g. a result computed
    /// inside the span).
    pub fn set_arg(&mut self, arg_name: &'static str, arg: u64) {
        self.arg_name = arg_name;
        self.arg = arg;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // An inert guard stays inert even if recording started meanwhile
        // (it holds no meaningful start timestamp); an active guard still
        // records if recording stopped, which the drain simply ignores.
        if !self.active || !enabled() {
            return;
        }
        let end = now_us();
        emit(Event {
            ts_us: self.start_us,
            dur_us: end.saturating_sub(self.start_us),
            kind: EventKind::Span,
            name: self.name,
            cat: self.cat,
            arg_name: self.arg_name,
            arg: self.arg,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; tests that record serialize on
    // this lock so they cannot interleave generations.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recorder_emits_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        assert!(!enabled());
        instant("x", "test", "v", 1);
        counter("c", "test", 2);
        drop(span("s", "test"));
        let trace = {
            start_recording(16);
            stop_recording()
        };
        assert!(trace.events.is_empty());
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn spans_instants_and_counters_round_trip() {
        let _g = TEST_LOCK.lock().unwrap();
        start_recording(64);
        {
            let mut s = span("outer", "test");
            s.set_arg("answer", 42);
            instant("mark", "test", "k", 7);
            counter("width", "test", 9);
        }
        let trace = stop_recording();
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.events.len(), 3);
        let by_name = |n: &str| trace.events.iter().find(|e| e.name == n).unwrap();
        let outer = by_name("outer");
        assert_eq!(outer.kind, EventKind::Span);
        assert_eq!((outer.arg_name, outer.arg), ("answer", 42));
        assert_eq!(by_name("mark").kind, EventKind::Instant);
        assert_eq!(by_name("width").kind, EventKind::Counter);
        // Events are timestamp-ordered and spans nest: the instant falls
        // inside [outer.ts, outer.ts + dur].
        let m = by_name("mark");
        assert!(outer.ts_us <= m.ts_us && m.ts_us <= outer.ts_us + outer.dur_us);
    }

    #[test]
    fn full_ring_drops_exactly_the_overflow() {
        let _g = TEST_LOCK.lock().unwrap();
        start_recording(8);
        for i in 0..20 {
            instant("e", "test", "i", i);
        }
        let trace = stop_recording();
        assert_eq!(trace.events.len(), 8);
        assert_eq!(trace.dropped, 12);
    }

    #[test]
    fn restart_discards_previous_generation() {
        let _g = TEST_LOCK.lock().unwrap();
        start_recording(16);
        instant("old", "test", "", 0);
        // No stop: a fresh start must still leave the old event behind.
        start_recording(16);
        instant("new", "test", "", 0);
        let trace = stop_recording();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].name, "new");
    }
}
