//! A merged recording and its Chrome trace-event JSON rendering.

use crate::EventKind;
use std::fmt::Write as _;

/// One event in a merged [`Trace`], tagged with its emitting thread.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Microseconds since the recorder epoch (span start for spans).
    pub ts_us: u64,
    /// Span duration in microseconds (0 for instants and counters).
    pub dur_us: u64,
    /// Render shape: span / instant / counter.
    pub kind: EventKind,
    /// Event name (the trace row label).
    pub name: &'static str,
    /// Category (`cat` in the trace; filterable in Perfetto).
    pub cat: &'static str,
    /// Name of the integer payload (empty when there is none).
    pub arg_name: &'static str,
    /// Integer payload.
    pub arg: u64,
    /// Dense id of the emitting thread.
    pub tid: u64,
}

/// Everything one recording captured: a timestamp-ordered event stream
/// and the exact number of events dropped to the capacity bound.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Merged events, sorted by `(ts_us, tid)`.
    pub events: Vec<TraceEvent>,
    /// Events rejected because a thread's ring was full.
    pub dropped: u64,
}

/// Orders a merged event stream for emission: **stable** sort by
/// `(ts_us, tid)` only. Stability matters — events a single thread
/// pushed at the same microsecond keep their drain (= emission) order,
/// so Perfetto renders identical recordings identically; sorting by any
/// further key (e.g. duration) would reorder same-timestamp events
/// within a thread and break that guarantee.
pub(crate) fn sort_events(events: &mut [TraceEvent]) {
    events.sort_by_key(|e| (e.ts_us, e.tid));
}

/// Minimal JSON string escape (shared with the JSON log format).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Trace {
    /// Renders the trace in Chrome trace-event JSON (object form), ready
    /// for `chrome://tracing` or <https://ui.perfetto.dev>. Spans become
    /// complete (`"X"`) events, instants `"i"` (process-scoped), and
    /// counters `"C"`; the drop count rides in `otherData`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_into(&mut out, ev.name);
            out.push_str("\",\"cat\":\"");
            escape_into(&mut out, if ev.cat.is_empty() { "misc" } else { ev.cat });
            let _ = write!(out, "\",\"pid\":1,\"tid\":{},\"ts\":{}", ev.tid, ev.ts_us);
            match ev.kind {
                EventKind::Span => {
                    let _ = write!(out, ",\"ph\":\"X\",\"dur\":{}", ev.dur_us);
                }
                EventKind::Instant => out.push_str(",\"ph\":\"i\",\"s\":\"p\""),
                EventKind::Counter => out.push_str(",\"ph\":\"C\""),
            }
            out.push_str(",\"args\":{");
            if !ev.arg_name.is_empty() {
                out.push('"');
                escape_into(&mut out, ev.arg_name);
                let _ = write!(out, "\":{}", ev.arg);
            }
            out.push_str("}}");
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":{}}}}}",
            self.dropped
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_is_stable_within_a_thread_at_equal_timestamps() {
        let ev = |ts: u64, tid: u64, dur: u64, name: &'static str| TraceEvent {
            ts_us: ts,
            dur_us: dur,
            kind: EventKind::Span,
            name,
            cat: "test",
            arg_name: "",
            arg: 0,
            tid,
        };
        // Thread 1 drained (a, b, c) at the same microsecond with
        // durations that a (ts, tid, dur) sort would reorder; thread 0
        // arrives later in the merged vec but sorts first.
        let mut events = vec![
            ev(5, 1, 3, "a"),
            ev(5, 1, 9, "b"),
            ev(5, 1, 1, "c"),
            ev(5, 0, 2, "z"),
            ev(4, 1, 0, "first"),
        ];
        sort_events(&mut events);
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["first", "z", "a", "b", "c"]);
    }

    #[test]
    fn chrome_json_is_well_formed_and_typed() {
        let trace = Trace {
            events: vec![
                TraceEvent {
                    ts_us: 10,
                    dur_us: 5,
                    kind: EventKind::Span,
                    name: "solve \"x\"",
                    cat: "engine",
                    arg_name: "nodes",
                    arg: 3,
                    tid: 0,
                },
                TraceEvent {
                    ts_us: 12,
                    dur_us: 0,
                    kind: EventKind::Instant,
                    name: "incumbent",
                    cat: "",
                    arg_name: "",
                    arg: 0,
                    tid: 1,
                },
                TraceEvent {
                    ts_us: 13,
                    dur_us: 0,
                    kind: EventKind::Counter,
                    name: "width",
                    cat: "fptas",
                    arg_name: "value",
                    arg: 42,
                    tid: 1,
                },
            ],
            dropped: 2,
        };
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\",\"dur\":5"));
        assert!(json.contains("\"ph\":\"i\",\"s\":\"p\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("solve \\\"x\\\"")); // quotes escaped
        assert!(json.contains("\"cat\":\"misc\"")); // empty cat defaulted
        assert!(json.contains("\"dropped_events\":2"));
        // Balanced braces/brackets — a cheap well-formedness probe (no
        // string in the fixture contains unbalanced delimiters).
        let bal =
            |open: char, close: char| json.matches(open).count() == json.matches(close).count();
        assert!(bal('{', '}') && bal('[', ']'));
    }
}
