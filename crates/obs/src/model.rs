//! A bounded model checker for the workspace's lock-free protocols
//! (compiled only under `--cfg bisched_model`).
//!
//! [`check`] runs a closure under a **deterministic controlled
//! scheduler**: every operation on a [`crate::sync`] facade type
//! (atomic load/store/RMW, `UnsafeCell` access, mutex lock/unlock,
//! spawn/join) is a scheduling point where exactly one thread is allowed
//! to proceed. A depth-first search over those choices enumerates every
//! interleaving, subject to:
//!
//! * a **preemption bound** (context switches away from a runnable
//!   thread): classic Musuvathi–Qadeer bounding, since almost all
//!   protocol bugs need very few preemptions to surface;
//! * **seen-state hashing**: two interleavings reaching the same
//!   (thread histories, shadow memory, happens-before) state have the
//!   same future, so the subtree is explored once. Location identity in
//!   the hash is the *first-touch fingerprint* (op kind + toucher
//!   history), not the allocation address, so the hash is stable across
//!   re-executions; per-location contributions combine orderlessly.
//!
//! ## Memory model
//!
//! Values are **sequentially consistent** (every load observes the
//! latest store — no store buffering), while *synchronization* is
//! tracked precisely with vector clocks: `Release` stores publish the
//! writer's clock, `Acquire` loads join it, RMWs continue release
//! sequences, mutexes release/acquire at unlock/lock, spawn/join edges
//! are inherited. Every [`crate::sync::UnsafeCell`] access is checked
//! for happens-before data-race freedom against that clock order — a
//! torn read is reported even though the *values* explored are SC. This
//! is the loom approach: it cannot exhibit stale-value executions, but
//! it catches exactly the class of bug that breaks the workspace's
//! protocols (publishing data through an insufficiently-ordered flag),
//! and the `Relaxed`-publish mutation suites pin that it does.
//!
//! Assumptions the checker makes of a model (all hold for the suites in
//! this repo, and `crates/analyze/README.md` documents them):
//!
//! * the closure is deterministic given the schedule (no wall-clock, no
//!   ambient randomness);
//! * ghost state (plain `std` bookkeeping inside a model) is never held
//!   locked across a facade operation;
//! * shared locations are created in deterministic order (first-touch
//!   fingerprints are then stable), which holds when models build their
//!   shared state before spawning.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What kind of atomic operation a facade shim is reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomicKind {
    /// A plain load.
    Load,
    /// A plain store.
    Store,
    /// A read-modify-write (`swap`, `fetch_add`, `fetch_min`, …).
    Rmw,
}

/// Exploration limits for one [`check`] call.
#[derive(Clone, Debug)]
pub struct Options {
    /// Maximum context switches away from a still-runnable thread per
    /// interleaving (`None` = unbounded: the full interleaving space).
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules; hitting it marks the report
    /// incomplete rather than looping forever.
    pub max_schedules: usize,
    /// Hard cap on scheduling points in a single schedule.
    pub max_steps: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            // The acceptance bar for the workspace's protocol models:
            // every interleaving reachable with at most two preemptions.
            preemption_bound: Some(2),
            max_schedules: 500_000,
            max_steps: 20_000,
        }
    }
}

impl Options {
    /// The full interleaving space: no preemption bound.
    pub fn unbounded() -> Self {
        Options {
            preemption_bound: None,
            ..Options::default()
        }
    }
}

/// What one [`check`] exploration did.
#[derive(Clone, Debug)]
pub struct Report {
    /// Interleavings executed (including seen-state-pruned prefixes).
    pub schedules: usize,
    /// Runs abandoned early because their state was already explored.
    pub pruned: usize,
    /// Deepest schedule (in scheduling points) encountered.
    pub max_depth: usize,
    /// `true` when the DFS exhausted the (bounded) interleaving space —
    /// the coverage claim; `false` when a budget in [`Options`] cut it.
    pub complete: bool,
}

/// A counterexample: the invariant that failed and the interleaving
/// that reached it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The panic message of the failed assertion (or the checker's own
    /// race/deadlock diagnosis).
    pub message: String,
    /// Human-readable trace of every scheduling point up to the
    /// failure: `T<tid> <op> = <value>` lines.
    pub trace: Vec<String>,
    /// The chosen thread at each scheduling point (replayable).
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model violation: {}", self.message)?;
        writeln!(f, "schedule (thread per step): {:?}", self.schedule)?;
        writeln!(f, "trace:")?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Thread-side plumbing
// ---------------------------------------------------------------------

/// Marker payload for panics that abandon a schedule (not violations).
struct AbortToken;

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Exec>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn current() -> Option<(Arc<Exec>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Facade hook: an atomic operation. Outside a model run the native
/// closure executes directly.
pub(crate) fn atomic_op(
    addr: usize,
    kind: AtomicKind,
    ord: Ordering,
    desc: &'static str,
    native: impl FnOnce() -> u64,
) -> u64 {
    match current() {
        None => native(),
        Some((exec, tid)) => exec.scheduled_op(
            tid,
            Pending::Atomic {
                addr,
                kind,
                ord,
                desc,
            },
            native,
        ),
    }
}

/// Facade hook: an `UnsafeCell` access (`write == true` for `with_mut`).
pub(crate) fn cell_access(addr: usize, write: bool) {
    if let Some((exec, tid)) = current() {
        exec.scheduled_op(tid, Pending::Cell { addr, write }, || 0);
    }
}

/// Facade hook: block until the model mutex at `addr` is free, then
/// take it.
pub(crate) fn mutex_lock(addr: usize) {
    if let Some((exec, tid)) = current() {
        exec.scheduled_op(tid, Pending::MutexLock { addr }, || 0);
    }
}

/// Facade hook: release the model mutex at `addr`. Never panics while
/// unwinding (guards drop during aborts), at the cost of skipping the
/// scheduling point there.
pub(crate) fn mutex_unlock(addr: usize) {
    let Some((exec, tid)) = current() else { return };
    if std::thread::panicking() {
        // Unwinding through a guard: just mark the mutex free so the
        // abort drain can finish; the run is already abandoned.
        let mut st = exec.state.lock().unwrap();
        if let Some(id) = st.addr_ids.get(&addr).copied() {
            if let Some(m) = st.mutexes.get_mut(&id) {
                m.owner = None;
            }
        }
        exec.cv.notify_all();
        return;
    }
    exec.scheduled_op(tid, Pending::MutexUnlock { addr }, || 0);
}

/// Spawns a model thread. Must be called from inside a [`check`]
/// closure; the child participates in the controlled schedule.
pub fn spawn<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> JoinHandle<T> {
    let (exec, tid) = current().expect("model::spawn outside a model run");
    // The spawn is a scheduling point; `apply` allocates the child while
    // the grant holds the state lock and hands its tid back as the value.
    let child_tid = exec.scheduled_op(tid, Pending::Spawn, || 0) as usize;
    let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let exec2 = Arc::clone(&exec);
    let os = std::thread::Builder::new()
        .name(format!("bisched-model-{child_tid}"))
        .spawn(move || {
            run_model_thread(exec2, child_tid, move || {
                let v = f();
                *slot.lock().unwrap() = Some(v);
            });
        })
        .expect("spawn model thread");
    exec.state.lock().unwrap().os_handles.push(os);
    JoinHandle {
        exec,
        tid: child_tid,
        result,
    }
}

/// Handle to a model thread; see [`spawn`].
pub struct JoinHandle<T> {
    exec: Arc<Exec>,
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (in the model scheduler) until the thread finishes and
    /// returns its value, inheriting its happens-before edges.
    pub fn join(self) -> T {
        let (exec, me) = current().expect("JoinHandle::join outside a model run");
        debug_assert!(Arc::ptr_eq(&exec, &self.exec));
        exec.scheduled_op(me, Pending::Join { target: self.tid }, || 0);
        self.result
            .lock()
            .unwrap()
            .take()
            .expect("joined model thread left no result")
    }
}

/// Wrapper body shared by thread 0 and spawned children: registers with
/// the exec, waits for its start grant, runs `f`, classifies panics.
fn run_model_thread(exec: Arc<Exec>, tid: usize, f: impl FnOnce()) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        exec.scheduled_op(tid, Pending::Start, || 0);
        f();
    }));
    let mut st = exec.state.lock().unwrap();
    if let Err(payload) = outcome {
        if payload.downcast_ref::<AbortToken>().is_none() && st.violation.is_none() {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "model thread panicked (non-string payload)".into());
            st.violation = Some(Violation {
                message: format!("thread T{tid}: {message}"),
                trace: st.trace.clone(),
                schedule: st.choice_trace.clone(),
            });
        }
    }
    st.threads[tid].status = Status::Finished;
    exec.cv.notify_all();
    drop(st);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

// ---------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Pending {
    Start,
    Spawn,
    Atomic {
        addr: usize,
        kind: AtomicKind,
        ord: Ordering,
        desc: &'static str,
    },
    Cell {
        addr: usize,
        write: bool,
    },
    MutexLock {
        addr: usize,
    },
    MutexUnlock {
        addr: usize,
    },
    Join {
        target: usize,
    },
}

#[derive(Clone, Debug)]
enum Status {
    /// Allocated by a spawn, OS thread not yet parked at its start op.
    Registering,
    /// Parked at a scheduling point, waiting for a grant.
    Wants(Pending),
    /// Granted; executing its operation.
    Granted,
    /// Between operations, running uninstrumented user code.
    Running,
    Finished,
}

type VClock = Vec<u32>;

fn clock_join(into: &mut VClock, other: &VClock) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (i, &v) in other.iter().enumerate() {
        if into[i] < v {
            into[i] = v;
        }
    }
}

#[derive(Clone, Debug)]
struct AtomicLoc {
    /// Release message: the publishing clock an acquire load joins.
    msg: Option<VClock>,
    /// Shadow of the current value (for state hashing).
    val: u64,
}

#[derive(Clone, Debug, Default)]
struct CellLoc {
    /// Last write: `(tid, epoch)`, plus the full clock for diagnostics.
    last_write: Option<(usize, u32)>,
    /// Per-thread epoch of each thread's latest read.
    readers: Vec<u32>,
}

#[derive(Clone, Debug, Default)]
struct MutexLoc {
    owner: Option<usize>,
    release: VClock,
}

struct LocMeta {
    /// Schedule-invariant identity: hash of (first toucher's history at
    /// first touch, op description). Used instead of the id in state
    /// hashes so hashing is stable across re-executions.
    fingerprint: u64,
}

struct St {
    threads: Vec<ThreadSlot>,
    registering: usize,
    aborting: bool,
    violation: Option<Violation>,
    trace: Vec<String>,
    choice_trace: Vec<usize>,
    os_handles: Vec<std::thread::JoinHandle<()>>,

    clocks: Vec<VClock>,
    histories: Vec<u64>,
    addr_ids: HashMap<usize, u32>,
    loc_meta: Vec<LocMeta>,
    atomics: HashMap<u32, AtomicLoc>,
    cells: HashMap<u32, CellLoc>,
    mutexes: HashMap<u32, MutexLoc>,
}

struct ThreadSlot {
    status: Status,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn mix(h: u64, v: u64) -> u64 {
    let mut h = h ^ v;
    h = h.wrapping_mul(FNV_PRIME);
    // splitmix-style finishing rotation for better diffusion than bare
    // FNV on structured integers.
    h ^= h >> 29;
    h.wrapping_mul(0xbf58476d1ce4e5b9)
}

impl St {
    fn new() -> St {
        St {
            threads: Vec::new(),
            registering: 0,
            aborting: false,
            violation: None,
            trace: Vec::new(),
            choice_trace: Vec::new(),
            os_handles: Vec::new(),
            clocks: Vec::new(),
            histories: Vec::new(),
            addr_ids: HashMap::new(),
            loc_meta: Vec::new(),
            atomics: HashMap::new(),
            cells: HashMap::new(),
            mutexes: HashMap::new(),
        }
    }

    /// Allocates a thread slot; the child's clock inherits the parent's
    /// (the spawn edge) when there is one.
    fn alloc_thread(&mut self, parent: usize) -> usize {
        let tid = self.threads.len();
        self.threads.push(ThreadSlot {
            status: Status::Registering,
        });
        self.registering += 1;
        let mut clock = if tid == 0 {
            Vec::new()
        } else {
            self.clocks[parent].clone()
        };
        if clock.len() <= tid {
            clock.resize(tid + 1, 0);
        }
        clock[tid] = 1;
        self.clocks.push(clock);
        self.histories.push(mix(FNV_OFFSET, tid as u64));
        tid
    }

    /// Dense id for `addr`, minting one (with a schedule-invariant
    /// fingerprint) on first touch.
    fn intern(&mut self, addr: usize, toucher: usize, desc: &str) -> u32 {
        if let Some(&id) = self.addr_ids.get(&addr) {
            return id;
        }
        let id = self.loc_meta.len() as u32;
        let mut fp = mix(FNV_OFFSET, self.histories[toucher]);
        for b in desc.bytes() {
            fp = mix(fp, b as u64);
        }
        self.loc_meta.push(LocMeta { fingerprint: fp });
        self.addr_ids.insert(addr, id);
        id
    }

    fn fingerprint(&self, id: u32) -> u64 {
        self.loc_meta[id as usize].fingerprint
    }

    /// Orderless state hash: identical hashes ⇒ identical futures (up
    /// to hash collisions), the justification for seen-state pruning.
    fn state_hash(&self, budget_left: Option<usize>) -> u64 {
        let mut h = mix(FNV_OFFSET, budget_left.map_or(u64::MAX, |b| b as u64));
        for (tid, slot) in self.threads.iter().enumerate() {
            let tag = match slot.status {
                Status::Finished => 1u64,
                _ => 0,
            };
            let mut th = mix(mix(FNV_OFFSET, tid as u64), self.histories[tid]);
            th = mix(th, tag);
            for &c in &self.clocks[tid] {
                th = mix(th, c as u64);
            }
            h ^= th;
        }
        for (&id, a) in &self.atomics {
            let mut lh = mix(self.fingerprint(id), a.val);
            if let Some(msg) = &a.msg {
                for &c in msg {
                    lh = mix(lh, c as u64 + 1);
                }
            }
            h = h.wrapping_add(lh);
        }
        for (&id, c) in &self.cells {
            let mut lh = mix(self.fingerprint(id), 0x9e3779b97f4a7c15);
            if let Some((t, e)) = c.last_write {
                lh = mix(lh, ((t as u64) << 32) | e as u64);
            }
            for (t, &e) in c.readers.iter().enumerate() {
                if e > 0 {
                    lh = mix(lh, ((t as u64) << 32) | e as u64);
                }
            }
            h = h.wrapping_add(lh);
        }
        for (&id, m) in &self.mutexes {
            let mut lh = mix(self.fingerprint(id), m.owner.map_or(u64::MAX, |o| o as u64));
            for &c in &m.release {
                lh = mix(lh, c as u64);
            }
            h = h.wrapping_add(lh);
        }
        h
    }

    /// Whether `pending` can run right now (mutex free, join target
    /// finished, …).
    fn runnable(&self, pending: &Pending) -> bool {
        match pending {
            Pending::MutexLock { addr } => match self.addr_ids.get(addr) {
                Some(id) => self.mutexes.get(id).is_none_or(|m| m.owner.is_none()),
                None => true,
            },
            Pending::Join { target } => {
                matches!(self.threads[*target].status, Status::Finished)
            }
            _ => true,
        }
    }

    /// Happens-before bookkeeping + race checks for one granted
    /// operation; returns the (possibly op-determined) result value, or
    /// a violation message instead of panicking so the caller controls
    /// unwinding.
    fn apply(&mut self, tid: usize, pending: &Pending, val: u64) -> Result<u64, String> {
        // Every operation is a new epoch of its thread.
        if self.clocks[tid].len() <= tid {
            self.clocks[tid].resize(tid + 1, 0);
        }
        self.clocks[tid][tid] += 1;
        let (desc, addr) = match pending {
            Pending::Start => ("start", None),
            Pending::Spawn => ("spawn", None),
            Pending::Atomic { addr, desc, .. } => (*desc, Some(*addr)),
            Pending::Cell { addr, write } => {
                (if *write { "cell.write" } else { "cell.read" }, Some(*addr))
            }
            Pending::MutexLock { addr } => ("mutex.lock", Some(*addr)),
            Pending::MutexUnlock { addr } => ("mutex.unlock", Some(*addr)),
            Pending::Join { .. } => ("join", None),
        };
        let id = addr.map(|a| self.intern(a, tid, desc));
        let fp = id.map(|i| self.fingerprint(i)).unwrap_or(0);
        self.histories[tid] = mix(mix(mix(self.histories[tid], fp), val), desc.len() as u64);
        self.trace.push(match id {
            Some(i) => format!("T{tid} {desc}@L{i} = {val}"),
            None => format!("T{tid} {desc} = {val}"),
        });

        match pending {
            Pending::Start => Ok(val),
            // The child is allocated here, under the lock the grant
            // already holds (the thread side must not re-lock).
            Pending::Spawn => Ok(self.alloc_thread(tid) as u64),
            Pending::Join { target } => {
                let target_clock = self.clocks[*target].clone();
                clock_join(&mut self.clocks[tid], &target_clock);
                Ok(val)
            }
            Pending::Atomic { kind, ord, .. } => {
                let id = id.unwrap();
                let entry = self
                    .atomics
                    .entry(id)
                    .or_insert(AtomicLoc { msg: None, val: 0 });
                let acquire_side = matches!(
                    (kind, ord),
                    (
                        AtomicKind::Load | AtomicKind::Rmw,
                        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
                    )
                );
                let release_side = matches!(
                    (kind, ord),
                    (
                        AtomicKind::Store | AtomicKind::Rmw,
                        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
                    )
                );
                let msg = entry.msg.clone();
                entry.val = val;
                if acquire_side {
                    if let Some(msg) = &msg {
                        clock_join(&mut self.clocks[tid], msg);
                    }
                }
                let entry = self.atomics.get_mut(&id).unwrap();
                match kind {
                    AtomicKind::Store => {
                        // A plain store replaces the message: a relaxed
                        // store publishes nothing.
                        entry.msg = release_side.then(|| self.clocks[tid].clone());
                    }
                    AtomicKind::Rmw => {
                        // RMWs continue the release sequence of the
                        // message they read; a releasing RMW also adds
                        // its own clock.
                        if release_side {
                            let mut m = msg.unwrap_or_default();
                            clock_join(&mut m, &self.clocks[tid]);
                            entry.msg = Some(m);
                        }
                        // else: keep the existing message.
                    }
                    AtomicKind::Load => {}
                }
                Ok(val)
            }
            Pending::Cell { write, .. } => {
                let id = id.unwrap();
                let my_clock = self.clocks[tid].clone();
                let cell = self.cells.entry(id).or_default();
                if let Some((wt, we)) = cell.last_write {
                    if my_clock.get(wt).copied().unwrap_or(0) < we {
                        return Err(format!(
                            "data race on cell L{id}: {} by T{tid} is concurrent with the \
                             write by T{wt} (no happens-before edge — a torn access)",
                            if *write { "write" } else { "read" },
                        ));
                    }
                }
                if *write {
                    for (rt, &re) in cell.readers.iter().enumerate() {
                        if re > 0 && rt != tid && my_clock.get(rt).copied().unwrap_or(0) < re {
                            return Err(format!(
                                "data race on cell L{id}: write by T{tid} is concurrent \
                                 with a read by T{rt}"
                            ));
                        }
                    }
                    cell.last_write = Some((tid, my_clock[tid]));
                    cell.readers.iter_mut().for_each(|r| *r = 0);
                } else {
                    if cell.readers.len() <= tid {
                        cell.readers.resize(tid + 1, 0);
                    }
                    cell.readers[tid] = my_clock[tid];
                }
                Ok(val)
            }
            Pending::MutexLock { .. } => {
                let id = id.unwrap();
                let m = self.mutexes.entry(id).or_default();
                if let Some(owner) = m.owner {
                    return Err(format!(
                        "scheduler bug: mutex L{id} granted to T{tid} while held by T{owner}"
                    ));
                }
                m.owner = Some(tid);
                let rel = m.release.clone();
                clock_join(&mut self.clocks[tid], &rel);
                Ok(val)
            }
            Pending::MutexUnlock { .. } => {
                let id = id.unwrap();
                let clock = self.clocks[tid].clone();
                let m = self.mutexes.entry(id).or_default();
                m.owner = None;
                m.release = clock;
                Ok(val)
            }
        }
    }
}

struct Exec {
    state: Mutex<St>,
    cv: Condvar,
}

/// How long a quiescence wait may stall before the checker declares the
/// model wedged (a ghost lock held across a facade op, usually).
const WEDGE_TIMEOUT: Duration = Duration::from_secs(30);

impl Exec {
    fn new() -> Exec {
        Exec {
            state: Mutex::new(St::new()),
            cv: Condvar::new(),
        }
    }

    /// The thread side of a scheduling point: park, wait for the grant,
    /// run the native op + bookkeeping, hand control back.
    fn scheduled_op(
        self: &Arc<Self>,
        tid: usize,
        pending: Pending,
        native: impl FnOnce() -> u64,
    ) -> u64 {
        let mut st = self.state.lock().unwrap();
        if matches!(pending, Pending::Start) {
            // The thread has reached its first scheduling point: it now
            // counts as parked, not registering, so the controller may
            // quiesce.
            st.registering -= 1;
        }
        if st.aborting {
            self.cv.notify_all();
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        st.threads[tid].status = Status::Wants(pending.clone());
        self.cv.notify_all();
        loop {
            if st.aborting {
                st.threads[tid].status = Status::Running;
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            if matches!(st.threads[tid].status, Status::Granted) {
                break;
            }
            st = self.cv.wait(st).unwrap();
        }
        // Granted: the native op runs under the state lock (one thread
        // at a time — "SC for values"), then the HB bookkeeping.
        let val = native();
        let applied = st.apply(tid, &pending, val);
        st.threads[tid].status = Status::Running;
        self.cv.notify_all();
        match applied {
            Ok(v) => v,
            Err(message) => {
                if st.violation.is_none() {
                    st.violation = Some(Violation {
                        message,
                        trace: st.trace.clone(),
                        schedule: st.choice_trace.clone(),
                    });
                }
                drop(st);
                std::panic::panic_any(AbortToken);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The DFS controller
// ---------------------------------------------------------------------

enum RunOutcome {
    Complete(Vec<Choice>),
    Pruned(Vec<Choice>),
    Truncated(Vec<Choice>),
    Violated(Violation),
}

#[derive(Clone, Debug)]
struct Choice {
    allowed: usize,
    idx: usize,
}

/// Drives one schedule: replays `forced` choice indices, then explores
/// first-choice-greedily, recording the choice stack for backtracking.
fn drive(
    exec: &Arc<Exec>,
    forced: &[usize],
    opts: &Options,
    seen: &mut HashSet<u64>,
    pruned: &mut usize,
) -> RunOutcome {
    let mut choices: Vec<Choice> = Vec::new();
    let mut preemptions = 0usize;
    let mut last_running: Option<usize> = None;
    let mut st = exec.state.lock().unwrap();
    loop {
        // Quiesce: nobody granted/running/registering.
        loop {
            if st.violation.is_some() {
                break;
            }
            let busy = st.registering > 0
                || st
                    .threads
                    .iter()
                    .any(|t| matches!(t.status, Status::Granted | Status::Running));
            if !busy {
                break;
            }
            let (guard, timeout) = exec.cv.wait_timeout(st, WEDGE_TIMEOUT).unwrap();
            st = guard;
            if timeout.timed_out() && st.violation.is_none() {
                let v = Violation {
                    message: "model wedged: a thread never reached its next scheduling \
                              point (ghost state held across a facade op?)"
                        .into(),
                    trace: st.trace.clone(),
                    schedule: st.choice_trace.clone(),
                };
                st.violation = Some(v);
                break;
            }
        }
        if let Some(v) = st.violation.clone() {
            st = abort_and_drain(exec, st);
            drop(st);
            return RunOutcome::Violated(v);
        }

        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter_map(|(tid, t)| match &t.status {
                Status::Wants(p) if st.runnable(p) => Some(tid),
                _ => None,
            })
            .collect();
        if runnable.is_empty() {
            let all_finished = st
                .threads
                .iter()
                .all(|t| matches!(t.status, Status::Finished));
            if all_finished {
                drop(st);
                return RunOutcome::Complete(choices);
            }
            let stuck: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(tid, t)| match &t.status {
                    Status::Wants(p) => Some(format!("T{tid} blocked on {p:?}")),
                    _ => None,
                })
                .collect();
            let v = Violation {
                message: format!("deadlock: no runnable thread ({})", stuck.join("; ")),
                trace: st.trace.clone(),
                schedule: st.choice_trace.clone(),
            };
            st.violation = Some(v.clone());
            st = abort_and_drain(exec, st);
            drop(st);
            return RunOutcome::Violated(v);
        }

        // Seen-state pruning, only strictly past the forced prefix (the
        // state at the divergence point itself was seeded by the run
        // that discovered it — pruning there would kill every branch).
        if choices.len() > forced.len() {
            let budget_left = opts.preemption_bound.map(|b| b - preemptions.min(b));
            let h = st.state_hash(budget_left);
            if !seen.insert(h) {
                *pruned += 1;
                st = abort_and_drain(exec, st);
                drop(st);
                return RunOutcome::Pruned(choices);
            }
        }

        if choices.len() >= opts.max_steps {
            st = abort_and_drain(exec, st);
            drop(st);
            return RunOutcome::Truncated(choices);
        }

        // Preemption-bounded choice set: out of budget, stick with the
        // last-running thread while it stays runnable.
        let allowed: Vec<usize> = match (opts.preemption_bound, last_running) {
            (Some(bound), Some(last)) if preemptions >= bound && runnable.contains(&last) => {
                vec![last]
            }
            _ => runnable.clone(),
        };
        let idx = forced.get(choices.len()).copied().unwrap_or(0);
        debug_assert!(idx < allowed.len(), "stale forced schedule");
        let tid = allowed[idx];
        choices.push(Choice {
            allowed: allowed.len(),
            idx,
        });
        if let Some(last) = last_running {
            if last != tid && runnable.contains(&last) {
                preemptions += 1;
            }
        }
        last_running = Some(tid);
        st.choice_trace.push(tid);
        st.threads[tid].status = Status::Granted;
        exec.cv.notify_all();
    }
}

/// Sets the abort flag and waits until every model thread has
/// terminated (so the run's OS threads can be joined).
fn abort_and_drain<'a>(
    exec: &'a Exec,
    mut st: std::sync::MutexGuard<'a, St>,
) -> std::sync::MutexGuard<'a, St> {
    st.aborting = true;
    exec.cv.notify_all();
    loop {
        let done = st.registering == 0
            && st
                .threads
                .iter()
                .all(|t| matches!(t.status, Status::Finished));
        if done {
            return st;
        }
        // Wake any thread parked at a Wants so it can observe the flag.
        for t in st.threads.iter_mut() {
            if let Status::Wants(_) = t.status {
                t.status = Status::Granted;
            }
        }
        exec.cv.notify_all();
        let (guard, _) = exec.cv.wait_timeout(st, WEDGE_TIMEOUT).unwrap();
        st = guard;
    }
}

fn run_schedule(
    f: &Arc<dyn Fn() + Send + Sync>,
    forced: &[usize],
    opts: &Options,
    seen: &mut HashSet<u64>,
    pruned: &mut usize,
) -> RunOutcome {
    let exec = Arc::new(Exec::new());
    exec.state.lock().unwrap().alloc_thread(0);
    let exec0 = Arc::clone(&exec);
    let body = Arc::clone(f);
    let root = std::thread::Builder::new()
        .name("bisched-model-0".into())
        .spawn(move || run_model_thread(exec0, 0, move || body()))
        .expect("spawn model root thread");
    let outcome = drive(&exec, forced, opts, seen, pruned);
    let _ = root.join();
    let handles = std::mem::take(&mut exec.state.lock().unwrap().os_handles);
    for h in handles {
        let _ = h.join();
    }
    outcome
}

/// Pops exhausted choice points and advances the deepest live one;
/// `None` when the whole space is explored.
fn next_forced(mut choices: Vec<Choice>) -> Option<Vec<usize>> {
    while let Some(last) = choices.last() {
        if last.idx + 1 < last.allowed {
            let mut forced: Vec<usize> = choices.iter().map(|c| c.idx).collect();
            *forced.last_mut().unwrap() += 1;
            return Some(forced);
        }
        choices.pop();
    }
    None
}

fn explore(
    name: &str,
    opts: &Options,
    f: Arc<dyn Fn() + Send + Sync>,
) -> (Report, Option<Violation>) {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut forced: Vec<usize> = Vec::new();
    let mut report = Report {
        schedules: 0,
        pruned: 0,
        max_depth: 0,
        complete: false,
    };
    loop {
        let outcome = run_schedule(&f, &forced, opts, &mut seen, &mut report.pruned);
        report.schedules += 1;
        let choices = match outcome {
            RunOutcome::Violated(v) => return (report, Some(v)),
            RunOutcome::Complete(c) | RunOutcome::Pruned(c) => c,
            RunOutcome::Truncated(c) => {
                // A cut run leaves its subtree unexplored; the report
                // must not claim completeness.
                report.max_depth = report.max_depth.max(c.len());
                match next_forced(c) {
                    Some(next) => {
                        forced = next;
                        continue;
                    }
                    None => {
                        return (report, None);
                    }
                }
            }
        };
        report.max_depth = report.max_depth.max(choices.len());
        match next_forced(choices) {
            None => {
                report.complete = true;
                return (report, None);
            }
            Some(next) => forced = next,
        }
        if report.schedules >= opts.max_schedules {
            eprintln!(
                "model {name}: schedule budget exhausted ({})",
                report.schedules
            );
            return (report, None);
        }
    }
}

/// Exhaustively explores the interleavings of `f` under `opts`,
/// panicking with a replayable counterexample if any interleaving
/// violates an invariant (assertion failure, data race on a facade
/// cell, or deadlock).
pub fn check(name: &str, opts: Options, f: impl Fn() + Send + Sync + 'static) -> Report {
    let (report, violation) = explore(name, &opts, Arc::new(f));
    if let Some(v) = violation {
        panic!(
            "model `{name}` failed after {} schedules:\n{v}",
            report.schedules
        );
    }
    report
}

/// Runs the exploration *expecting* a violation (the mutation-testing
/// entry point: a deliberately broken protocol must be caught). Panics
/// if the whole space explores cleanly.
pub fn check_expect_violation(
    name: &str,
    opts: Options,
    f: impl Fn() + Send + Sync + 'static,
) -> Violation {
    let (report, violation) = explore(name, &opts, Arc::new(f));
    match violation {
        Some(v) => v,
        None => panic!(
            "model `{name}` explored {} schedules (complete: {}) without catching the \
             seeded bug — the checker lost its teeth",
            report.schedules, report.complete
        ),
    }
}
