//! The single declared registry of flight-recorder event names.
//!
//! Every `bisched_obs::span` / `span_arg` / `instant` / `counter` call
//! site in the workspace must use a name from [`EVENT_NAMES`] — the
//! `bisched-analyze` `metric-registry` lint enforces it token-level, so
//! a new instrumentation point is added by declaring its name here in
//! the same change. A central list keeps trace-consuming tooling
//! (`Profile::from_trace` self-time folding, the lab's counter
//! attribution, dashboards fed by the Chrome traces) working against a
//! known vocabulary instead of chasing ad-hoc strings.

/// Every event name the workspace emits, grouped by subsystem.
pub const EVENT_NAMES: &[&str] = &[
    // service request path
    "solve_request",
    "canonicalize",
    "cache_hit",
    "cache_miss",
    "cache_evict",
    "batch",
    "job_done",
    // solver dispatch and portfolio race
    "solve",
    "portfolio_race",
    "race_publish",
    "race_cancel",
    "race_member_skipped",
    "incumbent",
    // branch and bound
    "bnb_incumbent",
    // CP propagation engine
    "cp_probe_sat",
    "cp_probe_unsat",
    "cp_restart",
    // FPTAS dynamic program
    "fptas_layer",
    "fptas_layer_width",
    "layer_width",
];
